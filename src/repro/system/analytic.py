"""Deriving sequential-model parameters analytically from the simulators.

The reader and CADT simulators expose exact per-case conditional
probabilities; this module aggregates them into the class-level parameter
tables the paper's models consume — the "ground truth" against which trial
estimates and simulations can both be checked, and the bridge that lets a
designer evaluate a (reader, algorithm) configuration without running a
single sampled trial.

The aggregation follows the definition of the class-level conditionals:

* ``PMf(x)`` is the mean per-case miss probability over the class;
* ``PHf|Mf(x)`` is ``E[pMf(c)·pHf|Mf(c)] / E[pMf(c)]`` — each case's
  conditional weighted by how often that case *produces* a machine
  failure (cases where the machine fails more often contribute more to
  the conditioning event);
* ``PHf|Ms(x)`` analogously with machine successes.

The same construction yields the false-positive side (healthy cases,
Poisson false prompts) for the Section 7 trade-off analysis.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .._numeric import exp as _exp
from ..cadt.algorithm import DetectionAlgorithm
from ..core.case_class import CaseClass
from ..core.parameters import ClassParameters, ModelParameters
from ..core.profile import DemandProfile
from ..core.sequential import SequentialModel
from ..core.tradeoff import SystemOperatingPoint, TwoSidedModel
from ..exceptions import SimulationError
from ..reader.reader import ReaderModel
from ..screening.case import Case
from ..screening.classifier import CaseClassifier, SingleClassClassifier

__all__ = [
    "derive_class_parameters",
    "derive_model",
    "derive_false_positive_class_parameters",
    "derive_two_sided_model",
    "derive_operating_point",
]

#: Truncation bound for the Poisson false-prompt expectation; the tail
#: beyond this count is negligible for realistic prompt rates.
_MAX_FALSE_PROMPTS = 40


def derive_class_parameters(
    reader: ReaderModel,
    algorithm: DetectionAlgorithm,
    cases: Sequence[Case],
) -> ClassParameters:
    """Exact class-level (PMf, PHf|Mf, PHf|Ms) for a set of cancer cases.

    Args:
        reader: The reader model (its analytic conditionals are used).
        algorithm: The detection algorithm at its configured threshold.
        cases: The cancer cases forming the class.

    Raises:
        SimulationError: if ``cases`` is empty or contains healthy cases.
    """
    if not cases:
        raise SimulationError("derive_class_parameters needs at least one case")
    if any(not case.has_cancer for case in cases):
        raise SimulationError(
            "derive_class_parameters expects cancer cases only; use "
            "derive_false_positive_class_parameters for the healthy side"
        )
    p_mf = np.array([algorithm.miss_probability(c) for c in cases])
    p_hf_given_mf = np.array([reader.p_false_negative(c, False) for c in cases])
    p_hf_given_ms = np.array([reader.p_false_negative(c, True) for c in cases])

    mean_mf = float(np.mean(p_mf))
    joint_mf = float(np.mean(p_mf * p_hf_given_mf))
    joint_ms = float(np.mean((1.0 - p_mf) * p_hf_given_ms))
    if mean_mf > 0.0:
        conditional_mf = joint_mf / mean_mf
    else:
        conditional_mf = float(np.mean(p_hf_given_mf))
    if mean_mf < 1.0:
        conditional_ms = joint_ms / (1.0 - mean_mf)
    else:
        conditional_ms = float(np.mean(p_hf_given_ms))
    return ClassParameters(
        p_machine_failure=mean_mf,
        p_human_failure_given_machine_failure=conditional_mf,
        p_human_failure_given_machine_success=conditional_ms,
    )


def derive_model(
    reader: ReaderModel,
    algorithm: DetectionAlgorithm,
    cases: Iterable[Case],
    classifier: CaseClassifier | None = None,
) -> tuple[SequentialModel, DemandProfile]:
    """Exact sequential model and empirical profile for a cancer case set.

    Groups ``cases`` by the classifier, derives each class's parameters,
    and returns the model together with the case set's demand profile —
    everything needed to evaluate equation (8) with zero sampling noise.

    Args:
        reader: The reader model.
        algorithm: The detection algorithm.
        cases: Cancer cases (healthy cases are rejected).
        classifier: Classification criterion; single-class when omitted.
    """
    classifier = classifier if classifier is not None else SingleClassClassifier()
    by_class: dict[CaseClass, list[Case]] = {}
    for case in cases:
        if not case.has_cancer:
            raise SimulationError("derive_model expects cancer cases only")
        by_class.setdefault(classifier.classify(case), []).append(case)
    if not by_class:
        raise SimulationError("derive_model needs at least one case")
    parameters = ModelParameters(
        {
            cls: derive_class_parameters(reader, algorithm, members)
            for cls, members in by_class.items()
        }
    )
    profile = DemandProfile.from_counts(
        {cls.name: len(members) for cls, members in by_class.items()}
    )
    return SequentialModel(parameters), profile


def derive_false_positive_class_parameters(
    reader: ReaderModel,
    algorithm: DetectionAlgorithm,
    cases: Sequence[Case],
) -> ClassParameters:
    """Exact false-positive-side parameters for a set of healthy cases.

    On the healthy side, "machine failure" means at least one false prompt
    and "human failure" means an unnecessary recall.  The reader's recall
    probability is averaged over the Poisson false-prompt count,
    conditioned on zero prompts (machine success) or at least one
    (machine failure).
    """
    if not cases:
        raise SimulationError(
            "derive_false_positive_class_parameters needs at least one case"
        )
    if any(case.has_cancer for case in cases):
        raise SimulationError(
            "derive_false_positive_class_parameters expects healthy cases only"
        )
    p_fp = []
    recall_given_prompted = []
    recall_given_clean = []
    for case in cases:
        rate = algorithm.false_prompt_rate(case)
        p_zero = _exp(-rate)
        p_fp.append(1.0 - p_zero)
        recall_given_clean.append(reader.p_false_positive(case, 0))
        if rate > 0.0 and p_zero < 1.0:
            # E[recall | K >= 1] via the truncated Poisson distribution.
            expectation = 0.0
            p_k = p_zero
            for k in range(1, _MAX_FALSE_PROMPTS + 1):
                p_k = p_k * rate / k
                expectation += p_k * reader.p_false_positive(case, k)
            recall_given_prompted.append(expectation / (1.0 - p_zero))
        else:
            recall_given_prompted.append(reader.p_false_positive(case, 1))

    p_fp_array = np.array(p_fp)
    prompted = np.array(recall_given_prompted)
    clean = np.array(recall_given_clean)
    mean_fp = float(np.mean(p_fp_array))
    joint_prompted = float(np.mean(p_fp_array * prompted))
    joint_clean = float(np.mean((1.0 - p_fp_array) * clean))
    return ClassParameters(
        p_machine_failure=mean_fp,
        p_human_failure_given_machine_failure=(
            joint_prompted / mean_fp if mean_fp > 0 else float(np.mean(prompted))
        ),
        p_human_failure_given_machine_success=(
            joint_clean / (1.0 - mean_fp) if mean_fp < 1 else float(np.mean(clean))
        ),
    )


def derive_two_sided_model(
    reader: ReaderModel,
    algorithm: DetectionAlgorithm,
    cancer_cases: Sequence[Case],
    healthy_cases: Sequence[Case],
    classifier: CaseClassifier | None = None,
) -> TwoSidedModel:
    """Exact FN and FP sequential models for one (reader, algorithm) pair.

    The cancer side uses the false-negative conditionals, the healthy side
    the false-positive ones; each side gets its own empirical profile over
    the classifier's classes.
    """
    classifier = classifier if classifier is not None else SingleClassClassifier()
    fn_model, cancer_profile = derive_model(
        reader, algorithm, cancer_cases, classifier
    )

    by_class: dict[CaseClass, list[Case]] = {}
    for case in healthy_cases:
        if case.has_cancer:
            raise SimulationError("healthy_cases must not contain cancers")
        by_class.setdefault(classifier.classify(case), []).append(case)
    if not by_class:
        raise SimulationError("derive_two_sided_model needs healthy cases")
    fp_parameters = ModelParameters(
        {
            cls: derive_false_positive_class_parameters(reader, algorithm, members)
            for cls, members in by_class.items()
        }
    )
    healthy_profile = DemandProfile.from_counts(
        {cls.name: len(members) for cls, members in by_class.items()}
    )
    return TwoSidedModel(
        false_negative_model=fn_model,
        false_positive_model=SequentialModel(fp_parameters),
        cancer_profile=cancer_profile,
        healthy_profile=healthy_profile,
    )


def derive_operating_point(
    label: str,
    reader: ReaderModel,
    algorithm: DetectionAlgorithm,
    cancer_cases: Sequence[Case],
    healthy_cases: Sequence[Case],
) -> SystemOperatingPoint:
    """Exact system-level (FN, FP) rates for one machine setting.

    Convenience wrapper for trade-off sweeps: derive the two-sided model
    and collapse it into an operating point.
    """
    model = derive_two_sided_model(reader, algorithm, cancer_cases, healthy_cases)
    return model.operating_point(label)
