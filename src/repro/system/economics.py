"""Screening-programme economics: cost-effectiveness of configurations.

The paper's conclusions motivate the richer configurations economically:
"more complex combinations have also been considered ... to improve the
cost-effectiveness of screening programmes; e.g. with two readers assisted
by a CADT, or less qualified readers assisted by CADTs".  This module
prices a configuration's operation and failures so those comparisons can
be made on one axis.

The cost model is deliberately simple and fully explicit:

* **reading cost** — reader-minutes per case, priced per reader tier and
  multiplied by the number of readers (and arbitration rate, if any);
* **machine cost** — per-case processing cost when a CADT is used;
* **recall cost** — every recalled patient triggers assessment costs
  (and, for healthy patients, is also the false-positive harm);
* **missed-cancer cost** — the dominant harm, per false negative.

Costs are in abstract "units"; only ratios matter to the comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_probability
from ..exceptions import SimulationError

__all__ = ["CostModel", "ConfigurationCost", "price_configuration"]


@dataclass(frozen=True)
class CostModel:
    """Unit costs of running a screening configuration.

    Attributes:
        reader_cost_per_case: Cost of one reader reading one case (use the
            tier's wage; trainees cost less than consultants).
        machine_cost_per_case: Cost of CADT processing per case.
        recall_cost: Assessment cost per recalled patient.
        missed_cancer_cost: Harm cost per false negative.
    """

    reader_cost_per_case: float = 1.0
    machine_cost_per_case: float = 0.1
    recall_cost: float = 20.0
    missed_cancer_cost: float = 2000.0

    def __post_init__(self) -> None:
        for name in (
            "reader_cost_per_case",
            "machine_cost_per_case",
            "recall_cost",
            "missed_cancer_cost",
        ):
            value = getattr(self, name)
            if not value >= 0:
                raise SimulationError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class ConfigurationCost:
    """The per-screened-patient economics of one configuration.

    Attributes:
        name: The configuration priced.
        operating_cost: Reading + machine cost per case.
        failure_cost: Expected recall + missed-cancer cost per case.
        cancers_detected_per_case: Expected true positives per screened
            patient (prevalence times sensitivity).
    """

    name: str
    operating_cost: float
    failure_cost: float
    cancers_detected_per_case: float

    @property
    def total_cost(self) -> float:
        """Total expected cost per screened patient."""
        return self.operating_cost + self.failure_cost

    @property
    def cost_per_cancer_detected(self) -> float:
        """The programme's headline cost-effectiveness figure.

        Infinite when the configuration detects nothing.
        """
        if self.cancers_detected_per_case <= 0.0:
            return float("inf")
        return self.total_cost / self.cancers_detected_per_case


def price_configuration(
    name: str,
    p_false_negative: float,
    p_false_positive: float,
    prevalence: float,
    cost_model: CostModel,
    num_readers: int = 1,
    uses_machine: bool = False,
    reader_cost_multiplier: float = 1.0,
    arbitration_rate: float = 0.0,
) -> ConfigurationCost:
    """Price one configuration from its system-level error rates.

    Args:
        name: Label for the configuration.
        p_false_negative: System FN probability (per cancer case).
        p_false_positive: System FP probability (per healthy case).
        prevalence: Fraction of screened patients with cancer.
        cost_model: The unit costs.
        num_readers: Readers per case (2 for double reading).
        uses_machine: Whether a CADT processes every case.
        reader_cost_multiplier: Relative cost of this configuration's
            readers (e.g. 0.5 for trainees, 1.5 for consultants).
        arbitration_rate: Fraction of cases needing a third (arbiter)
            reading.
    """
    p_false_negative = check_probability(p_false_negative, "p_false_negative")
    p_false_positive = check_probability(p_false_positive, "p_false_positive")
    prevalence = check_probability(prevalence, "prevalence")
    arbitration_rate = check_probability(arbitration_rate, "arbitration_rate")
    if num_readers < 1:
        raise SimulationError(f"num_readers must be >= 1, got {num_readers!r}")
    if reader_cost_multiplier < 0:
        raise SimulationError(
            f"reader_cost_multiplier must be >= 0, got {reader_cost_multiplier!r}"
        )

    readings_per_case = num_readers + arbitration_rate
    operating = (
        readings_per_case * cost_model.reader_cost_per_case * reader_cost_multiplier
    )
    if uses_machine:
        operating += cost_model.machine_cost_per_case

    sensitivity = 1.0 - p_false_negative
    recall_rate = prevalence * sensitivity + (1.0 - prevalence) * p_false_positive
    failure = (
        recall_rate * cost_model.recall_cost
        + prevalence * p_false_negative * cost_model.missed_cancer_cost
    )
    return ConfigurationCost(
        name=name,
        operating_cost=operating,
        failure_cost=failure,
        cancers_detected_per_case=prevalence * sensitivity,
    )
