"""Multi-reader screening configurations (Section 7's extensions).

The paper's conclusions point at "more complex combinations ... e.g. with
two readers assisted by a CADT, or less qualified readers assisted by
CADTs", against the U.K. practice baseline of double reading.  This module
implements those configurations over the same reader/CADT substrates:

* :class:`DoubleReading` — two unaided readers with a recall policy;
* :class:`AssistedDoubleReading` — two readers who both see the same
  CADT output for each case (the films are processed once);
* recall policies: recall if *either* recalls (maximises sensitivity),
  only if *both* agree (maximises specificity), or *arbitration* by a
  third reader on disagreements (common U.K. practice).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..cadt.tool import Cadt
from ..exceptions import SimulationError
from ..reader.reader import ReaderModel
from ..screening.case import Case
from .single import SystemDecision

__all__ = ["RecallPolicy", "DoubleReading", "AssistedDoubleReading"]


class RecallPolicy(enum.Enum):
    """How two readers' decisions combine into the system decision."""

    #: Recall if either reader recalls (1-out-of-2 on detection of cancer).
    EITHER = "either"
    #: Recall only if both readers recall (2-out-of-2).
    UNANIMOUS = "unanimous"
    #: On disagreement, a third reader (the arbiter) decides.
    ARBITRATION = "arbitration"


def _combine(
    first_recall: bool,
    second_recall: bool,
    policy: RecallPolicy,
    arbiter_recall,
) -> bool:
    if policy is RecallPolicy.EITHER:
        return first_recall or second_recall
    if policy is RecallPolicy.UNANIMOUS:
        return first_recall and second_recall
    if first_recall == second_recall:
        return first_recall
    return bool(arbiter_recall())


class DoubleReading:
    """Two unaided readers with a recall policy (U.K. practice baseline).

    Args:
        readers: Exactly two reader models.
        policy: How the two decisions combine.
        arbiter: Third reader deciding disagreements; required for the
            arbitration policy, ignored otherwise.
        name: Evaluation label.
    """

    def __init__(
        self,
        readers: Sequence[ReaderModel],
        policy: RecallPolicy = RecallPolicy.EITHER,
        arbiter: ReaderModel | None = None,
        name: str | None = None,
    ):
        if len(readers) != 2:
            raise SimulationError(f"double reading needs exactly 2 readers, got {len(readers)}")
        self.readers = tuple(readers)
        self.policy = RecallPolicy(policy)
        if self.policy is RecallPolicy.ARBITRATION and arbiter is None:
            raise SimulationError("the arbitration policy requires an arbiter reader")
        self.arbiter = arbiter
        self._name = name if name is not None else f"double_{self.policy.value}"

    @property
    def name(self) -> str:
        return self._name

    def decide(
        self, case: Case, rng: np.random.Generator | None = None
    ) -> SystemDecision:
        first = self.readers[0].decide(case, None, rng)
        second = self.readers[1].decide(case, None, rng)
        recall = _combine(
            first.recall,
            second.recall,
            self.policy,
            lambda: self.arbiter.decide(case, None, rng).recall,
        )
        return SystemDecision(case_id=case.case_id, recall=recall, machine_failed=None)


class AssistedDoubleReading:
    """Two readers, each seeing the same CADT output, with a recall policy.

    The CADT processes each case once; both readers review the same
    prompted films — so the machine's failures are a *common* influence on
    both readers, the system-level analogue of common-mode failure.

    Args:
        readers: Exactly two reader models.
        cadt: The shared advisory tool.
        policy: How the two decisions combine.
        arbiter: Third reader for the arbitration policy; the arbiter also
            sees the CADT output.
        name: Evaluation label.
    """

    def __init__(
        self,
        readers: Sequence[ReaderModel],
        cadt: Cadt,
        policy: RecallPolicy = RecallPolicy.EITHER,
        arbiter: ReaderModel | None = None,
        name: str | None = None,
    ):
        if len(readers) != 2:
            raise SimulationError(f"double reading needs exactly 2 readers, got {len(readers)}")
        self.readers = tuple(readers)
        self.cadt = cadt
        self.policy = RecallPolicy(policy)
        if self.policy is RecallPolicy.ARBITRATION and arbiter is None:
            raise SimulationError("the arbitration policy requires an arbiter reader")
        self.arbiter = arbiter
        self._name = name if name is not None else f"assisted_double_{self.policy.value}"

    @property
    def name(self) -> str:
        return self._name

    def decide(
        self, case: Case, rng: np.random.Generator | None = None
    ) -> SystemDecision:
        output = self.cadt.process(case, rng)
        machine_failed = (
            output.is_false_negative(case)
            if case.has_cancer
            else output.is_false_positive(case)
        )
        first = self.readers[0].decide(case, output, rng)
        second = self.readers[1].decide(case, output, rng)
        recall = _combine(
            first.recall,
            second.recall,
            self.policy,
            lambda: self.arbiter.decide(case, output, rng).recall,
        )
        return SystemDecision(
            case_id=case.case_id, recall=recall, machine_failed=machine_failed
        )
