"""Empirical evaluation of screening systems over workloads.

Runs any :class:`~repro.system.single.ScreeningSystem` over a workload and
summarises its false-negative and false-positive behaviour, overall and
per case class, with confidence intervals — the simulation-side
counterpart of the sequential model's analytic predictions, and the thing
the end-to-end benchmarks compare against it.

The counting machinery lives in :class:`FailureTally` so the scalar loop
here and the vectorized engine (:mod:`repro.engine`) accumulate — and can
merge — failure counts identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..core.case_class import CaseClass
from ..exceptions import SimulationError
from ..screening.classifier import CaseClassifier, SingleClassClassifier
from ..screening.workload import Workload
from ..trial.intervals import ConfidenceInterval, wilson_interval
from .single import ScreeningSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..screening.case import Case

__all__ = [
    "RateEstimate",
    "SystemEvaluation",
    "FailureTally",
    "evaluate_system",
    "compare_systems",
]


@dataclass(frozen=True)
class RateEstimate:
    """An observed failure rate with its sample size and interval.

    Attributes:
        failures: Number of failures observed.
        trials: Number of opportunities.
        interval: Wilson confidence interval for the underlying rate.
    """

    failures: int
    trials: int
    interval: ConfidenceInterval

    @property
    def rate(self) -> float:
        """The observed failure proportion."""
        return self.interval.point

    @classmethod
    def from_counts(cls, failures: int, trials: int, level: float = 0.95) -> "RateEstimate":
        """Build from raw counts (trials must be positive)."""
        return cls(
            failures=failures,
            trials=trials,
            interval=wilson_interval(failures, trials, level),
        )


@dataclass(frozen=True)
class SystemEvaluation:
    """Empirical error rates of one system over one workload.

    Attributes:
        system_name: The evaluated system.
        workload_name: The workload it was run on.
        false_negative: Rate over cancer cases (``None`` if none present).
        false_positive: Rate over healthy cases (``None`` if none present).
        per_class_false_negative: Cancer-case rates per case class.
    """

    system_name: str
    workload_name: str
    false_negative: RateEstimate | None
    false_positive: RateEstimate | None
    per_class_false_negative: Mapping[CaseClass, RateEstimate]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "per_class_false_negative", dict(self.per_class_false_negative)
        )


@dataclass
class FailureTally:
    """Mutable accumulator of a system's failures over (part of) a workload.

    Both evaluation paths fill one of these — the scalar loop case by
    case, the batch engine chunk by chunk — and chunk tallies merge
    associatively, so a workload split across processes sums to exactly
    the counts a single pass would produce.
    """

    cancer_failures: int = 0
    cancer_trials: int = 0
    healthy_failures: int = 0
    healthy_trials: int = 0
    class_failures: dict[CaseClass, int] = field(default_factory=dict)
    class_trials: dict[CaseClass, int] = field(default_factory=dict)

    def record(self, case: "Case", failed: bool, classifier: CaseClassifier) -> None:
        """Count one decided case."""
        if case.has_cancer:
            self.cancer_trials += 1
            self.cancer_failures += int(failed)
            case_class = classifier.classify(case)
            self.class_trials[case_class] = self.class_trials.get(case_class, 0) + 1
            self.class_failures[case_class] = (
                self.class_failures.get(case_class, 0) + int(failed)
            )
        else:
            self.healthy_trials += 1
            self.healthy_failures += int(failed)

    def record_batch(
        self,
        has_cancer: np.ndarray,
        failed: np.ndarray,
        case_classes: Sequence[CaseClass],
    ) -> None:
        """Count a whole decided batch.

        Args:
            has_cancer: Ground truth per case.
            failed: System failure per case.
            case_classes: Class of each *cancer* case, in batch order
                (length = number of cancer cases in the batch).
        """
        cancer_failed = failed[has_cancer]
        if len(case_classes) != cancer_failed.shape[0]:
            raise SimulationError(
                f"got {len(case_classes)} case classes for "
                f"{cancer_failed.shape[0]} cancer cases"
            )
        self.cancer_trials += int(cancer_failed.shape[0])
        self.cancer_failures += int(cancer_failed.sum())
        healthy_failed = failed[~has_cancer]
        self.healthy_trials += int(healthy_failed.shape[0])
        self.healthy_failures += int(healthy_failed.sum())
        for case_class, one_failed in zip(case_classes, cancer_failed):
            self.class_trials[case_class] = self.class_trials.get(case_class, 0) + 1
            self.class_failures[case_class] = (
                self.class_failures.get(case_class, 0) + int(one_failed)
            )

    def merge(self, other: "FailureTally") -> None:
        """Fold another tally (e.g. a chunk's) into this one."""
        self.cancer_failures += other.cancer_failures
        self.cancer_trials += other.cancer_trials
        self.healthy_failures += other.healthy_failures
        self.healthy_trials += other.healthy_trials
        for case_class, trials in other.class_trials.items():
            self.class_trials[case_class] = (
                self.class_trials.get(case_class, 0) + trials
            )
        for case_class, failures in other.class_failures.items():
            self.class_failures[case_class] = (
                self.class_failures.get(case_class, 0) + failures
            )

    def to_evaluation(
        self, system_name: str, workload_name: str, level: float = 0.95
    ) -> SystemEvaluation:
        """Summarise the counts as a :class:`SystemEvaluation`."""
        return SystemEvaluation(
            system_name=system_name,
            workload_name=workload_name,
            false_negative=(
                RateEstimate.from_counts(self.cancer_failures, self.cancer_trials, level)
                if self.cancer_trials
                else None
            ),
            false_positive=(
                RateEstimate.from_counts(self.healthy_failures, self.healthy_trials, level)
                if self.healthy_trials
                else None
            ),
            per_class_false_negative={
                cls: RateEstimate.from_counts(
                    self.class_failures[cls], self.class_trials[cls], level
                )
                for cls in self.class_trials
            },
        )


def evaluate_system(
    system: ScreeningSystem,
    workload: Workload,
    classifier: CaseClassifier | None = None,
    level: float = 0.95,
    seed: int | None = None,
) -> SystemEvaluation:
    """Run a system over a workload and summarise its failures.

    Args:
        system: The system to drive.
        workload: The cases, in order (order matters for systems with
            drifting or adapting components).
        classifier: Criterion for the per-class breakdown; a single class
            when omitted.
        level: Confidence level for all intervals.
        seed: When given, all stochastic components draw from one fresh
            ``numpy.random.default_rng(seed)`` threaded through
            ``system.decide`` instead of their private generators, making
            the evaluation reproducible regardless of prior *generator*
            state.  Non-random component state (fatigue, trust, drift) is
            not reset — stateful systems stay order-dependent.
    """
    if len(workload) == 0:
        raise SimulationError("cannot evaluate a system on an empty workload")
    classifier = classifier if classifier is not None else SingleClassClassifier()
    rng = np.random.default_rng(seed) if seed is not None else None

    tally = FailureTally()
    for case in workload:
        decision = system.decide(case, rng)
        tally.record(case, decision.is_failure(case), classifier)
    return tally.to_evaluation(system.name, workload.name, level)


def compare_systems(
    systems: Sequence[ScreeningSystem],
    workload: Workload,
    classifier: CaseClassifier | None = None,
    level: float = 0.95,
    seed: int | None = None,
) -> dict[str, SystemEvaluation]:
    """Evaluate several systems on the *same* workload.

    Every system sees the identical case sequence (common random cases),
    which sharpens comparisons: differences come from the systems, not the
    draw of cases.

    With ``seed`` given, the comparison also uses common random *numbers*:
    each system is evaluated with its own fresh
    ``numpy.random.default_rng(seed)``, so two systems sharing a component
    see that component behave identically — without the seed, components
    draw from private generators whose state depends on whatever ran
    before, and a "comparison" can silently measure stale generator state
    instead of the systems.

    Raises:
        SimulationError: if two systems share a name.
    """
    names = [s.name for s in systems]
    if len(set(names)) != len(names):
        raise SimulationError(f"system names must be unique, got {names!r}")
    return {
        system.name: evaluate_system(system, workload, classifier, level, seed=seed)
        for system in systems
    }
