"""Empirical evaluation of screening systems over workloads.

Runs any :class:`~repro.system.single.ScreeningSystem` over a workload and
summarises its false-negative and false-positive behaviour, overall and
per case class, with confidence intervals — the simulation-side
counterpart of the sequential model's analytic predictions, and the thing
the end-to-end benchmarks compare against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.case_class import CaseClass
from ..exceptions import SimulationError
from ..screening.classifier import CaseClassifier, SingleClassClassifier
from ..screening.workload import Workload
from ..trial.intervals import ConfidenceInterval, wilson_interval
from .single import ScreeningSystem

__all__ = ["RateEstimate", "SystemEvaluation", "evaluate_system", "compare_systems"]


@dataclass(frozen=True)
class RateEstimate:
    """An observed failure rate with its sample size and interval.

    Attributes:
        failures: Number of failures observed.
        trials: Number of opportunities.
        interval: Wilson confidence interval for the underlying rate.
    """

    failures: int
    trials: int
    interval: ConfidenceInterval

    @property
    def rate(self) -> float:
        """The observed failure proportion."""
        return self.interval.point

    @classmethod
    def from_counts(cls, failures: int, trials: int, level: float = 0.95) -> "RateEstimate":
        """Build from raw counts (trials must be positive)."""
        return cls(
            failures=failures,
            trials=trials,
            interval=wilson_interval(failures, trials, level),
        )


@dataclass(frozen=True)
class SystemEvaluation:
    """Empirical error rates of one system over one workload.

    Attributes:
        system_name: The evaluated system.
        workload_name: The workload it was run on.
        false_negative: Rate over cancer cases (``None`` if none present).
        false_positive: Rate over healthy cases (``None`` if none present).
        per_class_false_negative: Cancer-case rates per case class.
    """

    system_name: str
    workload_name: str
    false_negative: RateEstimate | None
    false_positive: RateEstimate | None
    per_class_false_negative: Mapping[CaseClass, RateEstimate]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "per_class_false_negative", dict(self.per_class_false_negative)
        )


def evaluate_system(
    system: ScreeningSystem,
    workload: Workload,
    classifier: CaseClassifier | None = None,
    level: float = 0.95,
) -> SystemEvaluation:
    """Run a system over a workload and summarise its failures.

    Args:
        system: The system to drive.
        workload: The cases, in order (order matters for systems with
            drifting or adapting components).
        classifier: Criterion for the per-class breakdown; a single class
            when omitted.
        level: Confidence level for all intervals.
    """
    if len(workload) == 0:
        raise SimulationError("cannot evaluate a system on an empty workload")
    classifier = classifier if classifier is not None else SingleClassClassifier()

    cancer_failures = 0
    cancer_trials = 0
    healthy_failures = 0
    healthy_trials = 0
    class_failures: dict[CaseClass, int] = {}
    class_trials: dict[CaseClass, int] = {}

    for case in workload:
        decision = system.decide(case)
        failed = decision.is_failure(case)
        if case.has_cancer:
            cancer_trials += 1
            cancer_failures += int(failed)
            case_class = classifier.classify(case)
            class_trials[case_class] = class_trials.get(case_class, 0) + 1
            class_failures[case_class] = class_failures.get(case_class, 0) + int(failed)
        else:
            healthy_trials += 1
            healthy_failures += int(failed)

    return SystemEvaluation(
        system_name=system.name,
        workload_name=workload.name,
        false_negative=(
            RateEstimate.from_counts(cancer_failures, cancer_trials, level)
            if cancer_trials
            else None
        ),
        false_positive=(
            RateEstimate.from_counts(healthy_failures, healthy_trials, level)
            if healthy_trials
            else None
        ),
        per_class_false_negative={
            cls: RateEstimate.from_counts(class_failures[cls], class_trials[cls], level)
            for cls in class_trials
        },
    )


def compare_systems(
    systems: Sequence[ScreeningSystem],
    workload: Workload,
    classifier: CaseClassifier | None = None,
    level: float = 0.95,
) -> dict[str, SystemEvaluation]:
    """Evaluate several systems on the *same* workload.

    Every system sees the identical case sequence (common random cases),
    which sharpens comparisons: differences come from the systems, not the
    draw of cases.

    Raises:
        SimulationError: if two systems share a name.
    """
    names = [s.name for s in systems]
    if len(set(names)) != len(names):
        raise SimulationError(f"system names must be unique, got {names!r}")
    return {
        system.name: evaluate_system(system, workload, classifier, level)
        for system in systems
    }
