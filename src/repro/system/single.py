"""Single-reader screening systems (Figure 1's composite system).

A *screening system* is anything that turns a case into the 1-bit
recall/no-recall decision.  The two basic configurations are the unaided
reader and the paper's subject — a reader assisted by a CADT, where "the
reader's decision is the output of the whole system".

Every system exposes ``decide(case) -> SystemDecision``; the decision
carries the machine's behaviour on the case (when a machine was involved)
so evaluations can condition on machine failure exactly as the sequential
model does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..cadt.tool import Cadt
from ..exceptions import SimulationError
from ..reader.reader import ReaderModel
from ..screening.case import Case

__all__ = ["SystemDecision", "ScreeningSystem", "UnaidedReading", "AssistedReading"]


@dataclass(frozen=True)
class SystemDecision:
    """A screening system's output on one case.

    Attributes:
        case_id: The decided case.
        recall: The system's 1-bit decision.
        machine_failed: Whether the machine component failed on the case
            (false negative on cancers, false prompt on healthy cases);
            ``None`` for systems without a machine.
    """

    case_id: int
    recall: bool
    machine_failed: bool | None

    def is_failure(self, case: Case) -> bool:
        """Whether the decision is wrong for the case's ground truth."""
        if case.case_id != self.case_id:
            raise SimulationError(
                f"decision for case {self.case_id} checked against case {case.case_id}"
            )
        return self.recall != case.has_cancer


class ScreeningSystem(Protocol):
    """Anything that produces recall decisions on screening cases."""

    @property
    def name(self) -> str:
        """Identifier used in evaluations."""
        ...

    def decide(self, case: Case) -> SystemDecision:
        """Decide one case."""
        ...


class UnaidedReading:
    """A single reader with no computer support (the historical baseline).

    Args:
        reader: The reader model.
        name: Evaluation label (defaults to ``unaided(<reader>)``).
    """

    def __init__(self, reader: ReaderModel, name: str | None = None):
        self.reader = reader
        self._name = name if name is not None else f"unaided({reader.name})"

    @property
    def name(self) -> str:
        return self._name

    def decide(self, case: Case) -> SystemDecision:
        decision = self.reader.decide(case, None)
        return SystemDecision(
            case_id=case.case_id, recall=decision.recall, machine_failed=None
        )


class AssistedReading:
    """The paper's system: one reader assisted by a CADT.

    The machine processes the films first; the reader decides from the
    original and prompted films (the "sequential operation" of Section 4 —
    or, if the reader's procedure is
    :attr:`~repro.reader.reader.ReadingProcedure.PARALLEL`, the intended
    Section 3 procedure).

    Args:
        reader: The reader model.
        cadt: The advisory tool.
        name: Evaluation label (defaults to ``assisted(<reader>)``).
    """

    def __init__(self, reader: ReaderModel, cadt: Cadt, name: str | None = None):
        self.reader = reader
        self.cadt = cadt
        self._name = name if name is not None else f"assisted({reader.name})"

    @property
    def name(self) -> str:
        return self._name

    def decide(self, case: Case) -> SystemDecision:
        output = self.cadt.process(case)
        machine_failed = (
            output.is_false_negative(case)
            if case.has_cancer
            else output.is_false_positive(case)
        )
        decision = self.reader.decide(case, output)
        return SystemDecision(
            case_id=case.case_id, recall=decision.recall, machine_failed=machine_failed
        )
