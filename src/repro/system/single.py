"""Single-reader screening systems (Figure 1's composite system).

A *screening system* is anything that turns a case into the 1-bit
recall/no-recall decision.  The two basic configurations are the unaided
reader and the paper's subject — a reader assisted by a CADT, where "the
reader's decision is the output of the whole system".

Every system exposes ``decide(case) -> SystemDecision``; the decision
carries the machine's behaviour on the case (when a machine was involved)
so evaluations can condition on machine failure exactly as the sequential
model does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from ..cadt.tool import Cadt
from ..exceptions import SimulationError
from ..reader.reader import ReaderModel
from ..reader.state import ReaderStateVector
from ..screening.case import Case

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.arrays import CaseArrays

__all__ = [
    "SystemDecision",
    "BatchDecisions",
    "ScreeningSystem",
    "UnaidedReading",
    "AssistedReading",
]


def _split_shared_uniforms(
    arrays: "CaseArrays", rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Split one flat draw into the CADT's and the reader's uniforms.

    Per case: ``[u_miss, u_prompts]`` for the tool followed by the
    reader's uniforms (four on cancers, one on healthy cases) — the same
    interleaving the scalar loop consumes from a shared generator.
    """
    counts = np.where(arrays.has_cancer, 6, 3)
    offsets = np.cumsum(counts) - counts  # exclusive prefix sum
    flat = rng.random(int(counts.sum()))
    cadt_u = np.stack((flat[offsets], flat[offsets + 1]), axis=1)
    reader_mask = np.ones(flat.shape[0], dtype=bool)
    reader_mask[offsets] = False
    reader_mask[offsets + 1] = False
    return cadt_u, flat[reader_mask]


@dataclass(frozen=True)
class SystemDecision:
    """A screening system's output on one case.

    Attributes:
        case_id: The decided case.
        recall: The system's 1-bit decision.
        machine_failed: Whether the machine component failed on the case
            (false negative on cancers, false prompt on healthy cases);
            ``None`` for systems without a machine.
    """

    case_id: int
    recall: bool
    machine_failed: bool | None

    def is_failure(self, case: Case) -> bool:
        """Whether the decision is wrong for the case's ground truth."""
        if case.case_id != self.case_id:
            raise SimulationError(
                f"decision for case {self.case_id} checked against case {case.case_id}"
            )
        return self.recall != case.has_cancer


@dataclass(frozen=True)
class BatchDecisions:
    """A screening system's output over a whole batch (struct of arrays).

    The batch analogue of :class:`SystemDecision`: element ``i`` of every
    array describes the system's behaviour on case ``i`` of the batch.

    Attributes:
        case_id: Case identifiers, ``int64[n]``.
        recall: The system's 1-bit decisions.
        machine_failed: Per-case machine failure (``None`` for systems
            without a machine component).
    """

    case_id: np.ndarray
    recall: np.ndarray
    machine_failed: np.ndarray | None

    def __len__(self) -> int:
        return len(self.case_id)

    def failures(self, has_cancer: np.ndarray) -> np.ndarray:
        """Per-case system failure against ground truth."""
        if len(has_cancer) != len(self.recall):
            raise SimulationError(
                f"ground truth for {len(has_cancer)} cases checked against "
                f"{len(self.recall)} decisions"
            )
        return self.recall != has_cancer


class ScreeningSystem(Protocol):
    """Anything that produces recall decisions on screening cases."""

    @property
    def name(self) -> str:
        """Identifier used in evaluations."""
        ...

    def decide(
        self, case: Case, rng: np.random.Generator | None = None
    ) -> SystemDecision:
        """Decide one case.

        Args:
            case: The case under review.
            rng: Random generator for every stochastic component of the
                decision; each component's private generator when omitted.
                Threading an explicit generator is what makes seeded
                common-random-number comparisons possible (see
                :func:`repro.system.simulate.compare_systems`).
        """
        ...


class UnaidedReading:
    """A single reader with no computer support (the historical baseline).

    Args:
        reader: The reader model.
        name: Evaluation label (defaults to ``unaided(<reader>)``).
    """

    def __init__(self, reader: ReaderModel, name: str | None = None):
        self.reader = reader
        self._name = name if name is not None else f"unaided({reader.name})"

    @property
    def name(self) -> str:
        return self._name

    @property
    def supports_batch(self) -> bool:
        """Whether :meth:`decide_batch` is available (stateless reader)."""
        return isinstance(self.reader, ReaderModel)

    def decide(
        self, case: Case, rng: np.random.Generator | None = None
    ) -> SystemDecision:
        decision = self.reader.decide(case, None, rng)
        return SystemDecision(
            case_id=case.case_id, recall=decision.recall, machine_failed=None
        )

    def decide_batch(
        self, arrays: "CaseArrays", rng: np.random.Generator | None = None
    ) -> BatchDecisions:
        """Vectorized :meth:`decide` over a batch of cases.

        With ``rng`` omitted, draws from the reader's private generator in
        the same fixed layout the scalar loop consumes — so the results
        are bit-identical to calling :meth:`decide` case by case.
        """
        if not self.supports_batch:
            raise SimulationError(
                f"system {self.name!r} wraps a stateful reader "
                f"({type(self.reader).__name__}); use the scalar path"
            )
        recall = self.reader.decide_batch(arrays, None, rng=rng)
        return BatchDecisions(
            case_id=arrays.case_id, recall=recall, machine_failed=None
        )

    @property
    def supports_stream(self) -> bool:
        """Whether :meth:`advance_stream` is available.

        True for temporal reader wrappers (:class:`FatiguedReader`,
        :class:`AdaptiveReader`) around a vectorizable base reader.
        """
        return bool(getattr(self.reader, "supports_stream", False))

    def stream_state(self) -> ReaderStateVector:
        """The reader's current temporal state as a carryable vector."""
        return self.reader.stream_state()

    def commit_stream(self, state: ReaderStateVector) -> None:
        """Adopt a carried state vector as the reader's mutable state."""
        self.reader.commit_state(state)

    def advance_stream(
        self,
        arrays: "CaseArrays",
        state: ReaderStateVector,
        rng: np.random.Generator | None = None,
    ) -> tuple[BatchDecisions, ReaderStateVector]:
        """Decide one chunk of the stream from a carried state.

        The chunked analogue of :meth:`decide_batch` for temporal
        readers: the state enters explicitly and the successor state is
        returned, so in-order chunks reproduce the scalar loop exactly
        at any chunk size (see ``docs/engine.md``).
        """
        if not self.supports_stream:
            raise SimulationError(
                f"system {self.name!r} does not support stream advancement "
                f"(reader={type(self.reader).__name__})"
            )
        recall, next_state = self.reader.advance_stream(arrays, None, state, rng=rng)
        decisions = BatchDecisions(
            case_id=arrays.case_id, recall=recall, machine_failed=None
        )
        return decisions, next_state


class AssistedReading:
    """The paper's system: one reader assisted by a CADT.

    The machine processes the films first; the reader decides from the
    original and prompted films (the "sequential operation" of Section 4 —
    or, if the reader's procedure is
    :attr:`~repro.reader.reader.ReadingProcedure.PARALLEL`, the intended
    Section 3 procedure).

    Args:
        reader: The reader model.
        cadt: The advisory tool.
        name: Evaluation label (defaults to ``assisted(<reader>)``).
    """

    def __init__(self, reader: ReaderModel, cadt: Cadt, name: str | None = None):
        self.reader = reader
        self.cadt = cadt
        self._name = name if name is not None else f"assisted({reader.name})"

    @property
    def name(self) -> str:
        return self._name

    @property
    def supports_batch(self) -> bool:
        """Whether :meth:`decide_batch` is available.

        Requires a stateless reader and a drift-free tool; a drifting
        CADT or a fatigued/adapting reader is order-dependent and must go
        through the scalar loop.
        """
        return isinstance(self.reader, ReaderModel) and self.cadt.drift_per_case == 0.0

    def decide(
        self, case: Case, rng: np.random.Generator | None = None
    ) -> SystemDecision:
        output = self.cadt.process(case, rng)
        machine_failed = (
            output.is_false_negative(case)
            if case.has_cancer
            else output.is_false_positive(case)
        )
        decision = self.reader.decide(case, output, rng)
        return SystemDecision(
            case_id=case.case_id, recall=decision.recall, machine_failed=machine_failed
        )

    def decide_batch(
        self, arrays: "CaseArrays", rng: np.random.Generator | None = None
    ) -> BatchDecisions:
        """Vectorized :meth:`decide` over a batch of cases.

        With ``rng`` omitted, the CADT and the reader draw from their own
        private generators in the same fixed layouts the scalar loop
        consumes, so the results are bit-identical to calling
        :meth:`decide` case by case.  With a shared ``rng``, one flat
        draw is split per case into ``[u_miss, u_prompts]`` for the tool
        followed by the reader's uniforms — the same interleaving
        :meth:`decide` consumes from a shared generator.
        """
        if not self.supports_batch:
            raise SimulationError(
                f"system {self.name!r} has stateful components "
                f"(reader={type(self.reader).__name__}, "
                f"drift={self.cadt.drift_per_case!r}); use the scalar path"
            )
        if rng is None:
            output = self.cadt.process_batch(arrays)
            recall = self.reader.decide_batch(arrays, output)
        else:
            cadt_u, reader_u = _split_shared_uniforms(arrays, rng)
            output = self.cadt.process_batch(arrays, u=cadt_u)
            recall = self.reader.decide_batch(arrays, output, u=reader_u)
        return BatchDecisions(
            case_id=arrays.case_id,
            recall=recall,
            machine_failed=output.machine_failed(arrays.has_cancer),
        )

    @property
    def supports_stream(self) -> bool:
        """Whether :meth:`advance_stream` is available.

        Requires a temporal reader wrapper around a vectorizable base
        reader and a drift-free tool; a drifting CADT is stateful in a
        way the reader-state carry does not capture, so it stays on the
        scalar path.
        """
        return (
            bool(getattr(self.reader, "supports_stream", False))
            and self.cadt.drift_per_case == 0.0
        )

    def stream_state(self) -> ReaderStateVector:
        """The reader's current temporal state as a carryable vector."""
        return self.reader.stream_state()

    def commit_stream(self, state: ReaderStateVector) -> None:
        """Adopt a carried state vector as the reader's mutable state."""
        self.reader.commit_state(state)

    def advance_stream(
        self,
        arrays: "CaseArrays",
        state: ReaderStateVector,
        rng: np.random.Generator | None = None,
    ) -> tuple[BatchDecisions, ReaderStateVector]:
        """Decide one chunk of the stream from a carried state.

        The chunked analogue of :meth:`decide_batch` for temporal
        readers.  With ``rng`` omitted, the CADT and the reader draw
        from their own private generators; with a shared ``rng``, the
        flat draw is split per case exactly as :meth:`decide` consumes
        it, so seeded streams reproduce the scalar loop bit for bit.
        """
        if not self.supports_stream:
            raise SimulationError(
                f"system {self.name!r} does not support stream advancement "
                f"(reader={type(self.reader).__name__}, "
                f"drift={self.cadt.drift_per_case!r})"
            )
        if rng is None:
            output = self.cadt.process_batch(arrays)
            recall, next_state = self.reader.advance_stream(arrays, output, state)
        else:
            cadt_u, reader_u = _split_shared_uniforms(arrays, rng)
            output = self.cadt.process_batch(arrays, u=cadt_u)
            recall, next_state = self.reader.advance_stream(
                arrays, output, state, u=reader_u
            )
        decisions = BatchDecisions(
            case_id=arrays.case_id,
            recall=recall,
            machine_failed=output.machine_failed(arrays.has_cancer),
        )
        return decisions, next_state
