"""Controlled-trial simulation and parameter estimation substrate.

Closes the measurement loop the paper could only describe: simulate a
trial with an enriched case mix, estimate the per-class model parameters
(with confidence intervals), and hand them to the core models for
trial-to-field extrapolation.
"""

from .design import (
    CellForecast,
    FeasibilityReport,
    TrialDesign,
    sample_size_for_difference,
    sample_size_for_half_width,
)
from .estimate import ClassEstimate, EstimationResult, ParameterEstimate, estimate_model
from .intervals import (
    ConfidenceInterval,
    clopper_pearson_interval,
    jeffreys_interval,
    wilson_interval,
)
from .readers import PanelEstimate, ReaderSpread, estimate_per_reader
from .storage import (
    CSV_COLUMNS,
    append_journal_entries,
    dump_records_csv,
    follow_journal_records,
    follow_records_csv,
    load_journal_entries,
    load_records_csv,
    record_from_entry,
    record_to_entry,
)
from .records import CaseRecord, TrialRecords
from .run import ControlledTrial, TrialOutcome, run_reading_session

__all__ = [
    "CaseRecord",
    "TrialRecords",
    "ConfidenceInterval",
    "wilson_interval",
    "clopper_pearson_interval",
    "jeffreys_interval",
    "ParameterEstimate",
    "ClassEstimate",
    "EstimationResult",
    "estimate_model",
    "run_reading_session",
    "ControlledTrial",
    "TrialOutcome",
    "TrialDesign",
    "CellForecast",
    "FeasibilityReport",
    "sample_size_for_half_width",
    "sample_size_for_difference",
    "PanelEstimate",
    "ReaderSpread",
    "estimate_per_reader",
    "dump_records_csv",
    "load_records_csv",
    "follow_records_csv",
    "follow_journal_records",
    "CSV_COLUMNS",
    "append_journal_entries",
    "load_journal_entries",
    "record_to_entry",
    "record_from_entry",
]
