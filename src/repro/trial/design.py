"""Trial design: sample sizes, power, and cell-count feasibility.

The paper repeatedly runs into measurement feasibility: machine false
negatives "are very rare", conditional cells may be empty, and "more
extensive trials [are] possibly infeasible" (Section 6.2).  This module
turns those complaints into arithmetic a trial designer can act on:

* :func:`sample_size_for_half_width` — readings needed to estimate one
  proportion to a target confidence-interval half-width;
* :func:`sample_size_for_difference` — readings per cell needed to detect
  ``PHf|Mf - PHf|Ms`` (i.e. a non-zero importance index) with given power;
* :class:`TrialDesign` — a declarative design whose
  :meth:`~TrialDesign.feasibility` report predicts the expected count in
  every estimation cell *before* anyone reads a film, flagging the cells
  that will come out too thin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from .._stats import normal_quantile
from .._validation import check_probability
from ..core.case_class import CaseClass
from ..core.parameters import ModelParameters
from ..core.profile import DemandProfile
from ..exceptions import EstimationError

__all__ = [
    "sample_size_for_half_width",
    "sample_size_for_difference",
    "CellForecast",
    "FeasibilityReport",
    "TrialDesign",
]


def sample_size_for_half_width(
    proportion: float, half_width: float, level: float = 0.95
) -> int:
    """Readings needed so a proportion's CI half-width meets a target.

    Uses the normal approximation ``n = z^2 p(1-p) / h^2`` with the
    worst case ``p(1-p) <= 0.25`` when the anticipated proportion is 0 or
    1 (no information).

    Args:
        proportion: Anticipated value of the proportion being estimated.
        half_width: Target half-width (e.g. 0.05 for +-5 points).
        level: Confidence level of the interval.
    """
    proportion = check_probability(proportion, "proportion")
    if not 0.0 < half_width < 1.0:
        raise EstimationError(f"half_width must be in (0, 1), got {half_width!r}")
    if not 0.0 < level < 1.0:
        raise EstimationError(f"level must be in (0, 1), got {level!r}")
    z = normal_quantile(1.0 - (1.0 - level) / 2.0)
    variance = proportion * (1.0 - proportion)
    if variance == 0.0:
        variance = 0.25
    return math.ceil(z * z * variance / (half_width * half_width))


def sample_size_for_difference(
    p_first: float,
    p_second: float,
    power: float = 0.8,
    alpha: float = 0.05,
) -> int:
    """Readings *per cell* to detect a difference of two proportions.

    The classical two-proportion z-test sample size; in this library's
    context the two cells are typically the machine-failure and
    machine-success conditions of one class, and the detectable difference
    is the importance index ``t(x)``.

    Args:
        p_first: Anticipated proportion in the first cell (e.g. PHf|Mf).
        p_second: Anticipated proportion in the second cell (e.g. PHf|Ms).
        power: Desired probability of detecting the difference.
        alpha: Two-sided significance level.

    Raises:
        EstimationError: if the two proportions are equal (no effect to
            detect) or power/alpha are out of range.
    """
    p_first = check_probability(p_first, "p_first")
    p_second = check_probability(p_second, "p_second")
    if not 0.0 < power < 1.0:
        raise EstimationError(f"power must be in (0, 1), got {power!r}")
    if not 0.0 < alpha < 1.0:
        raise EstimationError(f"alpha must be in (0, 1), got {alpha!r}")
    difference = abs(p_first - p_second)
    if difference == 0.0:
        raise EstimationError("cannot size a trial to detect a zero difference")
    z_alpha = normal_quantile(1.0 - alpha / 2.0)
    z_power = normal_quantile(power)
    pooled = (p_first + p_second) / 2.0
    numerator = (
        z_alpha * math.sqrt(2.0 * pooled * (1.0 - pooled))
        + z_power
        * math.sqrt(p_first * (1.0 - p_first) + p_second * (1.0 - p_second))
    ) ** 2
    return math.ceil(numerator / (difference * difference))


@dataclass(frozen=True)
class CellForecast:
    """Expected readings in one estimation cell of a planned trial.

    Attributes:
        case_class: The class the cell belongs to.
        cell: ``"machine_failure"`` or ``"machine_success"``.
        expected_readings: Expected number of conditioning events.
        required_readings: Readings needed for the target precision on the
            conditional failure probability estimated from this cell.
    """

    case_class: CaseClass
    cell: str
    expected_readings: float
    required_readings: int

    @property
    def feasible(self) -> bool:
        """Whether the design is expected to produce enough readings."""
        return self.expected_readings >= self.required_readings


@dataclass(frozen=True)
class FeasibilityReport:
    """Per-cell forecasts for a planned trial.

    Attributes:
        cells: Every (class, conditioning cell) forecast.
        total_readings: Total reading events the design produces.
    """

    cells: tuple[CellForecast, ...]
    total_readings: int

    @property
    def infeasible_cells(self) -> tuple[CellForecast, ...]:
        """Cells expected to come out too thin, rarest first."""
        thin = [cell for cell in self.cells if not cell.feasible]
        return tuple(sorted(thin, key=lambda c: c.expected_readings))

    @property
    def is_feasible(self) -> bool:
        """Whether every cell is expected to be estimable at target precision."""
        return not self.infeasible_cells


@dataclass(frozen=True)
class TrialDesign:
    """A declarative controlled-trial design.

    Attributes:
        num_cases: Cases in the trial set.
        num_readers: Panel size (each reader reads every case).
        cancer_fraction: Enrichment of the case set.
        half_width: Target CI half-width for conditional estimates.
        level: Confidence level for the precision target.
    """

    num_cases: int
    num_readers: int
    cancer_fraction: float = 0.5
    half_width: float = 0.1
    level: float = 0.95

    def __post_init__(self) -> None:
        if self.num_cases <= 0:
            raise EstimationError(f"num_cases must be positive, got {self.num_cases!r}")
        if self.num_readers <= 0:
            raise EstimationError(
                f"num_readers must be positive, got {self.num_readers!r}"
            )
        check_probability(self.cancer_fraction, "cancer_fraction")
        if not 0.0 < self.half_width < 1.0:
            raise EstimationError(
                f"half_width must be in (0, 1), got {self.half_width!r}"
            )

    @property
    def cancer_readings(self) -> int:
        """Total cancer reading events (cases x readers)."""
        return round(self.num_cases * self.cancer_fraction) * self.num_readers

    def feasibility(
        self,
        anticipated_parameters: ModelParameters,
        anticipated_profile: DemandProfile,
    ) -> FeasibilityReport:
        """Forecast every estimation cell's expected count.

        Args:
            anticipated_parameters: Best-guess per-class parameters (from
                pilot data, the literature, or the vendor's claims).
            anticipated_profile: Anticipated class mix of the trial's
                cancer cases.

        The machine-failure cell of class ``x`` receives on average
        ``readings * p(x) * PMf(x)`` events — the quantity that collapses
        for rare machine failures, which is exactly the paper's concern.
        """
        cells: list[CellForecast] = []
        readings = self.cancer_readings
        for case_class, weight in anticipated_profile.items():
            if weight == 0.0 or case_class not in anticipated_parameters:
                continue
            params = anticipated_parameters[case_class]
            class_readings = readings * weight
            for cell_name, cell_probability, conditional in (
                (
                    "machine_failure",
                    params.p_machine_failure,
                    params.p_human_failure_given_machine_failure,
                ),
                (
                    "machine_success",
                    params.p_machine_success,
                    params.p_human_failure_given_machine_success,
                ),
            ):
                cells.append(
                    CellForecast(
                        case_class=case_class,
                        cell=cell_name,
                        expected_readings=class_readings * cell_probability,
                        required_readings=sample_size_for_half_width(
                            conditional, self.half_width, self.level
                        ),
                    )
                )
        return FeasibilityReport(
            cells=tuple(cells),
            total_readings=self.num_cases * self.num_readers,
        )

    def scaled_to_feasibility(
        self,
        anticipated_parameters: ModelParameters,
        anticipated_profile: DemandProfile,
        max_cases: int = 1_000_000,
    ) -> "TrialDesign":
        """The smallest scaled-up design whose every cell is feasible.

        Scales ``num_cases`` (keeping readers and mix fixed) until the
        feasibility report is clean.

        Raises:
            EstimationError: if no design up to ``max_cases`` suffices —
                the paper's "more extensive trials, possibly infeasible".
        """
        design = self
        while True:
            report = design.feasibility(anticipated_parameters, anticipated_profile)
            if report.is_feasible:
                return design
            worst_ratio = max(
                cell.required_readings / max(cell.expected_readings, 1e-12)
                for cell in report.infeasible_cells
            )
            # A 1% margin absorbs the integer rounding of the cancer count,
            # which would otherwise make the scaled design land just short.
            scaled_cases = math.ceil(design.num_cases * worst_ratio * 1.01)
            if scaled_cases > max_cases:
                raise EstimationError(
                    f"no feasible design below {max_cases} cases (needed about "
                    f"{scaled_cases}); coarsen the classification, relax the "
                    f"precision target, or pool sparse cells"
                )
            design = TrialDesign(
                num_cases=scaled_cases,
                num_readers=design.num_readers,
                cancer_fraction=design.cancer_fraction,
                half_width=design.half_width,
                level=design.level,
            )
