"""Estimating the sequential model's parameters from trial records.

Given the reading events of a controlled trial (aided arm), this module
estimates, per case class ``x``:

* ``PMf(x)`` — from the machine's behaviour on cancer cases of the class;
* ``PHf|Mf(x)`` — the reader failure rate among machine-failure events;
* ``PHf|Ms(x)`` — the reader failure rate among machine-success events;

each with a confidence interval, plus the empirical demand profile.  The
result converts directly into the point-estimate
:class:`~repro.core.parameters.ModelParameters`, the Beta-posterior
:class:`~repro.core.uncertainty.UncertainModel`, or a ready
:class:`~repro.core.sequential.SequentialModel`.

Sparse cells are a real methodological issue the paper flags (machine
false negatives "are very rare"): by default an inestimable cell (zero
conditioning events) raises, but the ``on_empty_cell="pool"`` policy
substitutes the pooled across-class rate, mirroring what a pragmatic
analyst would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..core.case_class import CaseClass
from ..core.parameters import ClassParameters, ModelParameters
from ..core.profile import DemandProfile
from ..core.sequential import SequentialModel
from ..core.uncertainty import (
    BetaPosterior,
    UncertainClassParameters,
    UncertainModel,
)
from ..exceptions import EstimationError
from .intervals import ConfidenceInterval, wilson_interval
from .records import TrialRecords

__all__ = ["ParameterEstimate", "ClassEstimate", "EstimationResult", "estimate_model"]


@dataclass(frozen=True)
class ParameterEstimate:
    """One estimated proportion with its provenance.

    Attributes:
        events: Observed occurrences of the event.
        trials: Number of conditioning opportunities.
        interval: Confidence interval around the sample proportion.
        pooled: Whether this estimate was substituted from pooled data
            because the class's own cell was empty.
    """

    events: int
    trials: int
    interval: ConfidenceInterval
    pooled: bool = False

    @property
    def point(self) -> float:
        """The sample proportion."""
        return self.interval.point

    def posterior(self) -> BetaPosterior:
        """Jeffreys-prior Beta posterior for this proportion."""
        return BetaPosterior.from_counts(self.events, self.trials)


@dataclass(frozen=True)
class ClassEstimate:
    """The three estimated parameters of one case class.

    Attributes:
        case_class: The class estimated.
        machine_failure: Estimate of ``PMf(x)``.
        human_failure_given_machine_failure: Estimate of ``PHf|Mf(x)``.
        human_failure_given_machine_success: Estimate of ``PHf|Ms(x)``.
    """

    case_class: CaseClass
    machine_failure: ParameterEstimate
    human_failure_given_machine_failure: ParameterEstimate
    human_failure_given_machine_success: ParameterEstimate

    def to_class_parameters(self) -> ClassParameters:
        """Point-estimate parameters for the sequential model."""
        return ClassParameters(
            p_machine_failure=self.machine_failure.point,
            p_human_failure_given_machine_failure=(
                self.human_failure_given_machine_failure.point
            ),
            p_human_failure_given_machine_success=(
                self.human_failure_given_machine_success.point
            ),
        )

    def to_uncertain_parameters(self) -> UncertainClassParameters:
        """Beta-posterior parameters for uncertainty propagation."""
        return UncertainClassParameters(
            p_machine_failure=self.machine_failure.posterior(),
            p_human_failure_given_machine_failure=(
                self.human_failure_given_machine_failure.posterior()
            ),
            p_human_failure_given_machine_success=(
                self.human_failure_given_machine_success.posterior()
            ),
        )


@dataclass(frozen=True)
class EstimationResult:
    """Everything estimated from one trial's aided cancer records.

    Attributes:
        by_class: Per-class estimates.
        profile: The empirical demand profile of the trial's cancer cases.
        total_records: Number of reading events used.
    """

    by_class: dict[CaseClass, ClassEstimate]
    profile: DemandProfile
    total_records: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "by_class", dict(self.by_class))

    def __getitem__(self, key: CaseClass | str) -> ClassEstimate:
        name = key.name if isinstance(key, CaseClass) else key
        for cls, estimate in self.by_class.items():
            if cls.name == name:
                return estimate
        raise EstimationError(f"no estimate for case class {name!r}")

    @property
    def classes(self) -> tuple[CaseClass, ...]:
        """All estimated classes, sorted."""
        return tuple(sorted(self.by_class))

    def to_model_parameters(self) -> ModelParameters:
        """The point-estimate parameter table."""
        return ModelParameters(
            {cls: est.to_class_parameters() for cls, est in self.by_class.items()}
        )

    def to_uncertain_model(self) -> UncertainModel:
        """The Beta-posterior model for uncertainty propagation."""
        return UncertainModel(
            {cls: est.to_uncertain_parameters() for cls, est in self.by_class.items()}
        )

    def to_sequential_model(self) -> SequentialModel:
        """A sequential model at the point estimates."""
        return SequentialModel(self.to_model_parameters())

    def pooled_cells(self) -> tuple[tuple[CaseClass, str], ...]:
        """Which (class, parameter) cells were filled by pooling."""
        pooled: list[tuple[CaseClass, str]] = []
        for cls, estimate in self.by_class.items():
            if estimate.machine_failure.pooled:
                pooled.append((cls, "p_machine_failure"))
            if estimate.human_failure_given_machine_failure.pooled:
                pooled.append((cls, "p_human_failure_given_machine_failure"))
            if estimate.human_failure_given_machine_success.pooled:
                pooled.append((cls, "p_human_failure_given_machine_success"))
        return tuple(pooled)


def _proportion(
    events: int, trials: int, level: float, pooled: bool = False
) -> ParameterEstimate:
    return ParameterEstimate(
        events=events,
        trials=trials,
        interval=wilson_interval(events, trials, level),
        pooled=pooled,
    )


def estimate_model(
    records: TrialRecords,
    level: float = 0.95,
    on_empty_cell: Literal["raise", "pool"] = "raise",
) -> EstimationResult:
    """Estimate the sequential model from a trial's records.

    Only aided cancer records are used (the false-negative model's demand
    space, Section 2.3); pass ``records.healthy()`` through the same
    function to estimate the false-positive side — the equations are
    identical, with "machine failed" meaning a false prompt and "reader
    failed" meaning an unnecessary recall.

    Args:
        records: Trial records (filtered internally to aided cancers —
            or aided healthy cases if only those are present).
        level: Confidence level for all intervals.
        on_empty_cell: Policy for classes where a conditional has no
            conditioning events: ``"raise"`` (default) or ``"pool"`` (use
            the across-class pooled rate, flagged in the estimate).

    Raises:
        EstimationError: if there are no usable records, or an empty cell
            is found under the ``"raise"`` policy.
    """
    aided = records.aided()
    cancers = aided.cancers()
    usable = cancers if len(cancers) > 0 else aided.healthy()
    if len(usable) == 0:
        raise EstimationError("no aided records to estimate from")

    # Pooled conditional rates, for the "pool" policy.
    pooled_mf = usable.filter(lambda r: r.machine_failed)
    pooled_ms = usable.filter(lambda r: not r.machine_failed)
    pooled_rate_given_mf = (
        pooled_mf.failure_rate() if len(pooled_mf) > 0 else None
    )
    pooled_rate_given_ms = (
        pooled_ms.failure_rate() if len(pooled_ms) > 0 else None
    )

    by_class: dict[CaseClass, ClassEstimate] = {}
    for case_class in usable.case_classes:
        class_records = usable.for_class(case_class)
        n = len(class_records)
        machine_failures = class_records.count(lambda r: r.machine_failed)
        machine_estimate = _proportion(machine_failures, n, level)

        given_mf = class_records.filter(lambda r: r.machine_failed)
        given_ms = class_records.filter(lambda r: not r.machine_failed)

        def conditional(
            subset: TrialRecords,
            pooled_rate: float | None,
            pooled_trials: int,
            label: str,
        ) -> ParameterEstimate:
            if len(subset) > 0:
                failures = subset.count(lambda r: r.system_failed)
                return _proportion(failures, len(subset), level)
            if on_empty_cell == "pool" and pooled_rate is not None:
                events = round(pooled_rate * pooled_trials)
                return _proportion(events, pooled_trials, level, pooled=True)
            raise EstimationError(
                f"class {case_class.name!r} has no records to estimate {label}; "
                f"re-run with on_empty_cell='pool', coarsen the classification, "
                f"or enlarge the trial"
            )

        estimate_given_mf = conditional(
            given_mf, pooled_rate_given_mf, len(pooled_mf), "PHf|Mf"
        )
        estimate_given_ms = conditional(
            given_ms, pooled_rate_given_ms, len(pooled_ms), "PHf|Ms"
        )
        by_class[case_class] = ClassEstimate(
            case_class=case_class,
            machine_failure=machine_estimate,
            human_failure_given_machine_failure=estimate_given_mf,
            human_failure_given_machine_success=estimate_given_ms,
        )

    profile = DemandProfile.from_counts(
        {cls.name: count for cls, count in usable.class_counts().items()}
    )
    return EstimationResult(by_class=by_class, profile=profile, total_records=len(usable))
