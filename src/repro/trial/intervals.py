"""Confidence intervals for binomial proportions.

Trial estimates of the model parameters are proportions from modest
samples; the paper's example "assume[s] for the sake of simplicity that
narrow enough confidence intervals can be obtained", and this module is
where that assumption gets checked in practice.  Three standard methods
are provided:

* **Wilson** — good coverage at all sample sizes, closed form;
* **Clopper-Pearson** — exact (conservative), via Beta quantiles;
* **Jeffreys** — Bayesian equal-tailed interval under the Jeffreys prior.

All return a :class:`ConfidenceInterval` with the point estimate attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.uncertainty import BetaPosterior
from ..exceptions import EstimationError

__all__ = [
    "ConfidenceInterval",
    "wilson_interval",
    "clopper_pearson_interval",
    "jeffreys_interval",
]

#: Two-sided standard-normal quantiles for common levels (used by Wilson
#: when scipy is unavailable; exact enough for interval construction).
_Z_BY_LEVEL = {0.80: 1.2815515655, 0.90: 1.6448536270, 0.95: 1.9599639845, 0.99: 2.5758293035}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a proportion.

    Attributes:
        point: The sample proportion ``events / trials``.
        lower: Lower confidence bound.
        upper: Upper confidence bound.
        level: Confidence level (e.g. 0.95).
        method: Name of the construction method.
    """

    point: float
    lower: float
    upper: float
    level: float
    method: str

    def __post_init__(self) -> None:
        if not 0.0 < self.level < 1.0:
            raise EstimationError(f"level must be in (0, 1), got {self.level!r}")
        if not self.lower <= self.upper:
            raise EstimationError(
                f"interval bounds out of order: [{self.lower!r}, {self.upper!r}]"
            )

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def _check_counts(events: int, trials: int) -> None:
    if trials <= 0:
        raise EstimationError(f"trials must be positive, got {trials!r}")
    if not 0 <= events <= trials:
        raise EstimationError(f"events must be in [0, {trials}], got {events!r}")


def _z_for_level(level: float) -> float:
    if level in _Z_BY_LEVEL:
        return _Z_BY_LEVEL[level]
    try:  # scipy gives arbitrary levels exactly when present
        from scipy.stats import norm

        return float(norm.ppf(1.0 - (1.0 - level) / 2.0))
    except ImportError:  # pragma: no cover - environment-dependent
        raise EstimationError(
            f"level {level!r} needs scipy; without it use one of {sorted(_Z_BY_LEVEL)}"
        ) from None


def wilson_interval(events: int, trials: int, level: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    _check_counts(events, trials)
    if not 0.0 < level < 1.0:
        raise EstimationError(f"level must be in (0, 1), got {level!r}")
    z = _z_for_level(level)
    p_hat = events / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
        / denominator
    )
    # The Wilson interval provably contains p_hat; clamp away the one-ulp
    # violations that centre +/- margin can produce at boundary counts.
    return ConfidenceInterval(
        point=p_hat,
        lower=min(max(0.0, centre - margin), p_hat),
        upper=max(min(1.0, centre + margin), p_hat),
        level=level,
        method="wilson",
    )


def clopper_pearson_interval(
    events: int, trials: int, level: float = 0.95
) -> ConfidenceInterval:
    """Clopper-Pearson (exact) interval via Beta quantiles."""
    _check_counts(events, trials)
    if not 0.0 < level < 1.0:
        raise EstimationError(f"level must be in (0, 1), got {level!r}")
    tail = (1.0 - level) / 2.0
    lower = (
        0.0
        if events == 0
        else BetaPosterior(events, trials - events + 1).quantile(tail)
    )
    upper = (
        1.0
        if events == trials
        else BetaPosterior(events + 1, trials - events).quantile(1.0 - tail)
    )
    return ConfidenceInterval(
        point=events / trials,
        lower=lower,
        upper=upper,
        level=level,
        method="clopper-pearson",
    )


def jeffreys_interval(
    events: int, trials: int, level: float = 0.95
) -> ConfidenceInterval:
    """Jeffreys (Bayesian) equal-tailed interval.

    Uses the Beta(0.5, 0.5) prior; by convention the lower bound is 0 when
    no events were seen and the upper bound 1 when every trial was an
    event, to preserve frequentist coverage at the boundaries.
    """
    _check_counts(events, trials)
    if not 0.0 < level < 1.0:
        raise EstimationError(f"level must be in (0, 1), got {level!r}")
    posterior = BetaPosterior.from_counts(events, trials)
    tail = (1.0 - level) / 2.0
    lower = 0.0 if events == 0 else posterior.quantile(tail)
    upper = 1.0 if events == trials else posterior.quantile(1.0 - tail)
    return ConfidenceInterval(
        point=events / trials,
        lower=lower,
        upper=upper,
        level=level,
        method="jeffreys",
    )
