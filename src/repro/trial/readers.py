"""Per-reader estimation and reader-variability analysis.

Section 5 (item 2): "the readers have varying levels of ability
(represented by the parameters PHf|Ms(x) and PHf|Mf(x)).  The trial data
can indicate the range of these abilities, show whether there are strong
discrepancies between humans, and if these affect different categories of
demands differently."

This module estimates a *separate* parameter table per reader from a
crossed trial's records, summarises the spread of each conditional across
the panel, and assembles the per-reader tables into the analytic team
model of :mod:`repro.core.multireader` (forcing the shared machine
estimate, since all readers saw the same tool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from ..core.case_class import CaseClass
from ..core.multireader import MultiReaderModel, TeamPolicy
from ..core.parameters import ClassParameters, ModelParameters
from ..exceptions import EstimationError
from .estimate import EstimationResult, estimate_model
from .records import TrialRecords

__all__ = ["ReaderSpread", "PanelEstimate", "estimate_per_reader"]


@dataclass(frozen=True)
class ReaderSpread:
    """The across-panel spread of one conditional on one class.

    Attributes:
        case_class: The class examined.
        parameter: ``"p_human_failure_given_machine_failure"`` or
            ``"p_human_failure_given_machine_success"``.
        by_reader: Point estimate per reader name.
    """

    case_class: CaseClass
    parameter: str
    by_reader: Mapping[str, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "by_reader", dict(self.by_reader))

    @property
    def minimum(self) -> float:
        """The best reader's value."""
        return min(self.by_reader.values())

    @property
    def maximum(self) -> float:
        """The worst reader's value."""
        return max(self.by_reader.values())

    @property
    def spread(self) -> float:
        """Best-to-worst range — the "strong discrepancies" indicator."""
        return self.maximum - self.minimum

    @property
    def best_reader(self) -> str:
        """Name of the reader with the lowest failure probability."""
        return min(self.by_reader, key=lambda name: (self.by_reader[name], name))

    @property
    def worst_reader(self) -> str:
        """Name of the reader with the highest failure probability."""
        return max(self.by_reader, key=lambda name: (self.by_reader[name], name))


@dataclass(frozen=True)
class PanelEstimate:
    """Per-reader estimates from one crossed trial.

    Attributes:
        by_reader: Full estimation result per reader name.
        pooled: The panel-pooled estimation (all readers together).
    """

    by_reader: Mapping[str, EstimationResult]
    pooled: EstimationResult

    def __post_init__(self) -> None:
        object.__setattr__(self, "by_reader", dict(self.by_reader))

    @property
    def reader_names(self) -> tuple[str, ...]:
        """All reader names, sorted."""
        return tuple(sorted(self.by_reader))

    def spread(self, case_class: CaseClass | str, parameter: str) -> ReaderSpread:
        """Across-panel spread of one conditional on one class."""
        if parameter not in (
            "p_human_failure_given_machine_failure",
            "p_human_failure_given_machine_success",
        ):
            raise EstimationError(f"unknown reader parameter {parameter!r}")
        name = case_class.name if isinstance(case_class, CaseClass) else case_class
        values: dict[str, float] = {}
        for reader_name, estimation in self.by_reader.items():
            class_estimate = estimation[name]
            values[reader_name] = getattr(
                class_estimate.to_class_parameters(), parameter
            )
        return ReaderSpread(
            case_class=CaseClass(name), parameter=parameter, by_reader=values
        )

    def reader_tables(self) -> dict[str, ModelParameters]:
        """Point-estimate parameter table per reader, with the machine's
        failure probability forced to the pooled estimate.

        The readers all used the same machine; their per-reader ``PMf``
        estimates differ only by sampling noise (each reader's sessions
        sampled the CADT's output independently), and the team model
        requires them equal.
        """
        pooled_params = self.pooled.to_model_parameters()
        tables: dict[str, ModelParameters] = {}
        for reader_name, estimation in self.by_reader.items():
            adjusted: dict[CaseClass, ClassParameters] = {}
            for case_class in pooled_params.classes:
                reader_class = estimation[case_class.name].to_class_parameters()
                adjusted[case_class] = ClassParameters(
                    p_machine_failure=pooled_params[case_class].p_machine_failure,
                    p_human_failure_given_machine_failure=(
                        reader_class.p_human_failure_given_machine_failure
                    ),
                    p_human_failure_given_machine_success=(
                        reader_class.p_human_failure_given_machine_success
                    ),
                )
            tables[reader_name] = ModelParameters(adjusted)
        return tables

    def to_team_model(
        self, policy: TeamPolicy = TeamPolicy.RECALL_IF_ANY
    ) -> MultiReaderModel:
        """The analytic team model of the whole estimated panel."""
        tables = self.reader_tables()
        return MultiReaderModel.from_single_reader_tables(
            [tables[name] for name in self.reader_names], policy
        )


def estimate_per_reader(
    records: TrialRecords,
    level: float = 0.95,
    on_empty_cell: Literal["raise", "pool"] = "pool",
) -> PanelEstimate:
    """Estimate each reader's parameters from a crossed trial's records.

    Args:
        records: The trial's reading events (aided arm; every reader must
            have read the full case set for the estimates to be
            comparable).
        level: Confidence level for the per-reader intervals.
        on_empty_cell: Per-reader cells are thinner than pooled ones, so
            pooling (within the reader's own records) is the default here.

    Raises:
        EstimationError: if the records contain no readers.
    """
    reader_names = records.aided().reader_names
    if not reader_names:
        raise EstimationError("no aided records to estimate readers from")
    by_reader = {
        name: estimate_model(
            records.for_reader(name), level=level, on_empty_cell=on_empty_cell
        )
        for name in reader_names
    }
    pooled = estimate_model(records, level=level, on_empty_cell=on_empty_cell)
    return PanelEstimate(by_reader=by_reader, pooled=pooled)
