"""Per-decision records collected by simulated trials.

A :class:`CaseRecord` is one (case, reader) reading event with everything
an analyst is allowed to see: the case's observable class, ground truth
(known in a trial's case set), the machine's behaviour on the case, and
the reader's decision.  :class:`TrialRecords` is the queryable collection
the estimators consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..core.case_class import CaseClass
from ..exceptions import EstimationError

__all__ = ["CaseRecord", "TrialRecords"]


@dataclass(frozen=True)
class CaseRecord:
    """One reading event in a trial.

    Attributes:
        case_id: The case read.
        reader_name: Which reader read it.
        case_class: The observable class assigned by the trial's
            classification criterion.
        has_cancer: Ground truth for the case.
        aided: Whether the reader saw the CADT's output.
        machine_failed: For aided cancer cases, whether the CADT failed to
            prompt the relevant features (``Mf``); for aided healthy cases,
            whether it placed any false prompt (machine false positive);
            ``None`` for unaided reading.
        machine_false_prompts: Number of false prompts shown (``None``
            unaided).
        recalled: The reader's decision: recall the patient or not.
    """

    case_id: int
    reader_name: str
    case_class: CaseClass
    has_cancer: bool
    aided: bool
    machine_failed: bool | None
    machine_false_prompts: int | None
    recalled: bool

    def __post_init__(self) -> None:
        if self.aided and self.machine_failed is None:
            raise EstimationError(
                f"aided record for case {self.case_id} must report machine_failed"
            )
        if not self.aided and self.machine_failed is not None:
            raise EstimationError(
                f"unaided record for case {self.case_id} must not report machine_failed"
            )
        if (
            self.machine_false_prompts is not None
            and self.machine_false_prompts < 0
        ):
            raise EstimationError(
                f"machine_false_prompts must be >= 0, got {self.machine_false_prompts!r}"
            )

    @property
    def human_failed(self) -> bool:
        """Reader failure: missed cancer, or recalled a healthy patient.

        Reader failures and system failures coincide (the reader's decision
        is the system's output).
        """
        if self.has_cancer:
            return not self.recalled
        return self.recalled

    @property
    def system_failed(self) -> bool:
        """Alias of :attr:`human_failed`, in the paper's system terms."""
        return self.human_failed


class TrialRecords:
    """A queryable collection of reading-event records.

    Args:
        records: The reading events, in any order.
    """

    def __init__(self, records: Iterable[CaseRecord] = ()):
        self._records: list[CaseRecord] = list(records)

    def append(self, record: CaseRecord) -> None:
        """Add one record."""
        if not isinstance(record, CaseRecord):
            raise EstimationError(f"expected CaseRecord, got {type(record).__name__}")
        self._records.append(record)

    def extend(self, records: Iterable[CaseRecord]) -> None:
        """Add many records."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CaseRecord]:
        return iter(self._records)

    def __add__(self, other: "TrialRecords") -> "TrialRecords":
        if not isinstance(other, TrialRecords):
            return NotImplemented
        return TrialRecords(list(self._records) + list(other._records))

    # -- filtering -----------------------------------------------------------

    def filter(self, predicate: Callable[[CaseRecord], bool]) -> "TrialRecords":
        """Records satisfying an arbitrary predicate."""
        return TrialRecords(r for r in self._records if predicate(r))

    def cancers(self) -> "TrialRecords":
        """Records of cancer cases (the false-negative demand space)."""
        return self.filter(lambda r: r.has_cancer)

    def healthy(self) -> "TrialRecords":
        """Records of healthy cases (the false-positive demand space)."""
        return self.filter(lambda r: not r.has_cancer)

    def aided(self) -> "TrialRecords":
        """Records of CADT-assisted reading."""
        return self.filter(lambda r: r.aided)

    def unaided(self) -> "TrialRecords":
        """Records of unaided reading."""
        return self.filter(lambda r: not r.aided)

    def for_class(self, case_class: CaseClass | str) -> "TrialRecords":
        """Records of one case class."""
        name = case_class.name if isinstance(case_class, CaseClass) else case_class
        return self.filter(lambda r: r.case_class.name == name)

    def for_reader(self, reader_name: str) -> "TrialRecords":
        """Records of one reader."""
        return self.filter(lambda r: r.reader_name == reader_name)

    # -- summaries ------------------------------------------------------------

    @property
    def case_classes(self) -> tuple[CaseClass, ...]:
        """Distinct case classes appearing in the records, sorted."""
        return tuple(sorted({r.case_class for r in self._records}))

    @property
    def reader_names(self) -> tuple[str, ...]:
        """Distinct reader names appearing in the records, sorted."""
        return tuple(sorted({r.reader_name for r in self._records}))

    def count(self, predicate: Callable[[CaseRecord], bool] | None = None) -> int:
        """Number of records (matching ``predicate`` when given)."""
        if predicate is None:
            return len(self._records)
        return sum(1 for r in self._records if predicate(r))

    def failure_rate(self) -> float:
        """Fraction of records where the system failed.

        Raises:
            EstimationError: on an empty collection.
        """
        if not self._records:
            raise EstimationError("cannot compute a failure rate from zero records")
        return self.count(lambda r: r.system_failed) / len(self._records)

    def class_counts(self) -> dict[CaseClass, int]:
        """Number of records per case class."""
        counts: dict[CaseClass, int] = {}
        for record in self._records:
            counts[record.case_class] = counts.get(record.case_class, 0) + 1
        return counts
