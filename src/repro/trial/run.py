"""Running simulated reading sessions and controlled trials.

:func:`run_reading_session` is the primitive: one reader works through a
workload, with or without CADT support, producing
:class:`~repro.trial.records.TrialRecords`.  :class:`ControlledTrial`
composes sessions into the paper's measurement instrument: an enriched
case set read by a panel of readers with the CADT, optionally alongside an
unaided control arm, yielding estimates of every model parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_probability
from ..cadt.tool import Cadt
from ..exceptions import SimulationError
from ..reader.panel import ReaderPanel
from ..reader.reader import ReaderModel
from ..screening.classifier import CaseClassifier
from ..screening.population import PopulationModel
from ..screening.workload import Workload, trial_workload
from .estimate import EstimationResult, estimate_model
from .records import CaseRecord, TrialRecords

__all__ = ["run_reading_session", "TrialOutcome", "ControlledTrial"]


def run_reading_session(
    workload: Workload,
    reader: ReaderModel,
    classifier: CaseClassifier,
    cadt: Cadt | None = None,
    rng: np.random.Generator | None = None,
) -> TrialRecords:
    """One reader reads a workload, producing per-case records.

    Args:
        workload: The cases, in reading order.
        reader: The reader (or any object with a compatible ``decide``).
        classifier: Classification criterion recorded with each case.
        cadt: The advisory tool; ``None`` for unaided reading.
        rng: Random generator for the reader's decisions (the reader's
            private generator when omitted).
    """
    records = TrialRecords()
    for case in workload:
        if cadt is not None:
            output = cadt.process(case)
            machine_failed = (
                output.is_false_negative(case)
                if case.has_cancer
                else output.is_false_positive(case)
            )
            decision = reader.decide(case, output, rng)
            records.append(
                CaseRecord(
                    case_id=case.case_id,
                    reader_name=reader.name,
                    case_class=classifier.classify(case),
                    has_cancer=case.has_cancer,
                    aided=True,
                    machine_failed=machine_failed,
                    machine_false_prompts=output.num_false_prompts,
                    recalled=decision.recall,
                )
            )
        else:
            decision = reader.decide(case, None, rng)
            records.append(
                CaseRecord(
                    case_id=case.case_id,
                    reader_name=reader.name,
                    case_class=classifier.classify(case),
                    has_cancer=case.has_cancer,
                    aided=False,
                    machine_failed=None,
                    machine_false_prompts=None,
                    recalled=decision.recall,
                )
            )
    return records


@dataclass
class TrialOutcome:
    """Everything a controlled trial produced.

    Attributes:
        workload: The case set that was read.
        aided_records: Reading events of the CADT-assisted arm.
        unaided_records: Reading events of the control arm (empty if the
            trial had none).
        estimation: Model parameters estimated from the aided cancer
            records.
    """

    workload: Workload
    aided_records: TrialRecords
    unaided_records: TrialRecords
    estimation: EstimationResult

    @property
    def all_records(self) -> TrialRecords:
        """Both arms' records combined."""
        return self.aided_records + self.unaided_records


class ControlledTrial:
    """A simulated controlled trial of the human-machine system.

    Mirrors the paper's measurement setting: a case set enriched in
    cancers ("a much higher proportion of cancers than that (less than 1%)
    of the screened population"), read by every panel member with the
    CADT, and optionally also unaided (a crossed control arm).

    Args:
        population: Source of synthetic cases.
        panel: The participating readers.
        cadt: The advisory tool under trial.
        classifier: Criterion dividing cases into classes for analysis.
        num_cases: Size of the trial case set.
        cancer_fraction: Enrichment level of the case set.
        include_unaided_arm: Whether each reader also reads every case
            without the tool (provides the without-CADT baseline).
        subtlety_enrichment: Selection bias of the trial's cancer case set
            toward subtle presentations (see
            :func:`~repro.screening.workload.trial_workload`); real trial
            sets overweight difficult cases relative to the field.
        on_empty_cell: Estimation policy for sparse cells (see
            :func:`~repro.trial.estimate.estimate_model`).
        seed: Master seed for the trial's own randomness.
    """

    def __init__(
        self,
        population: PopulationModel,
        panel: ReaderPanel,
        cadt: Cadt,
        classifier: CaseClassifier,
        num_cases: int = 400,
        cancer_fraction: float = 0.5,
        include_unaided_arm: bool = False,
        subtlety_enrichment: float = 0.0,
        on_empty_cell: str = "raise",
        seed: int | None = None,
    ):
        if num_cases <= 0:
            raise SimulationError(f"num_cases must be positive, got {num_cases!r}")
        self.population = population
        self.panel = panel
        self.cadt = cadt
        self.classifier = classifier
        self.num_cases = int(num_cases)
        self.cancer_fraction = check_probability(cancer_fraction, "cancer_fraction")
        self.include_unaided_arm = bool(include_unaided_arm)
        self.subtlety_enrichment = float(subtlety_enrichment)
        self.on_empty_cell = on_empty_cell
        self._rng = np.random.default_rng(seed)

    def run(self) -> TrialOutcome:
        """Generate the case set, run all reading sessions, and estimate.

        Each reader reads the full case set; the CADT output for a given
        case is sampled once per (reader, case) pair, reflecting that
        prompts are produced on each reading session's film copies.
        """
        workload = trial_workload(
            self.population,
            self.num_cases,
            self.cancer_fraction,
            subtlety_enrichment=self.subtlety_enrichment,
            selection_seed=int(self._rng.integers(0, 2**63 - 1)),
        )
        aided = TrialRecords()
        unaided = TrialRecords()
        for reader in self.panel:
            session_rng = np.random.default_rng(self._rng.integers(0, 2**63 - 1))
            aided.extend(
                run_reading_session(
                    workload, reader, self.classifier, self.cadt, session_rng
                )
            )
            if self.include_unaided_arm:
                control_rng = np.random.default_rng(self._rng.integers(0, 2**63 - 1))
                unaided.extend(
                    run_reading_session(
                        workload, reader, self.classifier, None, control_rng
                    )
                )
        estimation = estimate_model(aided, on_empty_cell=self.on_empty_cell)
        return TrialOutcome(
            workload=workload,
            aided_records=aided,
            unaided_records=unaided,
            estimation=estimation,
        )
