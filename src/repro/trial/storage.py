"""Persistence for trial records and long-running computation journals.

Trial data outlives analysis sessions and moves between tools; records
round-trip through a plain CSV with a fixed header, one reading event per
row.  Booleans are stored as ``0``/``1`` and the nullable machine columns
as empty cells, so the files load cleanly in any spreadsheet or dataframe
library.

The journal helpers serve interruptible computations (the sweep engine's
shard checkpoints): append-only JSONL, flushed and fsynced per append so
a killed process loses at most the line it was writing, and a loader
that tolerates exactly that — a truncated or garbled *final* line — while
still failing loudly on corruption anywhere else.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..core.case_class import CaseClass
from ..exceptions import EstimationError
from .records import CaseRecord, TrialRecords

__all__ = [
    "dump_records_csv",
    "load_records_csv",
    "CSV_COLUMNS",
    "append_journal_entries",
    "load_journal_entries",
]

PathLike = str | Path

#: Column order of the CSV format (also its implicit version).
CSV_COLUMNS = (
    "case_id",
    "reader_name",
    "case_class",
    "has_cancer",
    "aided",
    "machine_failed",
    "machine_false_prompts",
    "recalled",
)


def append_journal_entries(
    path: PathLike, entries: Iterable[Mapping[str, Any]]
) -> None:
    """Append JSON-object entries to a JSONL journal, durably.

    Each entry becomes one line.  The whole batch is written, flushed,
    and fsynced in a single append so a crash between calls never leaves
    a partial *batch* — at worst the final line of the last batch is
    truncated, which :func:`load_journal_entries` tolerates.

    Raises:
        EstimationError: if an entry is not a JSON object, or the file
            cannot be written.
    """
    lines: list[str] = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise EstimationError(
                f"journal entries must be JSON objects, got {type(entry).__name__}"
            )
        lines.append(json.dumps(dict(entry), sort_keys=True))
    if not lines:
        return
    try:
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise EstimationError(f"cannot append to journal {path}: {exc}") from exc


def load_journal_entries(path: PathLike) -> list[dict[str, Any]]:
    """Read a JSONL journal written by :func:`append_journal_entries`.

    A missing file is an empty journal.  A garbled *final* line is
    dropped silently — that is what a mid-write kill leaves behind, and
    dropping it simply re-runs the work it described.  Garbage anywhere
    earlier raises: that is corruption, not interruption.

    Raises:
        EstimationError: on an unreadable file or a malformed non-final
            line.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise EstimationError(f"cannot read journal {path}: {exc}") from exc
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    entries: list[dict[str, Any]] = []
    last = len(lines) - 1
    for number, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except ValueError:
            if number == last:
                break  # truncated tail from a mid-write kill
            raise EstimationError(
                f"{path}: malformed journal line {number + 1}: {line[:80]!r}"
            ) from None
        if not isinstance(entry, dict):
            raise EstimationError(
                f"{path}: journal line {number + 1} is not a JSON object"
            )
        entries.append(entry)
    return entries


def _bool_cell(value: bool) -> str:
    return "1" if value else "0"


def _parse_bool(cell: str, column: str, row_number: int) -> bool:
    if cell == "1":
        return True
    if cell == "0":
        return False
    raise EstimationError(
        f"row {row_number}: column {column!r} must be 0 or 1, got {cell!r}"
    )


def dump_records_csv(path: PathLike, records: TrialRecords) -> None:
    """Write trial records to a CSV file (header + one row per event)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for record in records:
            writer.writerow(
                [
                    record.case_id,
                    record.reader_name,
                    record.case_class.name,
                    _bool_cell(record.has_cancer),
                    _bool_cell(record.aided),
                    "" if record.machine_failed is None else _bool_cell(record.machine_failed),
                    "" if record.machine_false_prompts is None else record.machine_false_prompts,
                    _bool_cell(record.recalled),
                ]
            )


def load_records_csv(path: PathLike) -> TrialRecords:
    """Read trial records from a CSV file written by :func:`dump_records_csv`.

    Raises:
        EstimationError: on a missing/garbled header or malformed row.
    """
    records = TrialRecords()
    try:
        handle = open(path, newline="")
    except OSError as exc:
        raise EstimationError(f"cannot read records file {path}: {exc}") from exc
    with handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise EstimationError(f"{path}: empty records file") from None
        if tuple(header) != CSV_COLUMNS:
            raise EstimationError(
                f"{path}: unexpected header {header!r}; expected {list(CSV_COLUMNS)}"
            )
        for row_number, row in enumerate(reader, start=2):
            if len(row) != len(CSV_COLUMNS):
                raise EstimationError(
                    f"row {row_number}: expected {len(CSV_COLUMNS)} cells, got {len(row)}"
                )
            (
                case_id,
                reader_name,
                class_name,
                has_cancer,
                aided,
                machine_failed,
                false_prompts,
                recalled,
            ) = row
            try:
                parsed_id = int(case_id)
            except ValueError:
                raise EstimationError(
                    f"row {row_number}: case_id must be an integer, got {case_id!r}"
                ) from None
            try:
                parsed_prompts = None if false_prompts == "" else int(false_prompts)
            except ValueError:
                raise EstimationError(
                    f"row {row_number}: machine_false_prompts must be an integer "
                    f"or empty, got {false_prompts!r}"
                ) from None
            records.append(
                CaseRecord(
                    case_id=parsed_id,
                    reader_name=reader_name,
                    case_class=CaseClass(class_name),
                    has_cancer=_parse_bool(has_cancer, "has_cancer", row_number),
                    aided=_parse_bool(aided, "aided", row_number),
                    machine_failed=(
                        None
                        if machine_failed == ""
                        else _parse_bool(machine_failed, "machine_failed", row_number)
                    ),
                    machine_false_prompts=parsed_prompts,
                    recalled=_parse_bool(recalled, "recalled", row_number),
                )
            )
    return records
