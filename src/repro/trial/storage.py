"""Persistence for trial records and long-running computation journals.

Trial data outlives analysis sessions and moves between tools; records
round-trip through a plain CSV with a fixed header, one reading event per
row.  Booleans are stored as ``0``/``1`` and the nullable machine columns
as empty cells, so the files load cleanly in any spreadsheet or dataframe
library.

The journal helpers serve interruptible computations (the sweep engine's
shard checkpoints): append-only JSONL, flushed and fsynced per append so
a killed process loses at most the line it was writing, and a loader
that tolerates exactly that — a truncated or garbled *final* line — while
still failing loudly on corruption anywhere else.
"""

from __future__ import annotations

import csv
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..core.case_class import CaseClass
from ..exceptions import EstimationError
from .records import CaseRecord, TrialRecords

__all__ = [
    "dump_records_csv",
    "load_records_csv",
    "follow_records_csv",
    "follow_journal_records",
    "CSV_COLUMNS",
    "append_journal_entries",
    "load_journal_entries",
    "record_to_entry",
    "record_from_entry",
]

PathLike = str | Path

#: Column order of the CSV format (also its implicit version).
CSV_COLUMNS = (
    "case_id",
    "reader_name",
    "case_class",
    "has_cancer",
    "aided",
    "machine_failed",
    "machine_false_prompts",
    "recalled",
)


def append_journal_entries(
    path: PathLike, entries: Iterable[Mapping[str, Any]]
) -> None:
    """Append JSON-object entries to a JSONL journal, durably.

    Each entry becomes one line.  The whole batch is written, flushed,
    and fsynced in a single append so a crash between calls never leaves
    a partial *batch* — at worst the final line of the last batch is
    truncated, which :func:`load_journal_entries` tolerates.

    Raises:
        EstimationError: if an entry is not a JSON object, or the file
            cannot be written.
    """
    lines: list[str] = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise EstimationError(
                f"journal entries must be JSON objects, got {type(entry).__name__}"
            )
        lines.append(json.dumps(dict(entry), sort_keys=True))
    if not lines:
        return
    try:
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise EstimationError(f"cannot append to journal {path}: {exc}") from exc


def load_journal_entries(path: PathLike) -> list[dict[str, Any]]:
    """Read a JSONL journal written by :func:`append_journal_entries`.

    A missing file is an empty journal.  A garbled *final* line is
    dropped silently — that is what a mid-write kill leaves behind, and
    dropping it simply re-runs the work it described.  Garbage anywhere
    earlier raises: that is corruption, not interruption.

    Raises:
        EstimationError: on an unreadable file or a malformed non-final
            line.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise EstimationError(f"cannot read journal {path}: {exc}") from exc
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    entries: list[dict[str, Any]] = []
    last = len(lines) - 1
    for number, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except ValueError:
            if number == last:
                break  # truncated tail from a mid-write kill
            raise EstimationError(
                f"{path}: malformed journal line {number + 1}: {line[:80]!r}"
            ) from None
        if not isinstance(entry, dict):
            raise EstimationError(
                f"{path}: journal line {number + 1} is not a JSON object"
            )
        entries.append(entry)
    return entries


def record_to_entry(record: CaseRecord) -> dict[str, Any]:
    """One record as a JSON-ready object (the JSONL/wire twin of a CSV row).

    The key set equals :data:`CSV_COLUMNS`; nullable machine fields stay
    ``None`` instead of the CSV's empty cell.  Round-trips exactly through
    :func:`record_from_entry`, which makes the entries safe to carry in
    journals and ingest requests.
    """
    return {
        "case_id": record.case_id,
        "reader_name": record.reader_name,
        "case_class": record.case_class.name,
        "has_cancer": record.has_cancer,
        "aided": record.aided,
        "machine_failed": record.machine_failed,
        "machine_false_prompts": record.machine_false_prompts,
        "recalled": record.recalled,
    }


def _entry_bool(entry: Mapping[str, Any], key: str) -> bool:
    value = entry.get(key)
    if not isinstance(value, bool):
        raise EstimationError(f"record field {key!r} must be a boolean, got {value!r}")
    return value


def record_from_entry(entry: Mapping[str, Any]) -> CaseRecord:
    """Parse a JSON object written by :func:`record_to_entry`.

    Strict in the journal's spirit: unknown keys and mistyped fields are
    rejected loudly rather than silently coerced — a record that only
    *almost* parses would silently corrupt every downstream estimate.

    Raises:
        EstimationError: on a non-object entry, unknown/missing keys, a
            mistyped field, or an internally inconsistent record (e.g.
            aided without ``machine_failed``).
    """
    if not isinstance(entry, Mapping):
        raise EstimationError(
            f"record entry must be a JSON object, got {type(entry).__name__}"
        )
    unknown = set(entry) - set(CSV_COLUMNS)
    if unknown:
        raise EstimationError(
            f"unknown record fields {sorted(unknown)}; expected {list(CSV_COLUMNS)}"
        )
    case_id = entry.get("case_id")
    if not isinstance(case_id, int) or isinstance(case_id, bool):
        raise EstimationError(
            f"record field 'case_id' must be an integer, got {case_id!r}"
        )
    reader_name = entry.get("reader_name")
    if not isinstance(reader_name, str):
        raise EstimationError(
            f"record field 'reader_name' must be a string, got {reader_name!r}"
        )
    class_name = entry.get("case_class")
    if not isinstance(class_name, str) or not class_name:
        raise EstimationError(
            f"record field 'case_class' must be a non-empty string, got {class_name!r}"
        )
    machine_failed = entry.get("machine_failed")
    if machine_failed is not None and not isinstance(machine_failed, bool):
        raise EstimationError(
            f"record field 'machine_failed' must be a boolean or null, "
            f"got {machine_failed!r}"
        )
    false_prompts = entry.get("machine_false_prompts")
    if false_prompts is not None and (
        not isinstance(false_prompts, int) or isinstance(false_prompts, bool)
    ):
        raise EstimationError(
            f"record field 'machine_false_prompts' must be an integer or null, "
            f"got {false_prompts!r}"
        )
    return CaseRecord(
        case_id=case_id,
        reader_name=reader_name,
        case_class=CaseClass(class_name),
        has_cancer=_entry_bool(entry, "has_cancer"),
        aided=_entry_bool(entry, "aided"),
        machine_failed=machine_failed,
        machine_false_prompts=false_prompts,
        recalled=_entry_bool(entry, "recalled"),
    )


def _bool_cell(value: bool) -> str:
    return "1" if value else "0"


def _parse_bool(cell: str, column: str, row_number: int) -> bool:
    if cell == "1":
        return True
    if cell == "0":
        return False
    raise EstimationError(
        f"row {row_number}: column {column!r} must be 0 or 1, got {cell!r}"
    )


def dump_records_csv(path: PathLike, records: TrialRecords) -> None:
    """Write trial records to a CSV file (header + one row per event)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for record in records:
            writer.writerow(
                [
                    record.case_id,
                    record.reader_name,
                    record.case_class.name,
                    _bool_cell(record.has_cancer),
                    _bool_cell(record.aided),
                    "" if record.machine_failed is None else _bool_cell(record.machine_failed),
                    "" if record.machine_false_prompts is None else record.machine_false_prompts,
                    _bool_cell(record.recalled),
                ]
            )


def load_records_csv(path: PathLike) -> TrialRecords:
    """Read trial records from a CSV file written by :func:`dump_records_csv`.

    Raises:
        EstimationError: on a missing/garbled header or malformed row.
    """
    records = TrialRecords()
    try:
        handle = open(path, newline="")
    except OSError as exc:
        raise EstimationError(f"cannot read records file {path}: {exc}") from exc
    with handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise EstimationError(f"{path}: empty records file") from None
        if tuple(header) != CSV_COLUMNS:
            raise EstimationError(
                f"{path}: unexpected header {header!r}; expected {list(CSV_COLUMNS)}"
            )
        for row_number, row in enumerate(reader, start=2):
            records.append(_parse_row(row, row_number))
    return records


def _parse_row(row: list[str], row_number: int) -> CaseRecord:
    """Parse one CSV data row (shared by the loader and the follower)."""
    if len(row) != len(CSV_COLUMNS):
        raise EstimationError(
            f"row {row_number}: expected {len(CSV_COLUMNS)} cells, got {len(row)}"
        )
    (
        case_id,
        reader_name,
        class_name,
        has_cancer,
        aided,
        machine_failed,
        false_prompts,
        recalled,
    ) = row
    try:
        parsed_id = int(case_id)
    except ValueError:
        raise EstimationError(
            f"row {row_number}: case_id must be an integer, got {case_id!r}"
        ) from None
    try:
        parsed_prompts = None if false_prompts == "" else int(false_prompts)
    except ValueError:
        raise EstimationError(
            f"row {row_number}: machine_false_prompts must be an integer "
            f"or empty, got {false_prompts!r}"
        ) from None
    return CaseRecord(
        case_id=parsed_id,
        reader_name=reader_name,
        case_class=CaseClass(class_name),
        has_cancer=_parse_bool(has_cancer, "has_cancer", row_number),
        aided=_parse_bool(aided, "aided", row_number),
        machine_failed=(
            None
            if machine_failed == ""
            else _parse_bool(machine_failed, "machine_failed", row_number)
        ),
        machine_false_prompts=parsed_prompts,
        recalled=_parse_bool(recalled, "recalled", row_number),
    )


def _drain_complete_lines(
    path: PathLike, offset: int, carry: str
) -> tuple[list[str], int, str]:
    """Read text appended past ``offset``; return complete lines.

    Only lines terminated by a newline are returned — a half-written
    final line stays in ``carry`` for the next poll, which is exactly
    what an appending writer leaves mid-row.  A missing file counts as
    "nothing new yet".
    """
    try:
        with open(path, newline="") as handle:
            handle.seek(offset)
            chunk = handle.read()
            offset = handle.tell()
    except FileNotFoundError:
        return [], offset, carry
    except OSError as exc:
        raise EstimationError(f"cannot read records file {path}: {exc}") from exc
    text = carry + chunk
    lines = text.split("\n")
    carry = lines.pop()
    return [line.rstrip("\r") for line in lines if line.rstrip("\r")], offset, carry


def _follow_polls(
    poll_interval: float,
    max_idle_polls: int | None,
    sleep: Callable[[float], None] | None,
) -> Callable[[], None]:
    """Validate follow-mode knobs; return the sleeper (injectable)."""
    if poll_interval < 0:
        raise EstimationError(
            f"poll_interval must be non-negative, got {poll_interval!r}"
        )
    if max_idle_polls is not None and max_idle_polls < 1:
        raise EstimationError(
            f"max_idle_polls must be at least 1, got {max_idle_polls!r}"
        )
    sleeper = time.sleep if sleep is None else sleep
    return lambda: sleeper(poll_interval)


def follow_records_csv(
    path: PathLike,
    *,
    poll_interval: float = 1.0,
    max_idle_polls: int | None = None,
    sleep: Callable[[float], None] | None = None,
) -> Iterator[TrialRecords]:
    """Tail a growing records CSV, yielding each batch of appended rows.

    The streaming twin of :func:`load_records_csv` for live monitoring:
    each poll picks up newly appended *complete* rows (a half-written
    final line waits for the next poll), validates them with the same
    strict row parser, and yields the fresh records as one
    :class:`TrialRecords` batch.  A file that does not exist yet counts
    as an empty poll — the trial may simply not have started writing.

    Args:
        path: The records CSV being appended to.
        poll_interval: Seconds slept after a poll that found nothing.
        max_idle_polls: Stop after this many *consecutive* empty polls
            (``None``: follow until the consumer stops iterating).
        sleep: Sleep function, injectable for tests.

    Yields:
        Non-empty :class:`TrialRecords` batches, in file order.

    Raises:
        EstimationError: on a wrong header or a malformed *complete*
            row — that is corruption, not an unfinished append.
    """
    wait = _follow_polls(poll_interval, max_idle_polls, sleep)
    offset, carry = 0, ""
    header_checked = False
    row_number = 1
    idle = 0
    while True:
        lines, offset, carry = _drain_complete_lines(path, offset, carry)
        if lines and not header_checked:
            header = next(csv.reader([lines[0]]))
            if tuple(header) != CSV_COLUMNS:
                raise EstimationError(
                    f"{path}: unexpected header {header!r}; "
                    f"expected {list(CSV_COLUMNS)}"
                )
            header_checked = True
            lines = lines[1:]
        batch = TrialRecords()
        for row in csv.reader(lines):
            row_number += 1
            batch.append(_parse_row(row, row_number))
        if len(batch):
            idle = 0
            yield batch
            continue
        idle += 1
        if max_idle_polls is not None and idle >= max_idle_polls:
            return
        wait()


def follow_journal_records(
    path: PathLike,
    *,
    poll_interval: float = 1.0,
    max_idle_polls: int | None = None,
    sleep: Callable[[float], None] | None = None,
) -> Iterator[TrialRecords]:
    """Tail a JSONL record journal, yielding batches of appended records.

    Same polling contract as :func:`follow_records_csv`, but each
    complete line is a :func:`record_to_entry` JSON object.  Because
    only newline-terminated lines are parsed, the truncated final line
    a mid-write kill leaves behind is simply not consumed yet; a
    *complete* line that fails to parse is corruption and raises.

    Raises:
        EstimationError: on a complete line that is not valid JSON or
            not a valid record entry.
    """
    wait = _follow_polls(poll_interval, max_idle_polls, sleep)
    offset, carry = 0, ""
    line_number = 0
    idle = 0
    while True:
        lines, offset, carry = _drain_complete_lines(path, offset, carry)
        batch = TrialRecords()
        for line in lines:
            line_number += 1
            try:
                entry = json.loads(line)
            except ValueError:
                raise EstimationError(
                    f"{path}: malformed journal line {line_number}: {line[:80]!r}"
                ) from None
            try:
                batch.append(record_from_entry(entry))
            except EstimationError as exc:
                raise EstimationError(
                    f"{path}: journal line {line_number}: {exc}"
                ) from None
        if len(batch):
            idle = 0
            yield batch
            continue
        idle += 1
        if max_idle_polls is not None and idle >= max_idle_polls:
            return
        wait()
