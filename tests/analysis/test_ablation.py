"""Tests for repro.analysis.ablation."""

import pytest

from repro.analysis import (
    class_granularity_study,
    independence_assumption_error,
    marginal_vs_conditional_error,
    mixture_confound,
)
from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    ParallelClassParameters,
    ParallelModel,
    SequentialModel,
    paper_example_parameters,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
)
from repro.exceptions import ParameterError


class TestIndependenceAssumptionError:
    def test_zero_at_independence(self):
        model = ParallelModel({"only": ParallelClassParameters(0.3, 0.4, 0.1)})
        result = independence_assumption_error(model, DemandProfile({"only": 1.0}))
        assert result.error == pytest.approx(0.0)

    def test_positive_covariance_understates_failure(self):
        model = ParallelModel(
            {"only": ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.08)}
        )
        result = independence_assumption_error(model, DemandProfile({"only": 1.0}))
        assert result.error < 0  # naive prediction is optimistic
        assert result.relative_error < 0

    def test_negative_covariance_overstates_failure(self):
        model = ParallelModel(
            {"only": ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=-0.08)}
        )
        result = independence_assumption_error(model, DemandProfile({"only": 1.0}))
        assert result.error > 0


class TestMarginalVsConditional:
    def test_marginal_cannot_react_to_profile_change(self):
        result = marginal_vs_conditional_error(
            paper_example_parameters(), PAPER_TRIAL_PROFILE, PAPER_FIELD_PROFILE
        )
        # Marginal prediction equals the trial figure (0.235), conditional
        # correctly drops to 0.189.
        assert result["marginal_field"] == pytest.approx(0.235, abs=5e-4)
        assert result["conditional_field"] == pytest.approx(0.189, abs=5e-4)
        assert result["error"] == pytest.approx(0.046, abs=1e-3)

    def test_no_error_when_profiles_agree(self):
        result = marginal_vs_conditional_error(
            paper_example_parameters(), PAPER_TRIAL_PROFILE, PAPER_TRIAL_PROFILE
        )
        assert result["error"] == pytest.approx(0.0, abs=1e-12)


class TestClassGranularity:
    @pytest.fixture
    def fine_setup(self):
        parameters = ModelParameters(
            {
                "a": ClassParameters(0.05, 0.2, 0.1),
                "b": ClassParameters(0.15, 0.4, 0.2),
                "c": ClassParameters(0.4, 0.7, 0.3),
                "d": ClassParameters(0.7, 0.95, 0.5),
            }
        )
        trial = DemandProfile({"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1})
        field = DemandProfile({"a": 0.7, "b": 0.2, "c": 0.08, "d": 0.02})
        return parameters, trial, field

    def test_finest_grouping_is_exact(self, fine_setup):
        parameters, trial, field = fine_setup
        points = class_granularity_study(
            parameters,
            trial,
            field,
            {"4 classes": {"a": ["a"], "b": ["b"], "c": ["c"], "d": ["d"]}},
        )
        assert points[0].absolute_error == pytest.approx(0.0, abs=1e-9)

    def test_error_grows_as_classes_merge(self, fine_setup):
        parameters, trial, field = fine_setup
        points = class_granularity_study(
            parameters,
            trial,
            field,
            {
                "4 classes": {"a": ["a"], "b": ["b"], "c": ["c"], "d": ["d"]},
                "2 classes": {"easyish": ["a", "b"], "hardish": ["c", "d"]},
                "1 class": {"all": ["a", "b", "c", "d"]},
            },
        )
        by_name = {p.name: p for p in points}
        assert by_name["4 classes"].absolute_error <= by_name["2 classes"].absolute_error
        assert by_name["2 classes"].absolute_error <= by_name["1 class"].absolute_error
        assert by_name["1 class"].absolute_error > 0.005

    def test_incomplete_grouping_rejected(self, fine_setup):
        parameters, trial, field = fine_setup
        with pytest.raises(ParameterError):
            class_granularity_study(
                parameters, trial, field, {"bad": {"x": ["a", "b"]}}
            )

    def test_duplicated_fine_class_rejected(self, fine_setup):
        parameters, trial, field = fine_setup
        with pytest.raises(ParameterError):
            class_granularity_study(
                parameters,
                trial,
                field,
                {"bad": {"x": ["a", "b"], "y": ["b", "c", "d"]}},
            )


class TestMixtureConfound:
    def test_spurious_importance_from_merging(self):
        result = mixture_confound(
            {
                "easy_sub": ClassParameters(0.05, 0.1, 0.1),
                "hard_sub": ClassParameters(0.8, 0.9, 0.9),
            },
            {"easy_sub": 0.5, "hard_sub": 0.5},
        )
        assert result.subclass_importances == (0.0, 0.0)
        assert result.merged_importance > 0.3
        assert result.spurious_gain == pytest.approx(result.merged_importance)

    def test_no_confound_for_homogeneous_subclasses(self):
        params = ClassParameters(0.3, 0.6, 0.2)
        result = mixture_confound(
            {"x": params, "y": params}, {"x": 0.4, "y": 0.6}
        )
        assert result.merged_importance == pytest.approx(0.4)
        assert result.spurious_gain == pytest.approx(0.0)
