"""Tests for repro.analysis.monitoring (drift detection)."""

import numpy as np
import pytest

from repro.analysis import (
    MonitoringReport,
    monitor_records,
    profile_drift_test,
    rate_drift_test,
)
from repro.core import (
    CaseClass,
    ClassParameters,
    DemandProfile,
    ModelParameters,
)
from repro.exceptions import EstimationError
from repro.trial import CaseRecord, TrialRecords

REFERENCE_PARAMETERS = ModelParameters(
    {
        "easy": ClassParameters(0.07, 0.18, 0.14),
        "difficult": ClassParameters(0.41, 0.90, 0.40),
    }
)
REFERENCE_PROFILE = DemandProfile({"easy": 0.8, "difficult": 0.2})


def sample_field_records(
    parameters: ModelParameters,
    profile: DemandProfile,
    num_cases: int,
    seed: int,
) -> TrialRecords:
    rng = np.random.default_rng(seed)
    records = TrialRecords()
    names = [cls.name for cls in profile.classes]
    weights = [profile[n] for n in names]
    for case_id in range(num_cases):
        name = names[int(rng.choice(len(names), p=weights))]
        params = parameters[name]
        machine_failed = bool(rng.random() < params.p_machine_failure)
        p_fail = (
            params.p_human_failure_given_machine_failure
            if machine_failed
            else params.p_human_failure_given_machine_success
        )
        records.append(
            CaseRecord(
                case_id=case_id,
                reader_name="field",
                case_class=CaseClass(name),
                has_cancer=True,
                aided=True,
                machine_failed=machine_failed,
                machine_false_prompts=0,
                recalled=not bool(rng.random() < p_fail),
            )
        )
    return records


class TestChi2SurvivalFallback:
    """The scipy-free ``_chi2_survival`` branch (exact integer-dof series).

    Precomputed scipy 1.17 reference values pin the fallback even when
    scipy is absent from the environment; when it is present we also
    compare directly.  The old Wilson-Hilferty approximation failed these
    at the tails (tens of percent relative error for small p-values).
    """

    # (statistic, dof) -> scipy.stats.chi2.sf(statistic, dof)
    SCIPY_REFERENCE = {
        (0.5, 1): 4.795001221869534e-01,
        (2.3, 1): 1.293739988362981e-01,
        (5.0, 2): 8.208499862389880e-02,
        (1.2, 3): 7.530043116564580e-01,
        (10.0, 4): 4.042768199451279e-02,
        (3.3, 5): 6.538416823944545e-01,
        (25.0, 7): 7.588002556582502e-04,
        (60.0, 10): 3.624300952061492e-09,
        (4.2, 12): 9.795509199103667e-01,
        (100.0, 3): 1.554159431389603e-21,
    }

    @pytest.fixture
    def without_scipy(self, monkeypatch):
        from repro.analysis import monitoring

        monkeypatch.setattr(monitoring, "_scipy_chi2", None)
        return monitoring._chi2_survival

    def test_fallback_matches_scipy_reference_values(self, without_scipy):
        for (statistic, dof), expected in self.SCIPY_REFERENCE.items():
            got = without_scipy(statistic, dof)
            assert got == pytest.approx(expected, rel=1e-12), (statistic, dof)

    def test_fallback_matches_live_scipy_when_available(self, without_scipy):
        scipy_stats = pytest.importorskip("scipy.stats")
        for statistic in (0.01, 0.7, 3.9, 17.3, 42.0):
            for dof in range(1, 15):
                expected = float(scipy_stats.chi2.sf(statistic, dof))
                got = without_scipy(statistic, dof)
                assert got == pytest.approx(expected, rel=1e-10, abs=1e-300), (
                    statistic,
                    dof,
                )

    def test_far_tail_does_not_explode(self, without_scipy):
        # Deep underflow territory: must stay a probability, not a NaN.
        value = without_scipy(3000.0, 4)
        assert 0.0 <= value <= 1e-300

    def test_boundaries(self, without_scipy):
        assert without_scipy(0.0, 3) == 1.0
        assert without_scipy(-1.0, 3) == 1.0
        with pytest.raises(EstimationError, match="dof"):
            without_scipy(1.0, 0)

    def test_monitoring_verdicts_agree_with_and_without_scipy(self, monkeypatch):
        """End-to-end: a drift report's p-values must not depend on scipy."""
        from repro.analysis import monitoring

        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 2000, seed=9
        )
        with_scipy = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        monkeypatch.setattr(monitoring, "_scipy_chi2", None)
        without = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert [t.name for t in with_scipy.tests] == [t.name for t in without.tests]
        for a, b in zip(with_scipy.tests, without.tests):
            assert a.p_value == pytest.approx(b.p_value, rel=1e-10, abs=1e-300)


class TestProfileDriftTest:
    def test_matching_mix_not_flagged(self):
        result = profile_drift_test({"easy": 800, "difficult": 200}, REFERENCE_PROFILE)
        assert result.p_value > 0.5
        assert not result.drifted()

    def test_shifted_mix_flagged(self):
        result = profile_drift_test({"easy": 500, "difficult": 500}, REFERENCE_PROFILE)
        assert result.p_value < 1e-6
        assert result.drifted()

    def test_small_sample_insensitive(self):
        """A handful of cases cannot trigger the alarm even when skewed."""
        result = profile_drift_test({"easy": 3, "difficult": 3}, REFERENCE_PROFILE)
        assert not result.drifted(alpha=0.001)

    def test_unexplained_class_rejected(self):
        with pytest.raises(EstimationError):
            profile_drift_test({"martian": 10}, REFERENCE_PROFILE)

    def test_empty_counts_rejected(self):
        with pytest.raises(EstimationError):
            profile_drift_test({}, REFERENCE_PROFILE)


class TestRateDriftTest:
    def test_on_target_rate(self):
        result = rate_drift_test("x", 70, 1000, 0.07)
        assert abs(result.statistic) < 0.1
        assert not result.drifted()

    def test_doubled_rate_flagged(self):
        result = rate_drift_test("x", 140, 1000, 0.07)
        assert result.drifted(alpha=0.001)
        assert result.observed == pytest.approx(0.14)

    def test_two_sided(self):
        high = rate_drift_test("x", 140, 1000, 0.07)
        low = rate_drift_test("x", 10, 1000, 0.07)
        assert high.statistic > 0 > low.statistic
        assert high.drifted(0.001) and low.drifted(0.001)

    def test_validation(self):
        with pytest.raises(EstimationError):
            rate_drift_test("x", 1, 0, 0.1)
        with pytest.raises(EstimationError):
            rate_drift_test("x", 5, 3, 0.1)
        with pytest.raises(EstimationError):
            rate_drift_test("x", 1, 10, 1.5)


class TestMonitorRecords:
    def test_stable_field_raises_no_alarm(self):
        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 5000, seed=1
        )
        report = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert not report.any_drift

    def test_machine_degradation_detected_in_the_right_cell(self):
        """A silently drifted machine (PMf tripled on the easy class) must
        fire the easy/PMf monitor specifically."""
        drifted = REFERENCE_PARAMETERS.with_class(
            "easy", ClassParameters(0.21, 0.18, 0.14)
        )
        records = sample_field_records(drifted, REFERENCE_PROFILE, 5000, seed=2)
        report = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert report.any_drift
        assert report.drifted_tests[0].name == "easy/PMf"

    def test_reader_complacency_detected(self):
        """Reader drift (PHf|Ms up by half) fires the conditional cell."""
        drifted = REFERENCE_PARAMETERS.with_class(
            "easy", ClassParameters(0.07, 0.18, 0.21)
        )
        records = sample_field_records(drifted, REFERENCE_PROFILE, 8000, seed=3)
        report = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert report.any_drift
        assert any(t.name == "easy/PHf|Ms" for t in report.drifted_tests)

    def test_profile_shift_detected(self):
        shifted_profile = DemandProfile({"easy": 0.6, "difficult": 0.4})
        records = sample_field_records(
            REFERENCE_PARAMETERS, shifted_profile, 3000, seed=4
        )
        report = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert report.any_drift
        assert any(t.name == "profile" for t in report.drifted_tests)

    def test_bonferroni_adjustment(self):
        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 1000, seed=5
        )
        report = monitor_records(
            records, REFERENCE_PARAMETERS, REFERENCE_PROFILE, alpha=0.05
        )
        assert report.per_test_alpha == pytest.approx(0.05 / len(report.tests))

    def test_unknown_class_rejected(self):
        records = TrialRecords(
            [
                CaseRecord(1, "r", CaseClass("novel"), True, True, False, 0, True),
            ]
        )
        with pytest.raises(EstimationError):
            monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)

    def test_no_records_rejected(self):
        with pytest.raises(EstimationError):
            monitor_records(TrialRecords(), REFERENCE_PARAMETERS, REFERENCE_PROFILE)

    def test_false_alarm_rate_respected(self):
        """Over repeated stable batches, the family-wise alarm rate stays
        near (below) the configured alpha."""
        alarms = 0
        replications = 40
        for seed in range(replications):
            records = sample_field_records(
                REFERENCE_PARAMETERS, REFERENCE_PROFILE, 1500, seed=100 + seed
            )
            report = monitor_records(
                records, REFERENCE_PARAMETERS, REFERENCE_PROFILE, alpha=0.05
            )
            alarms += int(report.any_drift)
        assert alarms / replications <= 0.15
