"""Tests for repro.analysis.report and repro.analysis.figures."""

import pytest

from repro.analysis import (
    build_figure4,
    build_table1,
    build_table2,
    build_table3,
    frontier_series,
    render_table,
    trust_series,
)
from repro.core import (
    DIFFICULT,
    EASY,
    SystemOperatingPoint,
    TradeoffFrontier,
)


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", "+"}
        # All rows equal width (ignoring trailing strip of last cell).
        assert lines[0].split(" | ")[0].strip() == "a"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])


class TestTable1:
    def test_rows_match_paper(self):
        table = build_table1()
        rows = {row["class"]: row for row in table.rows()}
        assert rows["easy"]["trial"] == pytest.approx(0.8)
        assert rows["easy"]["field"] == pytest.approx(0.9)
        assert rows["easy"]["PMf"] == pytest.approx(0.07)
        assert rows["easy"]["PMs"] == pytest.approx(0.93)
        assert rows["difficult"]["PHf|Mf"] == pytest.approx(0.9)
        assert rows["difficult"]["PHf|Ms"] == pytest.approx(0.4)

    def test_render_contains_all_columns(self):
        text = build_table1().render()
        for token in ("PMf", "PMs", "PHf|Mf", "PHf|Ms", "easy", "difficult"):
            assert token in text


class TestTable2:
    def test_paper_values(self):
        table = build_table2()
        assert table.per_class[EASY] == pytest.approx(0.143, abs=5e-4)
        assert table.per_class[DIFFICULT] == pytest.approx(0.605, abs=5e-4)
        assert table.trial == pytest.approx(0.235, abs=5e-4)
        assert table.field == pytest.approx(0.189, abs=5e-4)

    def test_render(self):
        text = build_table2().render()
        assert "0.235" in text and "0.189" in text


class TestTable3:
    def test_paper_values(self):
        table = build_table3()
        assert table.improve_easy.per_class[EASY] == pytest.approx(0.140, abs=5e-4)
        assert table.improve_easy.trial == pytest.approx(0.233, abs=5e-4)
        assert table.improve_easy.field == pytest.approx(0.187, abs=5e-4)
        assert table.improve_difficult.per_class[DIFFICULT] == pytest.approx(
            0.4205, abs=5e-4
        )
        assert table.improve_difficult.trial == pytest.approx(0.198, abs=5e-4)
        assert table.improve_difficult.field == pytest.approx(0.171, abs=5e-4)

    def test_unimproved_class_untouched(self):
        table = build_table3()
        assert table.improve_easy.per_class[DIFFICULT] == pytest.approx(0.605, abs=5e-4)
        assert table.improve_difficult.per_class[EASY] == pytest.approx(0.143, abs=5e-4)

    def test_render(self):
        text = build_table3().render()
        assert "improved easy" in text and "improved difficult" in text

    def test_custom_factor(self):
        table = build_table3(factor=2.0)
        assert table.factor == 2.0
        # Half the machine failures on easy: PMf .035.
        assert table.improve_easy.per_class[EASY] == pytest.approx(
            0.14 * 0.965 + 0.18 * 0.035, abs=1e-6
        )


class TestFigure4:
    def test_lines_for_both_classes(self):
        lines = build_figure4()
        assert set(lines) == {EASY, DIFFICULT}

    def test_paper_intercepts_and_slopes(self):
        lines = build_figure4()
        assert lines[EASY].intercept == pytest.approx(0.14)
        assert lines[EASY].slope == pytest.approx(0.04)
        assert lines[DIFFICULT].intercept == pytest.approx(0.40)
        assert lines[DIFFICULT].slope == pytest.approx(0.50)

    def test_operating_point_on_line(self):
        for line in build_figure4().values():
            pmf, probability = line.operating_point
            assert probability == pytest.approx(line.intercept + line.slope * pmf)

    def test_series_spans_unit_interval(self):
        line = build_figure4(num_points=5)[EASY]
        xs = [x for x, _ in line.series]
        assert xs[0] == 0.0 and xs[-1] == 1.0
        assert len(line.series) == 5


class TestFrontierAndTrustSeries:
    def test_frontier_series_sorted_by_fp(self):
        frontier = TradeoffFrontier(
            [
                SystemOperatingPoint("b", 0.1, 0.3),
                SystemOperatingPoint("a", 0.3, 0.1),
            ]
        )
        series = frontier_series(frontier)
        assert [label for _, _, label in series] == ["a", "b"]
        fps = [fp for fp, _, _ in series]
        assert fps == sorted(fps)

    def test_trust_series_indexing(self):
        series = trust_series([1.0, 1.1, 1.2])
        assert series == ((1, 1.0), (2, 1.1), (3, 1.2))


class TestAuxiliaryRenderers:
    def test_render_feasibility(self):
        from repro.analysis import render_feasibility
        from repro.core import PAPER_TRIAL_PROFILE, paper_example_parameters
        from repro.trial import TrialDesign

        report = TrialDesign(num_cases=400, num_readers=4).feasibility(
            paper_example_parameters(), PAPER_TRIAL_PROFILE
        )
        text = render_feasibility(report)
        assert "machine_failure" in text
        assert "THIN" in text or "ok" in text

    def test_render_monitoring(self):
        from repro.analysis import monitor_records, render_monitoring
        from repro.core import CaseClass, ClassParameters, DemandProfile, ModelParameters
        from repro.trial import CaseRecord, TrialRecords

        records = TrialRecords(
            [
                CaseRecord(i, "r", CaseClass("x"), True, True, i % 5 == 0, 0, i % 3 != 0)
                for i in range(60)
            ]
        )
        report = monitor_records(
            records,
            ModelParameters({"x": ClassParameters(0.2, 0.5, 0.3)}),
            DemandProfile({"x": 1.0}),
        )
        text = render_monitoring(report)
        assert "monitor" in text and "p-value" in text

    def test_render_calibration(self, rng):
        from repro.analysis import calibrate_against_simulation, render_calibration
        from repro.cadt import DetectionAlgorithm
        from repro.reader import ReaderModel
        from repro.screening import PopulationModel

        cancers = PopulationModel(seed=1901).generate_cancers(30)
        report = calibrate_against_simulation(
            ReaderModel(name="r", seed=1902), DetectionAlgorithm(), cancers,
            repeats=5, rng=rng,
        )
        text = render_calibration(report)
        assert "predicted" in text and "observed" in text
