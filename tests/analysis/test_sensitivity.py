"""Tests for repro.analysis.sensitivity."""

import pytest

from repro.analysis import parameter_sensitivities, tornado
from repro.core import (
    DIFFICULT,
    EASY,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    SequentialModel,
    paper_example_parameters,
)
from repro.exceptions import ParameterError


@pytest.fixture
def model():
    return SequentialModel(paper_example_parameters())


class TestParameterSensitivities:
    def test_derivatives_are_the_analytic_formulas(self, model):
        entries = {
            (e.case_class.name, e.parameter): e
            for e in parameter_sensitivities(model, PAPER_TRIAL_PROFILE)
        }
        # dPHf/dPMf(difficult) = p(x)*t(x) = 0.2 * 0.5.
        assert entries[("difficult", "p_machine_failure")].derivative == pytest.approx(
            0.1
        )
        # dPHf/dPHf|Mf(easy) = p(x)*PMf(x) = 0.8 * 0.07.
        assert entries[
            ("easy", "p_human_failure_given_machine_failure")
        ].derivative == pytest.approx(0.056)
        # dPHf/dPHf|Ms(easy) = p(x)*PMs(x) = 0.8 * 0.93.
        assert entries[
            ("easy", "p_human_failure_given_machine_success")
        ].derivative == pytest.approx(0.744)

    def test_derivatives_match_finite_differences(self, model):
        from repro.core import ClassParameters

        h = 1e-7
        for entry in parameter_sensitivities(model, PAPER_FIELD_PROFILE):
            params = model.parameters[entry.case_class]
            values = {
                name: getattr(params, name)
                for name in (
                    "p_machine_failure",
                    "p_human_failure_given_machine_failure",
                    "p_human_failure_given_machine_success",
                )
            }
            values[entry.parameter] += h
            bumped = SequentialModel(
                model.parameters.with_class(entry.case_class, ClassParameters(**values))
            )
            numeric = (
                bumped.system_failure_probability(PAPER_FIELD_PROFILE)
                - model.system_failure_probability(PAPER_FIELD_PROFILE)
            ) / h
            assert numeric == pytest.approx(entry.derivative, abs=1e-5)

    def test_dominant_parameter_is_easy_phf_ms(self, model):
        """The paper's practical point: PHf|Ms on the frequent easy class
        dominates system failure — that is where reader training pays."""
        entries = parameter_sensitivities(model, PAPER_FIELD_PROFILE)
        top = entries[0]
        assert top.case_class == EASY
        assert top.parameter == "p_human_failure_given_machine_success"

    def test_elasticity_definition(self, model):
        total = model.system_failure_probability(PAPER_TRIAL_PROFILE)
        for entry in parameter_sensitivities(model, PAPER_TRIAL_PROFILE):
            assert entry.elasticity == pytest.approx(
                entry.derivative * entry.value / total
            )

    def test_sorted_by_absolute_derivative(self, model):
        entries = parameter_sensitivities(model, PAPER_TRIAL_PROFILE)
        magnitudes = [abs(e.derivative) for e in entries]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestTornado:
    def test_bars_bracket_baseline(self, model):
        for bar in tornado(model, PAPER_TRIAL_PROFILE):
            assert bar.low <= bar.baseline + 1e-12
            assert bar.high >= bar.baseline - 1e-12

    def test_sorted_by_swing(self, model):
        bars = tornado(model, PAPER_TRIAL_PROFILE)
        swings = [b.swing for b in bars]
        assert swings == sorted(swings, reverse=True)

    def test_swing_matches_linear_prediction(self, model):
        """Equation (8) is linear, so a +-10% swing of a parameter moves
        PHf by 2 * 0.1 * derivative * value (when no clipping occurs)."""
        entries = {
            (e.case_class.name, e.parameter): e
            for e in parameter_sensitivities(model, PAPER_TRIAL_PROFILE)
        }
        for bar in tornado(model, PAPER_TRIAL_PROFILE, relative_change=0.1):
            entry = entries[(bar.case_class.name, bar.parameter)]
            if 0.0 < entry.value * 1.1 <= 1.0:
                assert bar.swing == pytest.approx(
                    abs(2 * 0.1 * entry.derivative * entry.value), abs=1e-9
                )

    def test_perturbation_clipped_to_unit_interval(self):
        from repro.core import ClassParameters, DemandProfile, ModelParameters

        extreme = SequentialModel(
            ModelParameters({"x": ClassParameters(0.99, 0.99, 0.5)})
        )
        bars = tornado(extreme, DemandProfile({"x": 1.0}), relative_change=0.5)
        for bar in bars:
            assert 0.0 <= bar.low <= bar.high <= 1.0

    def test_invalid_relative_change(self, model):
        with pytest.raises(ParameterError):
            tornado(model, PAPER_TRIAL_PROFILE, relative_change=0.0)
