"""Streaming estimators and sequential alarms (repro.analysis.streaming).

The two acceptance-critical properties live here:

1. *Batch identity*: feeding every record of a set through a
   :class:`StreamingEstimator` and reading the report once reproduces
   ``monitor_records``'s statistics and p-values as identical floats.
2. *Merge invariance*: any partition of a record stream into shards,
   merged in any order, yields exactly the same state as single-stream
   ingestion (the state is pure integer counts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ClassCell,
    CusumAlarm,
    SprtAlarm,
    StreamingEstimator,
    StreamMonitor,
    WelfordAccumulator,
    monitor_records,
)
from repro.analysis.streaming import ESTIMATOR_STATE_SCHEMA
from repro.core import CaseClass, ClassParameters, DemandProfile, ModelParameters
from repro.exceptions import EstimationError
from repro.obs import Instrumentation
from repro.trial import CaseRecord, TrialRecords

from .test_monitoring import (
    REFERENCE_PARAMETERS,
    REFERENCE_PROFILE,
    sample_field_records,
)


def record(
    case_id=0,
    name="easy",
    cancer=True,
    aided=True,
    machine_failed=False,
    recalled=True,
    prompts=0,
):
    return CaseRecord(
        case_id=case_id,
        reader_name="field",
        case_class=CaseClass(name),
        has_cancer=cancer,
        aided=aided,
        machine_failed=machine_failed if aided else None,
        machine_false_prompts=prompts if aided else None,
        recalled=recalled,
    )


class TestBatchIdentity:
    """Feeding the stream reproduces the batch path exactly."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("num_cases", [1, 7, 500, 3000])
    def test_streaming_report_equals_monitor_records(self, seed, num_cases):
        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, num_cases, seed=seed
        )
        batch = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        stream = StreamingEstimator()
        stream.ingest_many(records)
        streamed = stream.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert len(batch.tests) == len(streamed.tests)
        for expected, got in zip(batch.tests, streamed.tests):
            # Bitwise identity, not approx: same integers into the same
            # test functions.
            assert got.name == expected.name
            assert got.statistic == expected.statistic
            assert got.p_value == expected.p_value
            assert got.observed == expected.observed
            assert got.reference == expected.reference
            assert got.sample_size == expected.sample_size
        assert streamed.alpha == batch.alpha
        assert streamed.per_test_alpha == batch.per_test_alpha

    def test_incremental_ingest_matches_one_shot(self):
        records = list(
            sample_field_records(REFERENCE_PARAMETERS, REFERENCE_PROFILE, 900, seed=5)
        )
        one_shot = StreamingEstimator()
        one_shot.ingest_many(records)
        dribble = StreamingEstimator()
        for r in records:
            dribble.ingest(r)
        assert dribble.state() == one_shot.state()

    def test_mixed_stream_filters_like_the_batch_path(self):
        """Unaided and healthy records are seen but not used."""
        used = [record(case_id=i, machine_failed=i % 3 == 0) for i in range(9)]
        noise = [
            record(case_id=100, cancer=False),
            record(case_id=101, aided=False),
            record(case_id=102, cancer=False, aided=False),
        ]
        stream = StreamingEstimator()
        stream.ingest_many(used + noise)
        assert stream.records_seen == 12
        assert stream.records_used == 9
        batch = monitor_records(
            TrialRecords(used + noise), REFERENCE_PARAMETERS, REFERENCE_PROFILE
        )
        streamed = stream.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        assert [t.p_value for t in streamed.tests] == [t.p_value for t in batch.tests]

    def test_error_parity_with_batch(self):
        empty = StreamingEstimator()
        with pytest.raises(EstimationError, match="no aided cancer records"):
            empty.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        stream = StreamingEstimator()
        stream.ingest(record(name="novel"))
        with pytest.raises(EstimationError, match="novel"):
            stream.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        stream2 = StreamingEstimator()
        stream2.ingest(record())
        with pytest.raises(EstimationError, match="alpha"):
            stream2.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE, alpha=1.5)

    def test_rejects_non_records(self):
        with pytest.raises(EstimationError, match="CaseRecord"):
            StreamingEstimator().ingest("not a record")


def _partition(records, boundaries):
    shards, start = [], 0
    for boundary in boundaries:
        shards.append(records[start:boundary])
        start = boundary
    shards.append(records[start:])
    return [shard for shard in shards if shard]


class TestMergeInvariance:
    """merge() is exactly associative/commutative over any partition."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_records=st.integers(min_value=0, max_value=200),
        cut_seed=st.integers(min_value=0, max_value=2**16),
        num_cuts=st.integers(min_value=0, max_value=8),
    )
    def test_any_partition_any_merge_order(
        self, seed, num_records, cut_seed, num_cuts
    ):
        records = list(
            sample_field_records(
                REFERENCE_PARAMETERS, REFERENCE_PROFILE, num_records, seed=seed
            )
        )
        single = StreamingEstimator()
        single.ingest_many(records)
        rng = np.random.default_rng(cut_seed)
        boundaries = sorted(
            int(b) for b in rng.integers(0, len(records) + 1, size=num_cuts)
        )
        shards = _partition(records, boundaries)
        states = []
        for shard in shards:
            estimator = StreamingEstimator()
            estimator.ingest_many(shard)
            states.append(estimator)
        order = rng.permutation(len(states)) if states else []
        merged = StreamingEstimator()
        for index in order:
            merged.merge(states[int(index)])
        assert merged.state() == single.state()

    def test_merge_through_serialised_state_round_trip(self):
        records = list(
            sample_field_records(REFERENCE_PARAMETERS, REFERENCE_PROFILE, 300, seed=6)
        )
        left, right = records[:137], records[137:]
        a, b = StreamingEstimator(), StreamingEstimator()
        a.ingest_many(left)
        b.ingest_many(right)
        merged = StreamingEstimator.from_state(a.state()).merge(
            StreamingEstimator.from_state(b.state())
        )
        single = StreamingEstimator()
        single.ingest_many(records)
        assert merged.state() == single.state()
        # And the reports built from the merged state are batch-identical.
        merged_report = merged.report(REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        batch = monitor_records(
            TrialRecords(records), REFERENCE_PARAMETERS, REFERENCE_PROFILE
        )
        assert [t.p_value for t in merged_report.tests] == [
            t.p_value for t in batch.tests
        ]

    def test_merge_rejects_foreign_objects(self):
        with pytest.raises(EstimationError, match="merge"):
            StreamingEstimator().merge({"records_used": 1})


class TestEstimatorState:
    def test_state_schema_and_validation(self):
        stream = StreamingEstimator()
        stream.ingest(record(machine_failed=True, recalled=False))
        state = stream.state()
        assert state["schema"] == ESTIMATOR_STATE_SCHEMA
        rebuilt = StreamingEstimator.from_state(state)
        assert rebuilt.state() == state

    def test_from_state_rejects_bad_payloads(self):
        with pytest.raises(EstimationError, match="schema"):
            StreamingEstimator.from_state({"schema": 99})
        with pytest.raises(EstimationError, match="mapping"):
            StreamingEstimator.from_state("nope")
        bad_counts = {
            "schema": ESTIMATOR_STATE_SCHEMA,
            "records_seen": 1,
            "records_used": 1,
            "cells": {
                "easy": {
                    "records": 1,
                    "machine_failures": 2,
                    "human_failures_given_mf": 0,
                    "human_failures_given_ms": 0,
                }
            },
        }
        with pytest.raises(EstimationError, match="machine_failures"):
            StreamingEstimator.from_state(bad_counts)
        mismatch = {
            "schema": ESTIMATOR_STATE_SCHEMA,
            "records_seen": 5,
            "records_used": 3,
            "cells": {},
        }
        with pytest.raises(EstimationError, match="records_used"):
            StreamingEstimator.from_state(mismatch)

    def test_estimates_and_gating(self):
        stream = StreamingEstimator()
        # 4 easy records: 1 machine failure (reader failed), 3 successes
        # (one reader failure).
        stream.ingest(record(case_id=0, machine_failed=True, recalled=False))
        stream.ingest(record(case_id=1, recalled=False))
        stream.ingest(record(case_id=2))
        stream.ingest(record(case_id=3))
        estimate = stream.estimates()["easy"]
        assert estimate.p_machine_failure == pytest.approx(0.25)
        assert estimate.p_human_failure_given_machine_failure == pytest.approx(1.0)
        assert estimate.p_human_failure_given_machine_success == pytest.approx(1 / 3)
        assert estimate.importance_index == pytest.approx(1.0 - 1 / 3)
        # A class with no machine failures yet has no PHf|Mf estimate.
        other = StreamingEstimator()
        other.ingest(record(name="difficult"))
        est = other.estimates()["difficult"]
        assert est.p_human_failure_given_machine_failure is None
        assert est.importance_index is None

    def test_covariance_decomposition_matches_model(self):
        """On a fully-observed stream the empirical decomposition equals the
        SequentialModel's, evaluated at the empirical parameters/profile."""
        from repro.core import SequentialModel

        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 4000, seed=7
        )
        stream = StreamingEstimator()
        stream.ingest_many(records)
        decomposition = stream.covariance_decomposition()
        assert decomposition is not None
        estimates = stream.estimates()
        empirical_parameters = ModelParameters(
            {
                name: ClassParameters(
                    e.p_machine_failure,
                    e.p_human_failure_given_machine_failure,
                    e.p_human_failure_given_machine_success,
                )
                for name, e in estimates.items()
            }
        )
        counts = stream.class_counts()
        total = sum(counts.values())
        empirical_profile = DemandProfile(
            {name: count / total for name, count in counts.items()}
        )
        model = SequentialModel(empirical_parameters)
        expected = model.covariance_decomposition(empirical_profile)
        assert decomposition.covariance == pytest.approx(expected.covariance)
        assert decomposition.total == pytest.approx(expected.total)

    def test_covariance_gated_until_estimable(self):
        stream = StreamingEstimator()
        assert stream.covariance_decomposition() is None
        stream.ingest(record())  # machine success only: no PHf|Mf yet
        assert stream.covariance_decomposition() is None
        stream.ingest(record(case_id=1, machine_failed=True))
        assert stream.covariance_decomposition() is not None


class TestWelfordAccumulator:
    def test_matches_numpy(self):
        rng = np.random.default_rng(11)
        values = rng.normal(3.0, 2.0, size=500)
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        assert acc.count == 500
        assert acc.mean == pytest.approx(float(np.mean(values)))
        assert acc.variance == pytest.approx(float(np.var(values, ddof=1)))
        assert acc.std == pytest.approx(float(np.std(values, ddof=1)))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        size=st.integers(min_value=0, max_value=100),
        cut=st.integers(min_value=0, max_value=100),
    )
    def test_merge_is_order_insensitive_to_rounding(self, seed, size, cut):
        rng = np.random.default_rng(seed)
        values = rng.normal(0.0, 1.0, size=size)
        cut = min(cut, size)
        single = WelfordAccumulator()
        for v in values:
            single.add(v)
        a, b = WelfordAccumulator(), WelfordAccumulator()
        for v in values[:cut]:
            a.add(v)
        for v in values[cut:]:
            b.add(v)
        merged = b.merge(a)  # reversed order on purpose
        assert merged.count == single.count
        assert merged.mean == pytest.approx(single.mean, rel=1e-9, abs=1e-12)
        assert merged.variance == pytest.approx(single.variance, rel=1e-9, abs=1e-12)

    def test_empty_and_single(self):
        acc = WelfordAccumulator()
        assert acc.mean == 0.0 and acc.variance == 0.0
        acc.add(4.0)
        assert acc.mean == 4.0 and acc.variance == 0.0
        assert acc.state() == {"count": 1, "mean": 4.0, "variance": 0.0}


class TestCusumAlarm:
    def test_sustained_shift_fires_and_latches(self):
        alarm = CusumAlarm("x", threshold=5.0, drift=0.5)
        # z = 1.5 grows S+ by 1.0 per step: fires exactly at step 5,
        # restarts, and accumulates again.
        fired_at = [step for step in range(1, 7) if alarm.update(1.5)]
        assert fired_at == [5]
        assert alarm.tripped
        assert alarm.fires == 1
        assert alarm.positive == pytest.approx(1.0)  # restarted after firing

    def test_in_control_stream_fires_rarely(self):
        """h=5, k=0.5 has a one-sided in-control ARL around 465; a short
        standard-normal stream should fire at most about once."""
        rng = np.random.default_rng(13)
        alarm = CusumAlarm("x", threshold=5.0, drift=0.5)
        fired = sum(alarm.update(z) for z in rng.normal(0.0, 1.0, size=200))
        assert fired <= 1

    def test_negative_shift_fires_the_other_side(self):
        alarm = CusumAlarm("x", threshold=4.0, drift=0.5)
        for _ in range(10):
            alarm.update(-1.2)
        assert alarm.tripped

    def test_infinite_statistic_trips_immediately(self):
        alarm = CusumAlarm("x", threshold=5.0, drift=0.5)
        assert alarm.update(float("inf"))

    def test_reset_clears_latch_but_keeps_fires(self):
        alarm = CusumAlarm("x", threshold=1.0, drift=0.0)
        alarm.update(2.0)
        assert alarm.tripped and alarm.fires == 1
        alarm.reset()
        assert not alarm.tripped and alarm.fires == 1

    def test_validation_and_state(self):
        with pytest.raises(EstimationError, match="threshold"):
            CusumAlarm("x", threshold=0.0)
        with pytest.raises(EstimationError, match="drift"):
            CusumAlarm("x", drift=-1.0)
        state = CusumAlarm("easy/PMf").state()
        assert state["kind"] == "cusum"
        assert state["name"] == "easy/PMf"


class TestSprtAlarm:
    def test_doubled_rate_crosses_upper_boundary(self):
        alarm = SprtAlarm("x", p0=0.07, p1=0.14, alpha=0.01, beta=0.10)
        rng = np.random.default_rng(17)
        fired = False
        for _ in range(200):
            window = rng.random(64) < 0.14
            if alarm.update(int(window.sum()), 64):
                fired = True
                break
        assert fired and alarm.tripped

    def test_on_target_rate_keeps_accepting_null(self):
        alarm = SprtAlarm("x", p0=0.07, p1=0.14, alpha=0.01, beta=0.10)
        rng = np.random.default_rng(19)
        fired = 0
        for _ in range(200):
            window = rng.random(64) < 0.07
            fired += alarm.update(int(window.sum()), 64)
        assert fired == 0
        assert not alarm.tripped

    def test_validation(self):
        with pytest.raises(EstimationError, match="rates"):
            SprtAlarm("x", p0=0.0, p1=0.5)
        with pytest.raises(EstimationError, match="p1 != p0"):
            SprtAlarm("x", p0=0.2, p1=0.2)
        with pytest.raises(EstimationError, match="error rates"):
            SprtAlarm("x", p0=0.1, p1=0.2, alpha=2.0)
        alarm = SprtAlarm("x", p0=0.1, p1=0.2)
        with pytest.raises(EstimationError, match="window"):
            alarm.update(5, 3)
        assert alarm.update(0, 0) is False

    def test_state_payload(self):
        state = SprtAlarm("easy/PMf", p0=0.07, p1=0.14).state()
        assert state["kind"] == "sprt"
        assert state["upper"] > 0 > state["lower"]


class TestStreamMonitor:
    def make_monitor(self, **kwargs):
        kwargs.setdefault("check_every", 100)
        return StreamMonitor(REFERENCE_PARAMETERS, REFERENCE_PROFILE, **kwargs)

    def test_stable_stream_raises_no_alarms(self):
        monitor = self.make_monitor()
        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 5000, seed=21
        )
        used = monitor.ingest(records)
        assert used == 5000
        assert monitor.checkpoints == 50
        assert monitor.tripped_alarms == 0
        assert monitor.fired_alarms == 0

    def test_machine_drift_fires_the_pmf_alarms(self):
        drifted = REFERENCE_PARAMETERS.with_class(
            "easy", ClassParameters(0.28, 0.18, 0.14)
        )
        monitor = self.make_monitor()
        records = sample_field_records(drifted, REFERENCE_PROFILE, 6000, seed=23)
        monitor.ingest(records)
        assert monitor.tripped_alarms > 0
        snapshot = monitor.snapshot()
        tripped = [
            key
            for key, state in {
                **snapshot["alarms"]["cusum"],
                **{f"sprt:{k}": v for k, v in snapshot["alarms"]["sprt"].items()},
            }.items()
            if state["tripped"]
        ]
        assert any("easy/PMf" in key for key in tripped)

    def test_alarm_state_published_to_obs(self):
        obs = Instrumentation("monitor-test")
        drifted = REFERENCE_PARAMETERS.with_class(
            "easy", ClassParameters(0.30, 0.18, 0.14)
        )
        monitor = self.make_monitor(obs=obs)
        monitor.ingest(sample_field_records(drifted, REFERENCE_PROFILE, 4000, seed=25))
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["monitor.checkpoints"] == monitor.checkpoints
        assert snapshot["counters"]["monitor.alarms.fired"] >= 1
        assert snapshot["gauges"]["monitor.records_used"] == 4000.0
        assert snapshot["gauges"]["monitor.alarms.tripped"] >= 1.0
        timeline_names = {event["name"] for event in snapshot["timeline"]}
        assert "monitor.checkpoint" in timeline_names
        assert any(name.startswith("monitor.alarm.") for name in timeline_names)

    def test_checkpoint_windows_are_disjoint(self):
        """Two equal halves ingested separately see their own windows: the
        second checkpoint's CUSUM input covers only the new records."""
        monitor = self.make_monitor(check_every=50)
        records = list(
            sample_field_records(REFERENCE_PARAMETERS, REFERENCE_PROFILE, 100, seed=27)
        )
        monitor.ingest(records[:50])
        first_cells = {
            name: monitor.estimator.cell(name).records
            for name in monitor.estimator.class_names
        }
        monitor.ingest(records[50:])
        assert monitor.checkpoints == 2
        assert sum(first_cells.values()) == 50
        assert monitor.estimator.records_used == 100

    def test_unknown_class_is_counted_not_fatal(self):
        obs = Instrumentation("unknown")
        monitor = self.make_monitor(check_every=1, obs=obs)
        monitor.ingest([record(name="novel")])
        assert monitor.snapshot()["unknown_classes"] == ["novel"]
        assert obs.metrics.snapshot()["counters"]["monitor.unknown_class"] == 1.0

    def test_merge_estimator_state_folds_shards(self):
        records = list(
            sample_field_records(REFERENCE_PARAMETERS, REFERENCE_PROFILE, 400, seed=29)
        )
        shard = StreamingEstimator()
        shard.ingest_many(records[200:])
        monitor = self.make_monitor()
        monitor.ingest(records[:200])
        monitor.merge_estimator_state(shard.state())
        single = StreamingEstimator()
        single.ingest_many(records)
        assert monitor.estimator.state() == single.state()
        assert monitor.checkpoints >= 2

    def test_report_is_batch_identical(self):
        records = sample_field_records(
            REFERENCE_PARAMETERS, REFERENCE_PROFILE, 1200, seed=31
        )
        monitor = self.make_monitor()
        monitor.ingest(records)
        batch = monitor_records(records, REFERENCE_PARAMETERS, REFERENCE_PROFILE)
        live = monitor.report()
        assert [t.p_value for t in live.tests] == [t.p_value for t in batch.tests]

    def test_snapshot_shape(self):
        monitor = self.make_monitor()
        monitor.ingest(
            sample_field_records(REFERENCE_PARAMETERS, REFERENCE_PROFILE, 300, seed=33)
        )
        snapshot = monitor.snapshot()
        assert snapshot["schema"] == 1
        assert snapshot["records"] == {"seen": 300, "used": 300}
        assert set(snapshot["alarms"]) == {"tripped", "fired", "cusum", "sprt"}
        assert snapshot["covariance"] is None or "covariance" in snapshot["covariance"]
        assert snapshot["false_prompts"]["count"] == 300

    def test_reset_alarms(self):
        drifted = REFERENCE_PARAMETERS.with_class(
            "easy", ClassParameters(0.30, 0.18, 0.14)
        )
        monitor = self.make_monitor()
        monitor.ingest(sample_field_records(drifted, REFERENCE_PROFILE, 4000, seed=35))
        assert monitor.tripped_alarms > 0
        monitor.reset_alarms()
        assert monitor.tripped_alarms == 0
        assert monitor.fired_alarms > 0  # history preserved

    def test_validation(self):
        with pytest.raises(EstimationError, match="ModelParameters"):
            StreamMonitor("nope", REFERENCE_PROFILE)
        with pytest.raises(EstimationError, match="DemandProfile"):
            StreamMonitor(REFERENCE_PARAMETERS, "nope")
        with pytest.raises(EstimationError, match="alpha"):
            self.make_monitor(alpha=0.0)
        with pytest.raises(EstimationError, match="check_every"):
            self.make_monitor(check_every=0)
        with pytest.raises(EstimationError, match="sprt_drift_factor"):
            self.make_monitor(sprt_drift_factor=1.0)


class TestClassCell:
    def test_add_and_minus(self):
        cell = ClassCell()
        cell.add(record(machine_failed=True, recalled=False))
        cell.add(record(case_id=1, recalled=False))
        cell.add(record(case_id=2))
        assert cell.records == 3
        assert cell.machine_failures == 1
        assert cell.human_failures_given_mf == 1
        assert cell.human_failures_given_ms == 1
        assert cell.machine_successes == 2
        earlier = ClassCell(records=1, machine_failures=1, human_failures_given_mf=1)
        window = cell.minus(earlier)
        assert window.records == 2
        assert window.machine_failures == 0
        assert window.human_failures_given_ms == 1

    def test_validate_catches_inconsistencies(self):
        with pytest.raises(EstimationError, match="negative"):
            ClassCell(records=-1).validate("x")
        with pytest.raises(EstimationError, match="Ms trials"):
            ClassCell(records=2, machine_failures=1, human_failures_given_ms=2).validate(
                "x"
            )
