"""Tests for repro.analysis.validation (calibration harness)."""

import numpy as np
import pytest

from repro.analysis import CalibrationReport, CellCalibration, calibrate_against_simulation
from repro.cadt import DetectionAlgorithm
from repro.core import CaseClass
from repro.exceptions import SimulationError
from repro.reader import MILD_BIAS, ReaderModel
from repro.screening import PopulationModel, SubtletyClassifier


@pytest.fixture(scope="module")
def cancers():
    return PopulationModel(seed=1301).generate_cancers(150)


class TestCellCalibration:
    def test_observed_and_z(self):
        cell = CellCalibration(
            case_class=CaseClass("x"),
            condition="machine_failure",
            predicted=0.5,
            observed_failures=60,
            observed_trials=100,
        )
        assert cell.observed == pytest.approx(0.6)
        assert cell.z_score == pytest.approx(0.1 / np.sqrt(0.25 / 100))

    def test_empty_cell_is_neutral(self):
        cell = CellCalibration(CaseClass("x"), "machine_failure", 0.5, 0, 0)
        assert np.isnan(cell.observed)
        assert cell.z_score == 0.0

    def test_degenerate_prediction(self):
        exact = CellCalibration(CaseClass("x"), "machine_success", 0.0, 0, 50)
        assert exact.z_score == 0.0
        wrong = CellCalibration(CaseClass("x"), "machine_success", 0.0, 5, 50)
        assert wrong.z_score == float("inf")


class TestCalibration:
    def test_well_specified_model_is_calibrated(self, cancers):
        """Simulating the exact same reader/algorithm the model was derived
        from must pass calibration."""
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=1302)
        algorithm = DetectionAlgorithm()
        report = calibrate_against_simulation(
            reader,
            algorithm,
            cancers,
            SubtletyClassifier(),
            repeats=40,
            rng=np.random.default_rng(1303),
        )
        assert report.total_readings == 150 * 40
        assert report.is_calibrated(z_threshold=3.5), (
            report.hottest_cell.case_class,
            report.hottest_cell.condition,
            report.hottest_cell.z_score,
        )

    def test_misspecified_model_is_flagged(self, cancers):
        """Simulating a *different* reader than the one the predictions
        came from must blow the calibration check: predict with a vigilant
        reader, simulate with a strongly biased one."""
        from repro.reader import STRONG_BIAS

        algorithm = DetectionAlgorithm()
        vigilant = ReaderModel(name="vigilant", seed=1304)
        report_against_wrong_truth = calibrate_against_simulation(
            vigilant.with_bias(STRONG_BIAS),  # simulated behaviour
            algorithm,
            cancers,
            repeats=40,
            rng=np.random.default_rng(1305),
        )
        # Self-calibration of the biased reader passes...
        assert report_against_wrong_truth.is_calibrated(z_threshold=3.5)
        # ...but scoring the biased reader's records against the vigilant
        # reader's predictions fails in the machine_failure cell.
        from repro.system import derive_class_parameters

        derived_vigilant = derive_class_parameters(vigilant, algorithm, cancers)
        biased = vigilant.with_bias(STRONG_BIAS)
        rng = np.random.default_rng(1306)
        failures = trials = 0
        for case in cancers:
            for _ in range(40):
                output = algorithm.process(case, rng)
                if output.is_false_negative(case):
                    decision = biased.decide(case, output, rng)
                    trials += 1
                    failures += int(not decision.recall)
        cell = CellCalibration(
            CaseClass("all"),
            "machine_failure",
            derived_vigilant.p_human_failure_given_machine_failure,
            failures,
            trials,
        )
        assert abs(cell.z_score) > 3.0

    def test_hottest_cell_reported(self, cancers):
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=1307)
        report = calibrate_against_simulation(
            reader,
            DetectionAlgorithm(),
            cancers[:50],
            repeats=10,
            rng=np.random.default_rng(1308),
        )
        hottest = report.hottest_cell
        assert abs(hottest.z_score) == report.max_abs_z

    def test_validation_errors(self, cancers):
        reader = ReaderModel(name="r")
        healthy = PopulationModel(seed=1309).generate_healthy(5)
        with pytest.raises(SimulationError):
            calibrate_against_simulation(reader, DetectionAlgorithm(), [])
        with pytest.raises(SimulationError):
            calibrate_against_simulation(reader, DetectionAlgorithm(), healthy)
        with pytest.raises(SimulationError):
            calibrate_against_simulation(
                reader, DetectionAlgorithm(), cancers, repeats=0
            )
