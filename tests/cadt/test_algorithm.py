"""Tests for repro.cadt.algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cadt import CadtOutput, DetectionAlgorithm
from repro.exceptions import SimulationError
from repro.screening import LesionType
from tests.screening.test_case_and_population import make_cancer_case


def make_healthy_case(**overrides):
    defaults = dict(
        case_id=2,
        has_cancer=False,
        lesion_type=None,
        breast_density=0.5,
        subtlety=0.0,
        machine_difficulty=0.0,
        human_detection_difficulty=0.0,
        human_classification_difficulty=0.2,
        distractor_level=0.4,
    )
    defaults.update(overrides)
    from repro.screening import Case

    return Case(**defaults)


class TestCadtOutput:
    def test_false_negative_on_cancer(self):
        case = make_cancer_case()
        output = CadtOutput(case_id=1, prompted_relevant=False, num_false_prompts=0)
        assert output.is_false_negative(case)
        assert not output.is_false_positive(case)

    def test_false_positive_on_healthy(self):
        case = make_healthy_case()
        output = CadtOutput(case_id=2, prompted_relevant=False, num_false_prompts=2)
        assert output.is_false_positive(case)
        assert not output.is_false_negative(case)

    def test_has_any_prompt(self):
        assert CadtOutput(1, True, 0).has_any_prompt
        assert CadtOutput(1, False, 3).has_any_prompt
        assert not CadtOutput(1, False, 0).has_any_prompt

    def test_negative_prompts_rejected(self):
        with pytest.raises(SimulationError):
            CadtOutput(1, True, -1)


class TestMissProbability:
    def test_nominal_threshold_matches_case_difficulty(self):
        algorithm = DetectionAlgorithm(threshold_shift=0.0)
        case = make_cancer_case(machine_difficulty=0.3)
        assert algorithm.miss_probability(case) == pytest.approx(0.3)

    def test_healthy_case_never_missed(self):
        algorithm = DetectionAlgorithm()
        assert algorithm.miss_probability(make_healthy_case()) == 0.0

    def test_threshold_shift_monotone(self):
        case = make_cancer_case(machine_difficulty=0.3)
        conservative = DetectionAlgorithm(threshold_shift=1.0)
        aggressive = DetectionAlgorithm(threshold_shift=-1.0)
        nominal = DetectionAlgorithm()
        assert (
            aggressive.miss_probability(case)
            < nominal.miss_probability(case)
            < conservative.miss_probability(case)
        )

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_miss_probability_valid(self, difficulty, shift):
        algorithm = DetectionAlgorithm(threshold_shift=shift)
        case = make_cancer_case(machine_difficulty=difficulty)
        assert 0.0 < algorithm.miss_probability(case) < 1.0


class TestFalsePrompts:
    def test_rate_grows_with_distractors(self):
        algorithm = DetectionAlgorithm()
        calm = make_healthy_case(distractor_level=0.1)
        busy = make_healthy_case(distractor_level=0.9)
        assert algorithm.false_prompt_rate(busy) > algorithm.false_prompt_rate(calm)

    def test_threshold_suppresses_false_prompts(self):
        case = make_healthy_case()
        conservative = DetectionAlgorithm(threshold_shift=1.0)
        nominal = DetectionAlgorithm()
        assert conservative.false_prompt_rate(case) < nominal.false_prompt_rate(case)

    def test_false_positive_probability_formula(self):
        algorithm = DetectionAlgorithm()
        case = make_healthy_case()
        rate = algorithm.false_prompt_rate(case)
        assert algorithm.false_positive_probability(case) == pytest.approx(
            1 - np.exp(-rate)
        )

    def test_tradeoff_between_error_kinds(self):
        """Raising the threshold trades FNs up for FPs down — the Section 7
        compromise the tool's designers must pick."""
        cancer = make_cancer_case(machine_difficulty=0.3)
        healthy = make_healthy_case()
        low = DetectionAlgorithm(threshold_shift=-1.0)
        high = DetectionAlgorithm(threshold_shift=1.0)
        assert high.miss_probability(cancer) > low.miss_probability(cancer)
        assert high.false_positive_probability(healthy) < low.false_positive_probability(
            healthy
        )


class TestProcessing:
    def test_output_case_id_matches(self, rng):
        algorithm = DetectionAlgorithm()
        output = algorithm.process(make_cancer_case(), rng)
        assert output.case_id == 1

    def test_healthy_never_prompted_relevant(self, rng):
        algorithm = DetectionAlgorithm()
        for _ in range(20):
            assert not algorithm.process(make_healthy_case(), rng).prompted_relevant

    def test_empirical_miss_rate_matches_probability(self, rng):
        algorithm = DetectionAlgorithm()
        case = make_cancer_case(machine_difficulty=0.3)
        misses = sum(
            not algorithm.process(case, rng).prompted_relevant for _ in range(5000)
        )
        assert misses / 5000 == pytest.approx(0.3, abs=0.02)

    def test_empirical_false_prompt_rate(self, rng):
        algorithm = DetectionAlgorithm()
        case = make_healthy_case()
        counts = [algorithm.process(case, rng).num_false_prompts for _ in range(5000)]
        assert float(np.mean(counts)) == pytest.approx(
            algorithm.false_prompt_rate(case), rel=0.1
        )


class TestRetuning:
    def test_with_threshold_shift(self):
        retuned = DetectionAlgorithm().with_threshold_shift(0.7)
        assert retuned.threshold_shift == pytest.approx(0.7)
        assert "@+0.700" in retuned.version

    def test_improved_reduces_both_errors(self):
        base = DetectionAlgorithm()
        improved = base.improved(1.0)
        cancer = make_cancer_case(machine_difficulty=0.3)
        healthy = make_healthy_case()
        assert improved.miss_probability(cancer) < base.miss_probability(cancer)
        assert improved.false_prompt_rate(healthy) < base.false_prompt_rate(healthy)

    def test_improved_rejects_negative_gain(self):
        with pytest.raises(SimulationError):
            DetectionAlgorithm().improved(-0.5)

    def test_validation(self):
        with pytest.raises(SimulationError):
            DetectionAlgorithm(threshold_shift=float("nan"))
        with pytest.raises(SimulationError):
            DetectionAlgorithm(base_false_prompt_rate=-0.1)
        with pytest.raises(SimulationError):
            DetectionAlgorithm(distractor_gain=-1.0)
