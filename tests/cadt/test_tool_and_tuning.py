"""Tests for repro.cadt.tool and repro.cadt.tuning."""

import numpy as np
import pytest

from repro.cadt import (
    Cadt,
    DetectionAlgorithm,
    machine_operating_point,
    threshold_for_miss_rate,
    threshold_sweep,
)
from repro.exceptions import ParameterError, SimulationError
from repro.screening import PopulationModel
from tests.cadt.test_algorithm import make_healthy_case
from tests.screening.test_case_and_population import make_cancer_case


@pytest.fixture
def mixed_cases(population):
    return population.generate_cancers(150) + population.generate_healthy(150)


class TestCadtTool:
    def test_processes_and_counts(self):
        tool = Cadt(seed=1)
        tool.process(make_cancer_case())
        tool.process(make_healthy_case())
        assert tool.cases_processed == 2

    def test_no_drift_by_default(self):
        tool = Cadt(seed=1)
        for _ in range(100):
            tool.process(make_healthy_case())
        assert tool.accumulated_drift == 0.0
        assert tool.effective_algorithm is tool.algorithm

    def test_drift_accumulates_and_degrades(self):
        tool = Cadt(drift_per_case=0.01, seed=1)
        case = make_cancer_case(machine_difficulty=0.3)
        baseline = tool.miss_probability(case)
        for _ in range(200):
            tool.process(make_healthy_case())
        assert tool.accumulated_drift == pytest.approx(2.0)
        assert tool.miss_probability(case) > baseline

    def test_maintenance_resets_drift(self):
        tool = Cadt(drift_per_case=0.01, seed=1)
        case = make_cancer_case(machine_difficulty=0.3)
        baseline = tool.miss_probability(case)
        for _ in range(100):
            tool.process(make_healthy_case())
        tool.perform_maintenance()
        assert tool.accumulated_drift == 0.0
        assert tool.miss_probability(case) == pytest.approx(baseline)
        assert tool.cases_processed == 100

    def test_film_quality_offset(self):
        good_site = Cadt(seed=1)
        bad_site = Cadt(film_quality_offset=0.8, seed=1)
        case = make_cancer_case(machine_difficulty=0.3)
        assert bad_site.miss_probability(case) > good_site.miss_probability(case)

    def test_validation(self):
        with pytest.raises(SimulationError):
            Cadt(drift_per_case=float("inf"))
        with pytest.raises(SimulationError):
            Cadt(film_quality_offset=float("nan"))

    def test_repr(self):
        assert "processed=0" in repr(Cadt(seed=1))


class TestMachineOperatingPoint:
    def test_rates_in_bounds(self, mixed_cases):
        point = machine_operating_point(DetectionAlgorithm(), mixed_cases)
        assert 0.0 <= point.miss_rate <= 1.0
        assert 0.0 <= point.false_positive_rate <= 1.0
        assert point.mean_false_prompts >= 0.0

    def test_needs_both_kinds(self, population):
        with pytest.raises(SimulationError):
            machine_operating_point(
                DetectionAlgorithm(), population.generate_cancers(10)
            )

    def test_matches_manual_mean(self, population):
        cases = population.generate_cancers(50) + population.generate_healthy(50)
        algorithm = DetectionAlgorithm()
        point = machine_operating_point(algorithm, cases)
        cancers = [c for c in cases if c.has_cancer]
        manual = float(np.mean([algorithm.miss_probability(c) for c in cancers]))
        assert point.miss_rate == pytest.approx(manual)


class TestThresholdSweep:
    def test_monotone_tradeoff(self, mixed_cases):
        points = threshold_sweep(
            DetectionAlgorithm(), mixed_cases, np.linspace(-2.0, 2.0, 9)
        )
        miss_rates = [p.miss_rate for p in points]
        fp_rates = [p.false_positive_rate for p in points]
        assert miss_rates == sorted(miss_rates)
        assert fp_rates == sorted(fp_rates, reverse=True)

    def test_empty_sweep_rejected(self, mixed_cases):
        with pytest.raises(ParameterError):
            threshold_sweep(DetectionAlgorithm(), mixed_cases, [])


class TestThresholdForMissRate:
    def test_achieves_target(self, population):
        cancers = population.generate_cancers(300)
        algorithm = DetectionAlgorithm()
        shift = threshold_for_miss_rate(algorithm, cancers, target_miss_rate=0.10)
        retuned = algorithm.with_threshold_shift(shift)
        achieved = float(np.mean([retuned.miss_probability(c) for c in cancers]))
        assert achieved == pytest.approx(0.10, abs=1e-3)

    def test_lower_target_needs_lower_threshold(self, population):
        cancers = population.generate_cancers(300)
        algorithm = DetectionAlgorithm()
        strict = threshold_for_miss_rate(algorithm, cancers, 0.05)
        loose = threshold_for_miss_rate(algorithm, cancers, 0.30)
        assert strict < loose

    def test_invalid_target(self, population):
        cancers = population.generate_cancers(10)
        with pytest.raises(ParameterError):
            threshold_for_miss_rate(DetectionAlgorithm(), cancers, 0.0)

    def test_no_cancers_rejected(self, population):
        with pytest.raises(SimulationError):
            threshold_for_miss_rate(
                DetectionAlgorithm(), population.generate_healthy(10), 0.1
            )
