"""Shared fixtures: the paper's worked example and small substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.core import (
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    ClassParameters,
    ModelParameters,
    SequentialModel,
    paper_example_parameters,
)
from repro.reader import MILD_BIAS, ReaderModel, ReaderSkill
from repro.screening import PopulationModel, SubtletyClassifier


@pytest.fixture
def paper_parameters() -> ModelParameters:
    """The paper's Table 1 model parameters."""
    return paper_example_parameters()


@pytest.fixture
def paper_model(paper_parameters) -> SequentialModel:
    """A sequential model at the paper's Table 1 parameters."""
    return SequentialModel(paper_parameters)


@pytest.fixture
def trial_profile():
    """The paper's trial demand profile (80/20)."""
    return PAPER_TRIAL_PROFILE


@pytest.fixture
def field_profile():
    """The paper's field demand profile (90/10)."""
    return PAPER_FIELD_PROFILE


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for deterministic sampling tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def population() -> PopulationModel:
    """A seeded synthetic population."""
    return PopulationModel(seed=2024)


@pytest.fixture
def classifier() -> SubtletyClassifier:
    """The default easy/difficult classification criterion."""
    return SubtletyClassifier()


@pytest.fixture
def cadt() -> Cadt:
    """A seeded CADT at nominal tuning."""
    return Cadt(DetectionAlgorithm(), seed=77)


@pytest.fixture
def reader() -> ReaderModel:
    """A seeded average reader with mild automation bias."""
    return ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="fixture_reader", seed=55)


@pytest.fixture
def example_class_parameters() -> ClassParameters:
    """A generic, asymmetric parameter triple for single-class tests."""
    return ClassParameters(
        p_machine_failure=0.2,
        p_human_failure_given_machine_failure=0.7,
        p_human_failure_given_machine_success=0.1,
    )
