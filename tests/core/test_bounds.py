"""Tests for repro.core.bounds (Figure 4's line and improvement limits)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIFFICULT,
    EASY,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    ClassParameters,
    FailureLine,
    SequentialModel,
    failure_line,
    figure4_series,
    machine_improvement_floor,
    machine_improvement_headroom,
    paper_example_parameters,
)
from repro.exceptions import ParameterError, ProbabilityError


class TestFailureLine:
    def test_intercept_and_slope_from_parameters(self, example_class_parameters):
        line = failure_line(example_class_parameters)
        assert line.intercept == pytest.approx(0.1)
        assert line.slope == pytest.approx(0.6)

    def test_evaluation(self, example_class_parameters):
        line = failure_line(example_class_parameters)
        assert line(0.0) == pytest.approx(0.1)
        assert line(0.5) == pytest.approx(0.4)
        assert line(1.0) == pytest.approx(0.7)

    def test_current_operating_point_on_line(self, example_class_parameters):
        line = failure_line(example_class_parameters)
        assert line(example_class_parameters.p_machine_failure) == pytest.approx(
            example_class_parameters.p_system_failure
        )

    def test_endpoints(self, example_class_parameters):
        line = failure_line(example_class_parameters)
        assert line.at_perfect_machine == pytest.approx(0.1)
        assert line.at_useless_machine == pytest.approx(0.7)

    def test_at_useless_machine_equals_phf_given_mf(self, example_class_parameters):
        line = failure_line(example_class_parameters)
        assert line.at_useless_machine == pytest.approx(
            example_class_parameters.p_human_failure_given_machine_failure
        )

    def test_negative_slope_allowed(self):
        line = FailureLine(intercept=0.5, slope=-0.3)
        assert line(1.0) == pytest.approx(0.2)

    def test_invalid_intercept_rejected(self):
        with pytest.raises(ProbabilityError):
            FailureLine(intercept=1.2, slope=0.0)

    def test_invalid_slope_rejected(self):
        with pytest.raises(ParameterError):
            FailureLine(intercept=0.5, slope=1.5)

    def test_invalid_machine_probability_rejected(self):
        line = FailureLine(intercept=0.1, slope=0.2)
        with pytest.raises(ProbabilityError):
            line(1.5)

    def test_series(self):
        line = FailureLine(intercept=0.1, slope=0.5)
        series = line.series([0.0, 0.5, 1.0])
        assert series == [
            (0.0, pytest.approx(0.1)),
            (0.5, pytest.approx(0.35)),
            (1.0, pytest.approx(0.6)),
        ]


class TestFigure4Series:
    def test_length_and_range(self, example_class_parameters):
        series = figure4_series(example_class_parameters, num_points=11)
        assert len(series) == 11
        assert series[0][0] == 0.0
        assert series[-1][0] == 1.0

    def test_monotone_for_positive_importance(self, example_class_parameters):
        series = figure4_series(example_class_parameters, num_points=21)
        ys = [y for _, y in series]
        assert ys == sorted(ys)

    def test_paper_difficult_line(self):
        params = paper_example_parameters()[DIFFICULT]
        series = figure4_series(params, num_points=3)
        assert series[0][1] == pytest.approx(0.4)   # intercept = PHf|Ms
        assert series[-1][1] == pytest.approx(0.9)  # PHf|Mf at PMf = 1

    def test_too_few_points_rejected(self, example_class_parameters):
        with pytest.raises(ParameterError):
            figure4_series(example_class_parameters, num_points=1)


class TestImprovementBounds:
    def test_floor_matches_model_method(self, paper_model):
        assert machine_improvement_floor(
            paper_model, PAPER_TRIAL_PROFILE
        ) == pytest.approx(paper_model.machine_improvement_floor(PAPER_TRIAL_PROFILE))

    def test_headroom_formula(self, paper_model):
        headroom = machine_improvement_headroom(paper_model, PAPER_FIELD_PROFILE)
        expected = paper_model.system_failure_probability(
            PAPER_FIELD_PROFILE
        ) - paper_model.machine_improvement_floor(PAPER_FIELD_PROFILE)
        assert headroom == pytest.approx(expected)

    def test_headroom_equals_expected_relevance(self, paper_model):
        """Headroom = E_p[PMf(x) * t(x)] by equation (9)."""
        params = paper_model.parameters
        expected = PAPER_FIELD_PROFILE.expectation(
            lambda cls: params[cls].p_machine_failure * params[cls].importance_index
        )
        assert machine_improvement_headroom(
            paper_model, PAPER_FIELD_PROFILE
        ) == pytest.approx(expected)

    def test_no_machine_improvement_beats_floor(self, paper_model):
        """Even a 10^6-fold machine improvement cannot cross the floor."""
        hugely_improved = paper_model.with_machine_improved(1e6)
        assert hugely_improved.system_failure_probability(
            PAPER_TRIAL_PROFILE
        ) >= machine_improvement_floor(paper_model, PAPER_TRIAL_PROFILE) - 1e-12

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1.0, max_value=1e6),
    )
    def test_floor_invariant_under_machine_improvement(self, pmf, phf_mf, phf_ms, factor):
        from repro.core import DemandProfile, ModelParameters

        model = SequentialModel(
            ModelParameters({"only": ClassParameters(pmf, phf_mf, phf_ms)})
        )
        profile = DemandProfile({"only": 1.0})
        improved = model.with_machine_improved(factor)
        assert machine_improvement_floor(improved, profile) == pytest.approx(
            machine_improvement_floor(model, profile)
        )


class TestRequiredMachineImprovement:
    def test_closed_form_round_trip(self, paper_model):
        """The computed factor, applied uniformly, hits the target exactly."""
        from repro.core import required_machine_improvement

        current = paper_model.system_failure_probability(PAPER_FIELD_PROFILE)
        floor = machine_improvement_floor(paper_model, PAPER_FIELD_PROFILE)
        target = (current + floor) / 2.0
        factor = required_machine_improvement(
            paper_model, PAPER_FIELD_PROFILE, target
        )
        improved = paper_model.with_machine_improved(factor)
        assert improved.system_failure_probability(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(target, abs=1e-12)

    def test_no_improvement_needed_gives_factor_one(self, paper_model):
        from repro.core import required_machine_improvement

        current = paper_model.system_failure_probability(PAPER_FIELD_PROFILE)
        assert required_machine_improvement(
            paper_model, PAPER_FIELD_PROFILE, current
        ) == pytest.approx(1.0)

    def test_target_below_floor_rejected(self, paper_model):
        from repro.core import required_machine_improvement

        floor = machine_improvement_floor(paper_model, PAPER_FIELD_PROFILE)
        with pytest.raises(ParameterError):
            required_machine_improvement(
                paper_model, PAPER_FIELD_PROFILE, floor * 0.5
            )

    def test_zero_headroom_rejected(self):
        from repro.core import (
            DemandProfile,
            ModelParameters,
            required_machine_improvement,
        )

        indifferent = SequentialModel(
            ModelParameters({"x": ClassParameters(0.3, 0.2, 0.2)})
        )
        profile = DemandProfile({"x": 1.0})
        with pytest.raises(ParameterError):
            required_machine_improvement(indifferent, profile, 0.21)
