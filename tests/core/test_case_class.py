"""Tests for repro.core.case_class."""

import pytest

from repro.core import DIFFICULT, EASY, PAPER_CLASSES, CaseClass


class TestCaseClass:
    def test_name_and_description(self):
        cls = CaseClass("dense", "dense tissue cases")
        assert cls.name == "dense"
        assert cls.description == "dense tissue cases"

    def test_str_is_name(self):
        assert str(CaseClass("easy")) == "easy"

    def test_equality_ignores_description(self):
        assert CaseClass("x", "one") == CaseClass("x", "two")

    def test_inequality_by_name(self):
        assert CaseClass("x") != CaseClass("y")

    def test_hash_consistent_with_equality(self):
        assert hash(CaseClass("x", "a")) == hash(CaseClass("x", "b"))
        assert {CaseClass("x", "a"), CaseClass("x", "b")} == {CaseClass("x")}

    def test_ordering_by_name(self):
        assert CaseClass("a") < CaseClass("b")
        assert sorted([CaseClass("z"), CaseClass("a")]) == [CaseClass("a"), CaseClass("z")]

    def test_usable_as_dict_key(self):
        table = {CaseClass("easy"): 1, CaseClass("difficult"): 2}
        assert table[CaseClass("easy")] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CaseClass("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            CaseClass(3)  # type: ignore[arg-type]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CaseClass("x").name = "y"  # type: ignore[misc]


class TestPaperClasses:
    def test_names(self):
        assert EASY.name == "easy"
        assert DIFFICULT.name == "difficult"

    def test_paper_classes_tuple(self):
        assert PAPER_CLASSES == (EASY, DIFFICULT)

    def test_distinct(self):
        assert EASY != DIFFICULT
