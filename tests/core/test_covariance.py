"""Tests for repro.core.covariance (diversity analysis)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    PAPER_TRIAL_PROFILE,
    ParallelClassParameters,
    SequentialModel,
    WithinClassDifficulty,
    decompose,
    difficulty_correlation,
    diversity_gain,
    paper_example_parameters,
)
from repro.exceptions import ParameterError

unit_floats = st.floats(min_value=0.0, max_value=1.0)


class TestDifficultyCorrelation:
    def test_perfectly_correlated(self):
        assert difficulty_correlation([0.1, 0.9], [0.1, 0.9]) == pytest.approx(1.0)

    def test_perfectly_anticorrelated(self):
        assert difficulty_correlation([0.1, 0.9], [0.9, 0.1]) == pytest.approx(-1.0)

    def test_constant_sequence_gives_zero(self):
        assert difficulty_correlation([0.5, 0.5], [0.1, 0.9]) == 0.0

    @given(
        st.lists(unit_floats, min_size=2, max_size=20),
        st.lists(unit_floats, min_size=2, max_size=20),
    )
    def test_bounded(self, machine, human):
        n = min(len(machine), len(human))
        r = difficulty_correlation(machine[:n], human[:n])
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestDiversityGain:
    def test_positive_for_negative_covariance(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=-0.05)
        assert diversity_gain(params) == pytest.approx(0.05)

    def test_negative_for_common_mode(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.08)
        assert diversity_gain(params) == pytest.approx(-0.08)

    def test_zero_at_independence(self):
        assert diversity_gain(ParallelClassParameters(0.3, 0.4, 0.1)) == 0.0


class TestWithinClassDifficulty:
    @pytest.fixture
    def varied(self):
        return WithinClassDifficulty(
            machine_difficulties=[0.05, 0.1, 0.6, 0.8],
            human_difficulties=[0.1, 0.15, 0.5, 0.7],
        )

    def test_means(self, varied):
        assert varied.mean_machine_difficulty == pytest.approx(np.mean([0.05, 0.1, 0.6, 0.8]))
        assert varied.mean_human_difficulty == pytest.approx(np.mean([0.1, 0.15, 0.5, 0.7]))

    def test_covariance_positive_for_comonotone(self, varied):
        assert varied.covariance > 0

    def test_joint_failure_exceeds_product_for_positive_covariance(self, varied):
        product = varied.mean_machine_difficulty * varied.mean_human_difficulty
        assert varied.joint_detection_failure == pytest.approx(
            product + varied.covariance
        )
        assert varied.joint_detection_failure > product

    def test_correlation_in_bounds(self, varied):
        assert 0.9 < varied.correlation <= 1.0

    def test_to_parallel_parameters(self, varied):
        params = varied.to_parallel_parameters(p_human_misclassify=0.1)
        assert params.p_machine_miss == pytest.approx(varied.mean_machine_difficulty)
        assert params.p_human_miss == pytest.approx(varied.mean_human_difficulty)
        assert params.detection_covariance == pytest.approx(varied.covariance)
        assert params.p_joint_detection_failure == pytest.approx(
            varied.joint_detection_failure
        )

    def test_weights(self):
        varied = WithinClassDifficulty([0.0, 1.0], [0.0, 1.0], weights=[1.0, 3.0])
        assert varied.mean_machine_difficulty == pytest.approx(0.75)

    def test_num_cases(self, varied):
        assert varied.num_cases == 4

    def test_validation_errors(self):
        with pytest.raises(ParameterError):
            WithinClassDifficulty([0.5], [0.5, 0.5])
        with pytest.raises(ParameterError):
            WithinClassDifficulty([], [])
        with pytest.raises(ParameterError):
            WithinClassDifficulty([1.5], [0.5])
        with pytest.raises(ParameterError):
            WithinClassDifficulty([0.5], [0.5], weights=[-1.0])

    @given(st.lists(st.tuples(unit_floats, unit_floats), min_size=1, max_size=30))
    def test_covariance_always_feasible(self, pairs):
        """The implied joint probability is always a valid probability."""
        machine = [m for m, _ in pairs]
        human = [h for _, h in pairs]
        varied = WithinClassDifficulty(machine, human)
        assert 0.0 <= varied.joint_detection_failure <= 1.0
        params = varied.to_parallel_parameters(0.1)  # must not raise
        assert 0.0 <= params.p_system_failure <= 1.0


class TestDecomposeWrapper:
    def test_matches_model_method(self):
        model = SequentialModel(paper_example_parameters())
        via_wrapper = decompose(model, PAPER_TRIAL_PROFILE)
        via_method = model.covariance_decomposition(PAPER_TRIAL_PROFILE)
        assert via_wrapper == via_method
