"""Tests for repro.core.extrapolation (Section 5 what-ifs)."""

import pytest

from repro.core import (
    DIFFICULT,
    EASY,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    ClassParameters,
    DemandProfile,
    ExtrapolationStudy,
    ImproveMachine,
    ReplaceClassParameters,
    ReplaceProfile,
    ReweightProfile,
    Scenario,
    SequentialModel,
    SetMachineFailure,
    ShiftReader,
    paper_example_parameters,
    paper_improvement_scenarios,
)
from repro.exceptions import ParameterError


class TestChanges:
    def test_improve_machine_all_classes(self, paper_parameters):
        change = ImproveMachine(factor=10.0)
        params, profile = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY].p_machine_failure == pytest.approx(0.007)
        assert params[DIFFICULT].p_machine_failure == pytest.approx(0.041)
        assert profile == PAPER_TRIAL_PROFILE

    def test_improve_machine_selected(self, paper_parameters):
        change = ImproveMachine(factor=10.0, classes=("easy",))
        params, _ = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY].p_machine_failure == pytest.approx(0.007)
        assert params[DIFFICULT].p_machine_failure == pytest.approx(0.41)

    def test_set_machine_failure(self, paper_parameters):
        change = SetMachineFailure("easy", 0.5)
        params, _ = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY].p_machine_failure == pytest.approx(0.5)

    def test_shift_reader(self, paper_parameters):
        change = ShiftReader("easy", 0.05, -0.02)
        params, _ = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY].p_human_failure_given_machine_failure == pytest.approx(0.23)
        assert params[EASY].p_human_failure_given_machine_success == pytest.approx(0.12)

    def test_replace_class_parameters(self, paper_parameters, example_class_parameters):
        change = ReplaceClassParameters("easy", example_class_parameters)
        params, _ = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY] == example_class_parameters

    def test_reweight_profile(self, paper_parameters):
        change = ReweightProfile({"difficult": 2.0})
        _, profile = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        # 0.8 : 0.4 normalised.
        assert profile[EASY] == pytest.approx(2.0 / 3.0)
        assert profile[DIFFICULT] == pytest.approx(1.0 / 3.0)

    def test_replace_profile(self, paper_parameters):
        change = ReplaceProfile(PAPER_FIELD_PROFILE)
        _, profile = change.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert profile == PAPER_FIELD_PROFILE


class TestScenario:
    def test_changes_compose_in_order(self, paper_parameters):
        scenario = Scenario(
            "composite",
            (
                SetMachineFailure("easy", 0.5),
                ImproveMachine(10.0, ("easy",)),
            ),
        )
        params, _ = scenario.apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params[EASY].p_machine_failure == pytest.approx(0.05)

    def test_empty_scenario_is_identity(self, paper_parameters):
        params, profile = Scenario("noop").apply(paper_parameters, PAPER_TRIAL_PROFILE)
        assert params == paper_parameters
        assert profile == PAPER_TRIAL_PROFILE

    def test_name_required(self):
        with pytest.raises(ParameterError):
            Scenario("")

    def test_non_change_rejected(self):
        with pytest.raises(ParameterError):
            Scenario("bad", ("not a change",))  # type: ignore[arg-type]


class TestExtrapolationStudy:
    @pytest.fixture
    def study(self, paper_parameters):
        improve_easy, improve_difficult = paper_improvement_scenarios()
        return ExtrapolationStudy(
            paper_parameters,
            profiles={"trial": PAPER_TRIAL_PROFILE, "field": PAPER_FIELD_PROFILE},
            scenarios=[improve_easy, improve_difficult],
        )

    def test_baseline_automatically_included(self, study):
        names = [s.name for s in study.scenarios]
        assert names[0] == "baseline"
        assert set(names) == {"baseline", "improve_easy", "improve_difficult"}

    def test_reproduces_table2_and_table3(self, study):
        result = study.evaluate()
        assert result.probability("baseline", "trial") == pytest.approx(0.235, abs=5e-4)
        assert result.probability("baseline", "field") == pytest.approx(0.189, abs=5e-4)
        assert result.probability("improve_easy", "trial") == pytest.approx(0.233, abs=5e-4)
        assert result.probability("improve_easy", "field") == pytest.approx(0.187, abs=5e-4)
        assert result.probability("improve_difficult", "trial") == pytest.approx(
            0.198, abs=5e-4
        )
        assert result.probability("improve_difficult", "field") == pytest.approx(
            0.171, abs=5e-4
        )

    def test_best_scenario_is_improve_difficult(self, study):
        name, probability = study.best_scenario("field")
        assert name == "improve_difficult"
        assert probability == pytest.approx(0.171, abs=5e-4)

    def test_best_scenario_unknown_profile_rejected(self, study):
        with pytest.raises(ParameterError):
            study.best_scenario("mars")

    def test_as_table_structure(self, study):
        table = study.evaluate().as_table()
        assert set(table) == {"baseline", "improve_easy", "improve_difficult"}
        assert set(table["baseline"]) == {"trial", "field"}

    def test_result_names_in_order(self, study):
        result = study.evaluate()
        assert result.scenario_names[0] == "baseline"
        assert result.profile_names == ("trial", "field")

    def test_outcome_carries_transformed_parameters(self, study):
        result = study.evaluate()
        outcome = result[("improve_easy", "field")]
        assert outcome.parameters[EASY].p_machine_failure == pytest.approx(0.007)
        assert outcome.profile == PAPER_FIELD_PROFILE

    def test_missing_outcome_raises_keyerror(self, study):
        result = study.evaluate()
        with pytest.raises(KeyError):
            result[("baseline", "moon")]

    def test_duplicate_scenario_names_rejected(self, paper_parameters):
        s = Scenario("twin")
        with pytest.raises(ParameterError):
            ExtrapolationStudy(
                paper_parameters, {"trial": PAPER_TRIAL_PROFILE}, [s, s]
            )

    def test_no_profiles_rejected(self, paper_parameters):
        with pytest.raises(ParameterError):
            ExtrapolationStudy(paper_parameters, {})

    def test_explicit_baseline_not_duplicated(self, paper_parameters):
        study = ExtrapolationStudy(
            paper_parameters,
            {"trial": PAPER_TRIAL_PROFILE},
            [Scenario("baseline")],
        )
        assert [s.name for s in study.scenarios] == ["baseline"]


class TestIndirectEffects:
    def test_complacency_can_cancel_machine_improvement(self, paper_parameters):
        """Section 5's indirect effect: improving the machine while readers
        grow complacent can leave the system no better."""
        direct_only = Scenario("direct", (ImproveMachine(10.0, ("difficult",)),))
        with_complacency = Scenario(
            "with_complacency",
            (
                ImproveMachine(10.0, ("difficult",)),
                # Readers rely more on the machine: worse when it fails,
                # and noticeably worse scrutiny overall.
                ShiftReader("difficult", 0.10, 0.20),
            ),
        )
        study = ExtrapolationStudy(
            paper_parameters,
            {"field": PAPER_FIELD_PROFILE},
            [direct_only, with_complacency],
        )
        result = study.evaluate()
        baseline = result.probability("baseline", "field")
        direct = result.probability("direct", "field")
        indirect = result.probability("with_complacency", "field")
        assert direct < baseline
        assert indirect > direct
        assert indirect >= baseline - 5e-3
