"""Tests for repro.core.importance (the t(x) index, Section 6.1-6.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIFFICULT,
    EASY,
    ClassParameters,
    DemandProfile,
    InfluenceKind,
    ModelParameters,
    SequentialModel,
    classify_influence,
    importance_index,
    importance_table,
    machine_relevance,
    merge_classes,
    paper_example_parameters,
)
from repro.exceptions import ParameterError

probabilities = st.floats(min_value=0.0, max_value=1.0)


class TestImportanceIndex:
    def test_paper_values(self):
        params = paper_example_parameters()
        assert importance_index(params[EASY]) == pytest.approx(0.04)
        assert importance_index(params[DIFFICULT]) == pytest.approx(0.5)

    def test_perfect_coherence(self):
        params = ClassParameters(0.3, 1.0, 0.0)
        assert importance_index(params) == 1.0

    def test_table(self):
        table = importance_table(paper_example_parameters())
        assert table[EASY] == pytest.approx(0.04)
        assert table[DIFFICULT] == pytest.approx(0.5)


class TestClassifyInfluence:
    def test_coherent(self):
        assert classify_influence(0.3) is InfluenceKind.COHERENT

    def test_indifferent(self):
        assert classify_influence(0.0) is InfluenceKind.INDIFFERENT
        assert classify_influence(1e-15) is InfluenceKind.INDIFFERENT

    def test_contrarian(self):
        assert classify_influence(-0.2) is InfluenceKind.CONTRARIAN


class TestMachineRelevance:
    def test_formula(self):
        params = ClassParameters(0.2, 0.7, 0.1)
        assert machine_relevance(params) == pytest.approx(0.2 * 0.6)

    def test_equals_gain_from_perfect_machine(self):
        params = ClassParameters(0.2, 0.7, 0.1)
        perfect = params.with_machine_failure(0.0)
        assert machine_relevance(params) == pytest.approx(
            params.p_system_failure - perfect.p_system_failure
        )

    def test_paper_relevances_explain_table3(self):
        """PMf*t is much larger for difficult cases — that is why improving
        the CADT there wins despite the class being rarer."""
        params = paper_example_parameters()
        assert machine_relevance(params[DIFFICULT]) > 5 * machine_relevance(params[EASY])


class TestMergeClasses:
    def test_merging_identical_classes_is_identity(self):
        params = ClassParameters(0.2, 0.7, 0.1)
        table = ModelParameters({"a": params, "b": params})
        merged = merge_classes(table, {"a": 0.3, "b": 0.7})
        assert merged.is_close(params, atol=1e-12)

    def test_merged_machine_failure_is_weighted_mean(self):
        table = ModelParameters(
            {
                "a": ClassParameters(0.1, 0.5, 0.5),
                "b": ClassParameters(0.5, 0.5, 0.5),
            }
        )
        merged = merge_classes(table, {"a": 0.5, "b": 0.5})
        assert merged.p_machine_failure == pytest.approx(0.3)

    def test_conditional_weights_by_conditioning_event(self):
        """PHf|Mf of the merge weights subclasses by how often they *cause* Mf."""
        table = ModelParameters(
            {
                "rarely_fails": ClassParameters(0.01, 1.0, 0.0),
                "often_fails": ClassParameters(0.99, 0.0, 0.0),
            }
        )
        merged = merge_classes(table, {"rarely_fails": 0.5, "often_fails": 0.5})
        # Given Mf, the case is almost surely from "often_fails" where PHf|Mf=0.
        expected = (0.5 * 0.01 * 1.0 + 0.5 * 0.99 * 0.0) / (0.5 * 0.01 + 0.5 * 0.99)
        assert merged.p_human_failure_given_machine_failure == pytest.approx(expected)

    def test_mixture_confound_creates_spurious_importance(self):
        """Section 6.2: merging two t=0 subclasses can show t > 0."""
        table = ModelParameters(
            {
                # Both subclasses have PHf|Mf == PHf|Ms (t = 0).
                "easy_sub": ClassParameters(0.05, 0.1, 0.1),
                "hard_sub": ClassParameters(0.8, 0.9, 0.9),
            }
        )
        assert table["easy_sub"].importance_index == 0.0
        assert table["hard_sub"].importance_index == 0.0
        merged = merge_classes(table, {"easy_sub": 0.5, "hard_sub": 0.5})
        assert merged.importance_index > 0.3

    def test_merge_preserves_profile_weighted_failure_probability(self):
        """The merged class predicts the same overall PHf as the fine model
        under the merging weights (consistency of the coarsening)."""
        table = paper_example_parameters()
        weights = DemandProfile({"easy": 0.8, "difficult": 0.2})
        merged = merge_classes(table, weights)
        fine = SequentialModel(table).system_failure_probability(weights)
        assert merged.p_system_failure == pytest.approx(fine, abs=1e-12)

    def test_merge_with_degenerate_machine(self):
        table = ModelParameters(
            {
                "a": ClassParameters(0.0, 0.5, 0.2),
                "b": ClassParameters(0.0, 0.7, 0.4),
            }
        )
        merged = merge_classes(table, {"a": 0.5, "b": 0.5})
        assert merged.p_machine_failure == 0.0
        assert merged.p_human_failure_given_machine_success == pytest.approx(0.3)

    def test_merge_unknown_class_rejected(self):
        table = paper_example_parameters()
        with pytest.raises(ParameterError):
            merge_classes(table, {"easy": 0.5, "mystery": 0.5})

    @given(
        st.lists(
            st.tuples(probabilities, probabilities, probabilities),
            min_size=2,
            max_size=5,
        ),
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=5),
    )
    def test_merge_consistency_property(self, triples, weights):
        """Fine model and merged class agree on overall failure probability."""
        n = min(len(triples), len(weights))
        table = ModelParameters(
            {
                f"c{i}": ClassParameters(*triples[i])
                for i in range(n)
            }
        )
        profile = DemandProfile.from_weights({f"c{i}": weights[i] for i in range(n)})
        merged = merge_classes(table, profile)
        fine = SequentialModel(table).system_failure_probability(profile)
        assert merged.p_system_failure == pytest.approx(fine, abs=1e-9)
