"""Tests for repro.core.io (JSON persistence)."""

import json

import pytest

from repro.core import (
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    dump_model,
    load_model,
    model_from_dict,
    model_to_dict,
    paper_example_parameters,
)
from repro.exceptions import ParameterError


@pytest.fixture
def profiles():
    return {"trial": PAPER_TRIAL_PROFILE, "field": PAPER_FIELD_PROFILE}


class TestDictRoundTrip:
    def test_parameters_round_trip(self, profiles):
        original = paper_example_parameters()
        document = model_to_dict(original, profiles)
        restored, restored_profiles = model_from_dict(document)
        assert restored == original
        assert restored_profiles["trial"] == PAPER_TRIAL_PROFILE
        assert restored_profiles["field"] == PAPER_FIELD_PROFILE

    def test_descriptions_preserved(self):
        original = paper_example_parameters()
        document = model_to_dict(original)
        assert "cases" in document["classes"]["easy"]["description"]

    def test_without_profiles(self):
        document = model_to_dict(paper_example_parameters())
        assert "profiles" not in document
        _, restored_profiles = model_from_dict(document)
        assert restored_profiles == {}

    def test_document_is_json_serialisable(self, profiles):
        document = model_to_dict(paper_example_parameters(), profiles)
        text = json.dumps(document)
        assert "repro-model/1" in text


class TestValidation:
    def test_wrong_format_tag(self):
        with pytest.raises(ParameterError):
            model_from_dict({"format": "other/9", "classes": {}})

    def test_missing_classes(self):
        with pytest.raises(ParameterError):
            model_from_dict({"format": "repro-model/1"})

    def test_missing_parameter_in_class(self):
        with pytest.raises(ParameterError):
            model_from_dict(
                {
                    "format": "repro-model/1",
                    "classes": {"easy": {"p_machine_failure": 0.1}},
                }
            )

    def test_malformed_profile(self):
        document = model_to_dict(paper_example_parameters())
        document["profiles"] = {"bad": "not a mapping"}
        with pytest.raises(ParameterError):
            model_from_dict(document)

    def test_profile_must_sum_to_one(self):
        document = model_to_dict(paper_example_parameters())
        document["profiles"] = {"bad": {"easy": 0.5, "difficult": 0.1}}
        with pytest.raises(Exception):
            model_from_dict(document)


class TestFileRoundTrip:
    def test_dump_and_load(self, tmp_path, profiles):
        path = tmp_path / "model.json"
        dump_model(path, paper_example_parameters(), profiles)
        restored, restored_profiles = load_model(path)
        assert restored == paper_example_parameters()
        assert set(restored_profiles) == {"trial", "field"}

    def test_file_is_human_readable_json(self, tmp_path):
        path = tmp_path / "model.json"
        dump_model(path, paper_example_parameters())
        body = json.loads(path.read_text())
        assert body["format"] == "repro-model/1"
        assert body["classes"]["difficult"]["p_machine_failure"] == pytest.approx(0.41)

    def test_loading_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ParameterError):
            load_model(path)

    def test_predictions_survive_round_trip(self, tmp_path, profiles):
        from repro.core import SequentialModel

        path = tmp_path / "model.json"
        dump_model(path, paper_example_parameters(), profiles)
        restored, restored_profiles = load_model(path)
        model = SequentialModel(restored)
        assert model.system_failure_probability(
            restored_profiles["trial"]
        ) == pytest.approx(0.235, abs=5e-4)
