"""Tests for repro.core.multireader (analytic reader teams)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    MultiReaderClassParameters,
    MultiReaderModel,
    ReaderConditionals,
    TeamPolicy,
)
from repro.exceptions import ParameterError

unit_floats = st.floats(min_value=0.0, max_value=1.0)


class TestTeamPolicy:
    def test_recall_if_any_fn_is_product(self):
        # All must miss for the system to miss.
        assert TeamPolicy.RECALL_IF_ANY.false_negative_probability(
            [0.3, 0.2]
        ) == pytest.approx(0.06)

    def test_recall_if_all_fn_is_union(self):
        assert TeamPolicy.RECALL_IF_ALL.false_negative_probability(
            [0.3, 0.2]
        ) == pytest.approx(0.44)

    def test_recall_if_any_fp_is_union(self):
        assert TeamPolicy.RECALL_IF_ANY.false_positive_probability(
            [0.1, 0.2]
        ) == pytest.approx(0.28)

    def test_recall_if_all_fp_is_product(self):
        assert TeamPolicy.RECALL_IF_ALL.false_positive_probability(
            [0.1, 0.2]
        ) == pytest.approx(0.02)

    @given(st.lists(unit_floats, min_size=1, max_size=5))
    def test_policies_bracket_single_reader(self, failures):
        any_policy = TeamPolicy.RECALL_IF_ANY.false_negative_probability(failures)
        all_policy = TeamPolicy.RECALL_IF_ALL.false_negative_probability(failures)
        assert any_policy <= min(failures) + 1e-12
        assert all_policy >= max(failures) - 1e-12


class TestMultiReaderClassParameters:
    @pytest.fixture
    def team(self):
        return MultiReaderClassParameters(
            p_machine_failure=0.2,
            readers=(
                ReaderConditionals(0.6, 0.2),
                ReaderConditionals(0.5, 0.1),
            ),
        )

    def test_team_conditionals_recall_if_any(self, team):
        assert team.team_failure_given_machine_failure(
            TeamPolicy.RECALL_IF_ANY
        ) == pytest.approx(0.3)
        assert team.team_failure_given_machine_success(
            TeamPolicy.RECALL_IF_ANY
        ) == pytest.approx(0.02)

    def test_team_parameters_plug_into_sequential_machinery(self, team):
        params = team.team_parameters(TeamPolicy.RECALL_IF_ANY)
        assert isinstance(params, ClassParameters)
        assert params.p_machine_failure == pytest.approx(0.2)
        assert params.importance_index == pytest.approx(0.28)

    def test_system_failure(self, team):
        # 0.02*0.8 + 0.3*0.2
        assert team.p_system_failure(TeamPolicy.RECALL_IF_ANY) == pytest.approx(0.076)

    def test_team_beats_best_member_under_recall_if_any(self, team):
        team_params = team.team_parameters(TeamPolicy.RECALL_IF_ANY)
        single_best = ClassParameters(0.2, 0.5, 0.1)
        assert team_params.p_system_failure < single_best.p_system_failure

    def test_validation(self):
        with pytest.raises(ParameterError):
            MultiReaderClassParameters(0.2, ())
        with pytest.raises(ParameterError):
            MultiReaderClassParameters(0.2, (ReaderConditionals(0.5, 0.1),), "typo")
        with pytest.raises(ParameterError):
            MultiReaderClassParameters(0.2, ((0.5, 0.1),))  # type: ignore[arg-type]

    def test_false_positive_kind_flips_combinators(self):
        team = MultiReaderClassParameters(
            p_machine_failure=0.3,
            readers=(ReaderConditionals(0.4, 0.1), ReaderConditionals(0.2, 0.05)),
            failure_kind="false_positive",
        )
        # Recall-if-any on healthy cases: failure if ANY recalls.
        assert team.team_failure_given_machine_failure(
            TeamPolicy.RECALL_IF_ANY
        ) == pytest.approx(1 - 0.6 * 0.8)


class TestMultiReaderModel:
    @pytest.fixture
    def tables(self):
        strong = ModelParameters(
            {
                "easy": ClassParameters(0.07, 0.18, 0.14),
                "difficult": ClassParameters(0.41, 0.9, 0.4),
            }
        )
        weak = ModelParameters(
            {
                "easy": ClassParameters(0.07, 0.3, 0.25),
                "difficult": ClassParameters(0.41, 0.95, 0.6),
            }
        )
        return strong, weak

    @pytest.fixture
    def profile(self):
        return DemandProfile({"easy": 0.8, "difficult": 0.2})

    def test_from_single_reader_tables(self, tables, profile):
        strong, weak = tables
        team = MultiReaderModel.from_single_reader_tables([strong, weak])
        assert team.team_size == 2
        assert set(c.name for c in team.classes) == {"easy", "difficult"}

    def test_team_beats_either_single_reader(self, tables, profile):
        from repro.core import SequentialModel

        strong, weak = tables
        team = MultiReaderModel.from_single_reader_tables([strong, weak])
        team_failure = team.system_failure_probability(profile)
        assert team_failure < SequentialModel(strong).system_failure_probability(profile)
        assert team_failure < SequentialModel(weak).system_failure_probability(profile)

    def test_policy_ordering(self, tables, profile):
        strong, weak = tables
        team = MultiReaderModel.from_single_reader_tables([strong, weak])
        recall_any = team.system_failure_probability(profile)
        recall_all = team.with_policy(
            TeamPolicy.RECALL_IF_ALL
        ).system_failure_probability(profile)
        assert recall_any < recall_all

    def test_machine_improvement_floor_applies_to_teams(self, tables, profile):
        """Section 6.1's bound carries over: the team's floor is the
        product of individual PHf|Ms (recall-if-any)."""
        strong, weak = tables
        team = MultiReaderModel.from_single_reader_tables([strong, weak])
        sequential = team.to_sequential_model()
        floor = sequential.machine_improvement_floor(profile)
        expected = profile.expectation(
            lambda cls: strong[cls].p_human_failure_given_machine_success
            * weak[cls].p_human_failure_given_machine_success
        )
        assert floor == pytest.approx(expected)

    def test_mismatched_machines_rejected(self, tables):
        strong, _ = tables
        different_machine = ModelParameters(
            {
                "easy": ClassParameters(0.10, 0.3, 0.25),
                "difficult": ClassParameters(0.41, 0.95, 0.6),
            }
        )
        with pytest.raises(ParameterError):
            MultiReaderModel.from_single_reader_tables([strong, different_machine])

    def test_mismatched_classes_rejected(self, tables):
        strong, _ = tables
        other = ModelParameters({"weird": ClassParameters(0.07, 0.3, 0.2)})
        with pytest.raises(ParameterError):
            MultiReaderModel.from_single_reader_tables([strong, other])

    def test_inconsistent_team_sizes_rejected(self):
        with pytest.raises(ParameterError):
            MultiReaderModel(
                {
                    "a": MultiReaderClassParameters(
                        0.1, (ReaderConditionals(0.5, 0.1),)
                    ),
                    "b": MultiReaderClassParameters(
                        0.1,
                        (ReaderConditionals(0.5, 0.1), ReaderConditionals(0.4, 0.1)),
                    ),
                }
            )

    def test_single_reader_team_equals_sequential_model(self, tables, profile):
        from repro.core import SequentialModel

        strong, _ = tables
        team = MultiReaderModel.from_single_reader_tables([strong])
        assert team.system_failure_probability(profile) == pytest.approx(
            SequentialModel(strong).system_failure_probability(profile)
        )

    @given(
        st.lists(
            st.tuples(unit_floats, unit_floats, unit_floats),
            min_size=1,
            max_size=4,
        )
    )
    def test_adding_a_reader_never_hurts_recall_if_any(self, triples):
        """Under recall-if-any, a bigger team has no higher FN probability
        (monotone redundancy)."""
        machine = 0.3
        readers = tuple(
            ReaderConditionals(given_mf, given_ms)
            for given_mf, given_ms, _ in triples
        )
        team = MultiReaderClassParameters(machine, readers)
        extended = MultiReaderClassParameters(
            machine, readers + (ReaderConditionals(0.5, 0.2),)
        )
        assert extended.p_system_failure(
            TeamPolicy.RECALL_IF_ANY
        ) <= team.p_system_failure(TeamPolicy.RECALL_IF_ANY) + 1e-12
