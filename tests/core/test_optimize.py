"""Tests for repro.core.optimize (improvement-budget allocation)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    PAPER_FIELD_PROFILE,
    SequentialModel,
    optimal_improvement_allocation,
    paper_example_parameters,
)
from repro.exceptions import ParameterError

unit_floats = st.floats(min_value=0.0, max_value=1.0)


@pytest.fixture
def paper_model():
    return SequentialModel(paper_example_parameters())


class TestPaperExample:
    def test_budget_concentrates_on_difficult_class(self, paper_model):
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(10.0)
        )
        factors = {c.name: f for c, f in result.factors.items()}
        assert factors["difficult"] > 5.0
        assert factors["difficult"] > factors["easy"]

    def test_beats_uniform_spend(self, paper_model):
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(10.0)
        )
        assert result.optimal_failure_probability <= result.uniform_failure_probability
        assert result.gain_over_uniform >= 0.0

    def test_beats_paper_all_on_difficult_option(self, paper_model):
        """With the freedom to split, the optimum is at least as good as
        Table 3's best single-class option (x10 on difficult: 0.1706)."""
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(10.0)
        )
        all_on_difficult = paper_model.with_machine_improved(
            10.0, ["difficult"]
        ).system_failure_probability(PAPER_FIELD_PROFILE)
        assert result.optimal_failure_probability <= all_on_difficult + 1e-12

    def test_budget_fully_spent(self, paper_model):
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(10.0)
        )
        spent = sum(math.log(f) for f in result.factors.values())
        assert spent == pytest.approx(math.log(10.0), abs=1e-9)

    def test_improvement_positive(self, paper_model):
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(2.0)
        )
        assert result.improvement > 0


class TestStructure:
    def test_zero_importance_class_gets_nothing(self):
        model = SequentialModel(
            ModelParameters(
                {
                    "useful": ClassParameters(0.3, 0.8, 0.2),
                    "indifferent": ClassParameters(0.5, 0.3, 0.3),  # t = 0
                }
            )
        )
        profile = DemandProfile({"useful": 0.5, "indifferent": 0.5})
        result = optimal_improvement_allocation(model, profile, math.log(4.0))
        factors = {c.name: f for c, f in result.factors.items()}
        assert factors["indifferent"] == 1.0
        assert factors["useful"] == pytest.approx(4.0)

    def test_water_filling_equalises_post_relevance(self):
        """Active classes end with equal p(x)*PMf(x)*t(x)/k."""
        model = SequentialModel(
            ModelParameters(
                {
                    "a": ClassParameters(0.4, 0.9, 0.1),
                    "b": ClassParameters(0.2, 0.6, 0.2),
                    "c": ClassParameters(0.1, 0.5, 0.3),
                }
            )
        )
        profile = DemandProfile({"a": 0.3, "b": 0.4, "c": 0.3})
        result = optimal_improvement_allocation(model, profile, 3.0)
        post = []
        for case_class, factor in result.factors.items():
            params = model.parameters[case_class]
            relevance = (
                profile[case_class]
                * params.p_machine_failure
                * params.importance_index
            )
            if factor > 1.0 + 1e-9:
                post.append(relevance / factor)
        assert len(post) >= 2
        assert max(post) == pytest.approx(min(post), rel=1e-6)

    def test_large_budget_spreads_to_all_relevant_classes(self, paper_model):
        result = optimal_improvement_allocation(
            paper_model, PAPER_FIELD_PROFILE, math.log(1e6)
        )
        assert all(f > 1.0 for f in result.factors.values())

    def test_no_relevant_class_rejected(self):
        indifferent = SequentialModel(
            ModelParameters({"x": ClassParameters(0.3, 0.2, 0.2)})
        )
        with pytest.raises(ParameterError):
            optimal_improvement_allocation(
                indifferent, DemandProfile({"x": 1.0}), 1.0
            )

    def test_invalid_budget_rejected(self, paper_model):
        with pytest.raises(ParameterError):
            optimal_improvement_allocation(paper_model, PAPER_FIELD_PROFILE, 0.0)
        with pytest.raises(ParameterError):
            optimal_improvement_allocation(
                paper_model, PAPER_FIELD_PROFILE, float("inf")
            )


class TestOptimalityProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=0.99),
                unit_floats,
                unit_floats,
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=2,
            max_size=5,
        ),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40)
    def test_never_worse_than_uniform_or_single_class(self, rows, budget):
        params = {}
        weights = {}
        for index, (pmf, hf_mf, hf_ms, weight) in enumerate(rows):
            low, high = sorted((hf_mf, hf_ms))
            params[f"c{index}"] = ClassParameters(pmf, high, low)  # t >= 0
            weights[f"c{index}"] = weight
        model = SequentialModel(ModelParameters(params))
        profile = DemandProfile.from_weights(weights)
        try:
            result = optimal_improvement_allocation(model, profile, budget)
        except ParameterError:
            return  # all-zero relevance draws are legitimately rejected
        assert (
            result.optimal_failure_probability
            <= result.uniform_failure_probability + 1e-9
        )
        # Also at least as good as dumping the whole budget on any single class.
        for case_class in profile.support:
            relevance = (
                profile[case_class]
                * model.parameters[case_class].p_machine_failure
                * model.parameters[case_class].importance_index
            )
            if relevance <= 0:
                continue
            single = model.with_machine_improved(
                math.exp(budget), [case_class]
            ).system_failure_probability(profile)
            assert result.optimal_failure_probability <= single + 1e-9
