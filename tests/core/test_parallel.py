"""Tests for repro.core.parallel (equations 1-3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ClassParameters,
    DemandProfile,
    ParallelClassParameters,
    ParallelModel,
    SequentialModel,
    ModelParameters,
    detection_covariance_bounds,
)
from repro.core.parallel import covariance_from_case_difficulties
from repro.exceptions import ModelAssumptionError, ParameterError

probabilities = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def parallel_parameters(draw, allow_covariance: bool = True):
    """Random valid ParallelClassParameters, with feasible covariance."""
    p_machine = draw(probabilities)
    p_human = draw(probabilities)
    p_misclass = draw(probabilities)
    if allow_covariance:
        lower, upper = detection_covariance_bounds(p_machine, p_human)
        # Guard against bounds inverted by floating-point rounding.
        lower, upper = min(lower, upper), max(lower, upper)
        cov = draw(st.floats(min_value=lower, max_value=upper))
    else:
        cov = 0.0
    return ParallelClassParameters(p_machine, p_human, p_misclass, cov)


class TestCovarianceBounds:
    def test_independent_midpoint_feasible(self):
        lower, upper = detection_covariance_bounds(0.3, 0.4)
        assert lower <= 0.0 <= upper

    def test_bounds_formula(self):
        lower, upper = detection_covariance_bounds(0.3, 0.4)
        assert upper == pytest.approx(0.3 - 0.12)  # min marginal - product
        assert lower == pytest.approx(0.0 - 0.12)  # max(0, 0.3+0.4-1) - product

    def test_high_marginals_positive_lower_bound(self):
        lower, _ = detection_covariance_bounds(0.9, 0.9)
        # joint >= 0.8 forced, so cov >= 0.8 - 0.81 = -0.01
        assert lower == pytest.approx(-0.01)

    def test_degenerate_zero_marginal(self):
        lower, upper = detection_covariance_bounds(0.0, 0.5)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(0.0)

    @given(probabilities, probabilities)
    def test_bounds_ordered(self, p, q):
        lower, upper = detection_covariance_bounds(p, q)
        assert lower <= upper + 1e-15


class TestCovarianceFromDifficulties:
    def test_matches_manual_computation(self):
        machine = [0.1, 0.9]
        human = [0.2, 0.8]
        # E[mh] = (0.02 + 0.72)/2 = 0.37; E[m]=0.5, E[h]=0.5 -> cov = 0.12
        assert covariance_from_case_difficulties(machine, human) == pytest.approx(0.12)

    def test_weighted(self):
        cov = covariance_from_case_difficulties([0.0, 1.0], [0.0, 1.0], [3.0, 1.0])
        # E[mh]=0.25, E[m]=E[h]=0.25 -> 0.25 - 0.0625
        assert cov == pytest.approx(0.1875)

    def test_anticorrelated_negative(self):
        cov = covariance_from_case_difficulties([0.1, 0.9], [0.9, 0.1])
        assert cov < 0

    def test_constant_difficulty_zero(self):
        assert covariance_from_case_difficulties([0.5, 0.5], [0.1, 0.9]) == pytest.approx(
            0.0
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            covariance_from_case_difficulties([0.5], [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            covariance_from_case_difficulties([], [])

    def test_bad_weights_rejected(self):
        with pytest.raises(ParameterError):
            covariance_from_case_difficulties([0.5], [0.5], [0.0])


class TestParallelClassParameters:
    def test_joint_detection_failure_with_covariance(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.05)
        assert params.p_joint_detection_failure == pytest.approx(0.17)

    def test_equation_1_system_failure(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.0)
        joint = 0.12
        assert params.p_system_failure == pytest.approx(joint + (1 - joint) * 0.1)

    def test_equation_2_equals_equation_1_at_zero_covariance(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1)
        assert params.p_system_failure == pytest.approx(
            params.p_system_failure_independent
        )

    def test_positive_covariance_raises_failure(self):
        independent = ParallelClassParameters(0.3, 0.4, 0.1)
        correlated = independent.with_covariance(0.05)
        assert correlated.p_system_failure > independent.p_system_failure
        assert correlated.independence_assumption_error > 0

    def test_negative_covariance_is_diversity(self):
        independent = ParallelClassParameters(0.3, 0.4, 0.1)
        diverse = independent.with_covariance(-0.05)
        assert diverse.p_system_failure < independent.p_system_failure

    def test_infeasible_covariance_rejected(self):
        with pytest.raises(ModelAssumptionError):
            ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.5)
        with pytest.raises(ModelAssumptionError):
            ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=-0.2)

    def test_with_machine_miss_resets_covariance(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1, detection_covariance=0.05)
        changed = params.with_machine_miss(0.5)
        assert changed.detection_covariance == 0.0
        assert changed.p_machine_miss == pytest.approx(0.5)

    @given(parallel_parameters())
    def test_joint_in_unit_interval(self, params):
        assert 0.0 <= params.p_joint_detection_failure <= 1.0

    @given(parallel_parameters())
    def test_system_failure_at_least_misclassification_floor(self, params):
        # Even perfect detection leaves the misclassification failure mode.
        assert params.p_system_failure >= params.p_human_misclassify * (
            1.0 - params.p_joint_detection_failure
        ) - 1e-12


class TestSequentialBridge:
    def test_machine_success_side_is_misclassification(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1)
        sequential = params.to_sequential()
        assert sequential.p_human_failure_given_machine_success == pytest.approx(0.1)

    def test_machine_failure_side_formula(self):
        params = ParallelClassParameters(0.3, 0.4, 0.1)
        sequential = params.to_sequential()
        # Independent: P(Hmiss|Mf) = PHmiss = 0.4.
        assert sequential.p_human_failure_given_machine_failure == pytest.approx(
            0.4 + 0.6 * 0.1
        )

    def test_zero_machine_failure_convention(self):
        params = ParallelClassParameters(0.0, 0.4, 0.1)
        sequential = params.to_sequential()
        assert sequential.p_machine_failure == 0.0
        assert sequential.p_human_failure_given_machine_failure == pytest.approx(
            0.4 + 0.6 * 0.1
        )

    @given(parallel_parameters())
    def test_bridge_preserves_system_failure_probability(self, params):
        """Equation (1) and the sequential rewrite agree exactly."""
        sequential = params.to_sequential()
        assert sequential.p_system_failure == pytest.approx(
            params.p_system_failure, abs=1e-9
        )

    @given(parallel_parameters())
    def test_bridge_importance_nonnegative(self, params):
        """In the parallel model the machine can only help: t(x) >= 0."""
        assert params.to_sequential().importance_index >= -1e-12


class TestParallelModel:
    @pytest.fixture
    def model(self):
        return ParallelModel(
            {
                "easy": ParallelClassParameters(0.1, 0.2, 0.05),
                "hard": ParallelClassParameters(0.5, 0.6, 0.2, detection_covariance=0.05),
            }
        )

    def test_profile_weighted_failure(self, model):
        profile = DemandProfile({"easy": 0.5, "hard": 0.5})
        expected = 0.5 * model["easy"].p_system_failure + 0.5 * model["hard"].p_system_failure
        assert model.system_failure_probability(profile) == pytest.approx(expected)

    def test_detection_failure_probability(self, model):
        profile = DemandProfile({"easy": 0.25, "hard": 0.75})
        expected = (
            0.25 * model["easy"].p_joint_detection_failure
            + 0.75 * model["hard"].p_joint_detection_failure
        )
        assert model.detection_failure_probability(profile) == pytest.approx(expected)

    def test_independent_prediction_below_truth_for_positive_covariance(self, model):
        profile = DemandProfile({"hard": 1.0})
        assert model.system_failure_probability_independent(
            profile
        ) < model.system_failure_probability(profile)

    def test_to_sequential_parameters_agree_under_any_profile(self, model):
        sequential = SequentialModel(model.to_sequential_parameters())
        for weights in ({"easy": 0.9, "hard": 0.1}, {"easy": 0.2, "hard": 0.8}):
            profile = DemandProfile(weights)
            assert sequential.system_failure_probability(profile) == pytest.approx(
                model.system_failure_probability(profile), abs=1e-9
            )

    def test_unknown_class_rejected(self, model):
        with pytest.raises(ParameterError):
            model["nonexistent"]
        with pytest.raises(ParameterError):
            model.system_failure_probability(DemandProfile({"other": 1.0}))

    def test_empty_model_rejected(self):
        with pytest.raises(ParameterError):
            ParallelModel({})

    def test_wrong_parameter_type_rejected(self, example_class_parameters):
        with pytest.raises(ParameterError):
            ParallelModel({"easy": example_class_parameters})  # type: ignore[dict-item]

    def test_len_iter_classes(self, model):
        assert len(model) == 2
        assert [c.name for c in model.classes] == ["easy", "hard"]
