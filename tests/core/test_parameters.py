"""Tests for repro.core.parameters."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIFFICULT,
    EASY,
    ClassParameters,
    ModelParameters,
    paper_example_parameters,
)
from repro.exceptions import ParameterError, ProbabilityError

probabilities = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def class_parameters(draw):
    """Random valid ClassParameters triples."""
    return ClassParameters(
        p_machine_failure=draw(probabilities),
        p_human_failure_given_machine_failure=draw(probabilities),
        p_human_failure_given_machine_success=draw(probabilities),
    )


class TestClassParameters:
    def test_derived_machine_success(self, example_class_parameters):
        assert example_class_parameters.p_machine_success == pytest.approx(0.8)

    def test_importance_index(self, example_class_parameters):
        assert example_class_parameters.importance_index == pytest.approx(0.6)

    def test_system_failure_probability(self, example_class_parameters):
        # 0.1*0.8 + 0.7*0.2 = 0.22
        assert example_class_parameters.p_system_failure == pytest.approx(0.22)

    def test_paper_easy_class_failure(self):
        easy = paper_example_parameters()[EASY]
        assert easy.p_system_failure == pytest.approx(0.1428)

    def test_paper_difficult_class_failure(self):
        difficult = paper_example_parameters()[DIFFICULT]
        assert difficult.p_system_failure == pytest.approx(0.605)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            ClassParameters(1.5, 0.5, 0.5)
        with pytest.raises(ProbabilityError):
            ClassParameters(0.5, -0.1, 0.5)
        with pytest.raises(ProbabilityError):
            ClassParameters(0.5, 0.5, float("nan"))

    def test_with_machine_failure(self, example_class_parameters):
        changed = example_class_parameters.with_machine_failure(0.05)
        assert changed.p_machine_failure == pytest.approx(0.05)
        # Reader behaviour untouched.
        assert changed.p_human_failure_given_machine_failure == pytest.approx(0.7)
        assert changed.p_human_failure_given_machine_success == pytest.approx(0.1)

    def test_with_machine_improved(self, example_class_parameters):
        improved = example_class_parameters.with_machine_improved(10.0)
        assert improved.p_machine_failure == pytest.approx(0.02)

    def test_improvement_factor_must_be_positive(self, example_class_parameters):
        with pytest.raises(ProbabilityError):
            example_class_parameters.with_machine_improved(0.0)
        with pytest.raises(ProbabilityError):
            example_class_parameters.with_machine_improved(-2.0)

    def test_improvement_below_one_degrades(self, example_class_parameters):
        degraded = example_class_parameters.with_machine_improved(0.5)
        assert degraded.p_machine_failure == pytest.approx(0.4)

    def test_with_reader_shift(self, example_class_parameters):
        shifted = example_class_parameters.with_reader_shift(0.1, -0.05)
        assert shifted.p_human_failure_given_machine_failure == pytest.approx(0.8)
        assert shifted.p_human_failure_given_machine_success == pytest.approx(0.05)

    def test_reader_shift_out_of_range_rejected(self, example_class_parameters):
        with pytest.raises(ProbabilityError):
            example_class_parameters.with_reader_shift(0.5)  # 0.7 + 0.5 > 1

    def test_is_close(self, example_class_parameters):
        nearly = ClassParameters(0.2 + 1e-12, 0.7, 0.1)
        assert example_class_parameters.is_close(nearly)
        far = ClassParameters(0.3, 0.7, 0.1)
        assert not example_class_parameters.is_close(far)

    @given(class_parameters())
    def test_system_failure_is_convex_combination(self, params):
        low = min(
            params.p_human_failure_given_machine_failure,
            params.p_human_failure_given_machine_success,
        )
        high = max(
            params.p_human_failure_given_machine_failure,
            params.p_human_failure_given_machine_success,
        )
        assert low - 1e-12 <= params.p_system_failure <= high + 1e-12

    @given(class_parameters())
    def test_importance_bounded(self, params):
        assert -1.0 <= params.importance_index <= 1.0

    @given(class_parameters(), st.floats(min_value=1.0, max_value=100.0))
    def test_improving_machine_never_hurts_when_t_positive(self, params, factor):
        improved = params.with_machine_improved(factor)
        if params.importance_index >= 0:
            assert improved.p_system_failure <= params.p_system_failure + 1e-12
        else:
            assert improved.p_system_failure >= params.p_system_failure - 1e-12


class TestModelParameters:
    def test_lookup_by_class_and_name(self, paper_parameters):
        assert paper_parameters[EASY].p_machine_failure == pytest.approx(0.07)
        assert paper_parameters["difficult"].p_machine_failure == pytest.approx(0.41)

    def test_unknown_class_raises(self, paper_parameters):
        with pytest.raises(ParameterError):
            paper_parameters["nonexistent"]

    def test_contains(self, paper_parameters):
        assert EASY in paper_parameters
        assert "difficult" in paper_parameters
        assert "weird" not in paper_parameters

    def test_iteration_sorted(self, paper_parameters):
        assert [c.name for c in paper_parameters] == ["difficult", "easy"]

    def test_len(self, paper_parameters):
        assert len(paper_parameters) == 2

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ModelParameters({})

    def test_wrong_value_type_rejected(self):
        with pytest.raises(ParameterError):
            ModelParameters({"a": (0.1, 0.2, 0.3)})  # type: ignore[dict-item]

    def test_duplicate_class_and_name_rejected(self, example_class_parameters):
        with pytest.raises(ParameterError):
            ModelParameters(
                {EASY: example_class_parameters, "easy": example_class_parameters}
            )

    def test_with_machine_improved_all_classes(self, paper_parameters):
        improved = paper_parameters.with_machine_improved(10.0)
        assert improved[EASY].p_machine_failure == pytest.approx(0.007)
        assert improved[DIFFICULT].p_machine_failure == pytest.approx(0.041)

    def test_with_machine_improved_selected_class(self, paper_parameters):
        improved = paper_parameters.with_machine_improved(10.0, ["easy"])
        assert improved[EASY].p_machine_failure == pytest.approx(0.007)
        assert improved[DIFFICULT].p_machine_failure == pytest.approx(0.41)

    def test_improving_unknown_class_rejected(self, paper_parameters):
        with pytest.raises(ParameterError):
            paper_parameters.with_machine_improved(10.0, ["nope"])

    def test_with_class_replaces(self, paper_parameters, example_class_parameters):
        updated = paper_parameters.with_class("easy", example_class_parameters)
        assert updated[EASY].p_machine_failure == pytest.approx(0.2)
        # Original untouched (immutability).
        assert paper_parameters[EASY].p_machine_failure == pytest.approx(0.07)

    def test_with_class_adds(self, paper_parameters, example_class_parameters):
        updated = paper_parameters.with_class("new", example_class_parameters)
        assert len(updated) == 3

    def test_transform(self, paper_parameters):
        doubled = paper_parameters.transform(
            lambda cls, p: p.with_machine_failure(min(1.0, 2 * p.p_machine_failure))
        )
        assert doubled[EASY].p_machine_failure == pytest.approx(0.14)

    def test_equality(self, paper_parameters):
        assert paper_parameters == paper_example_parameters()
        assert paper_parameters != paper_parameters.with_machine_improved(2.0)

    def test_repr_mentions_classes(self, paper_parameters):
        text = repr(paper_parameters)
        assert "easy" in text and "difficult" in text


class TestPaperExampleParameters:
    def test_table1_values(self):
        params = paper_example_parameters()
        easy, difficult = params[EASY], params[DIFFICULT]
        assert easy.p_machine_failure == pytest.approx(0.07)
        assert easy.p_machine_success == pytest.approx(0.93)
        assert easy.p_human_failure_given_machine_failure == pytest.approx(0.18)
        assert easy.p_human_failure_given_machine_success == pytest.approx(0.14)
        assert difficult.p_machine_failure == pytest.approx(0.41)
        assert difficult.p_machine_success == pytest.approx(0.59)
        assert difficult.p_human_failure_given_machine_failure == pytest.approx(0.9)
        assert difficult.p_human_failure_given_machine_success == pytest.approx(0.4)

    def test_paper_importance_indices(self):
        params = paper_example_parameters()
        # The paper notes the difference PHf|Mf - PHf|Ms is "only 0.04" for
        # easy cases and larger (0.5) for difficult ones.
        assert params[EASY].importance_index == pytest.approx(0.04)
        assert params[DIFFICULT].importance_index == pytest.approx(0.5)
