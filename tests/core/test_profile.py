"""Tests for repro.core.profile (demand profiles)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIFFICULT,
    EASY,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    CaseClass,
    DemandProfile,
)
from repro.exceptions import ProbabilityError, ProfileError


class TestConstruction:
    def test_from_mapping_of_classes(self):
        profile = DemandProfile({EASY: 0.8, DIFFICULT: 0.2})
        assert profile[EASY] == pytest.approx(0.8)
        assert profile[DIFFICULT] == pytest.approx(0.2)

    def test_string_keys_coerced(self):
        profile = DemandProfile({"easy": 0.5, "difficult": 0.5})
        assert profile[EASY] == pytest.approx(0.5)

    def test_lookup_by_string(self):
        profile = DemandProfile({EASY: 1.0})
        assert profile["easy"] == pytest.approx(1.0)

    def test_unknown_class_has_zero_probability(self):
        profile = DemandProfile({EASY: 1.0})
        assert profile[DIFFICULT] == 0.0
        assert DIFFICULT not in profile

    def test_must_sum_to_one(self):
        with pytest.raises(ProfileError):
            DemandProfile({EASY: 0.5, DIFFICULT: 0.4})

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            DemandProfile({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ProbabilityError):
            DemandProfile({EASY: 1.2, DIFFICULT: -0.2})

    def test_duplicate_keys_via_string_and_class_rejected(self):
        with pytest.raises(ProfileError):
            DemandProfile({EASY: 0.5, "easy": 0.5})

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError):
            DemandProfile({3: 1.0})  # type: ignore[dict-item]


class TestAlternativeConstructors:
    def test_from_weights_normalises(self):
        profile = DemandProfile.from_weights({"a": 3.0, "b": 1.0})
        assert profile["a"] == pytest.approx(0.75)
        assert profile["b"] == pytest.approx(0.25)

    def test_from_weights_rejects_zero_total(self):
        with pytest.raises(ProfileError):
            DemandProfile.from_weights({"a": 0.0})

    def test_from_weights_rejects_negative(self):
        with pytest.raises(ProfileError):
            DemandProfile.from_weights({"a": 2.0, "b": -1.0})

    def test_from_counts(self):
        profile = DemandProfile.from_counts({"a": 30, "b": 10})
        assert profile["a"] == pytest.approx(0.75)

    def test_from_counts_rejects_fractional(self):
        with pytest.raises(ProfileError):
            DemandProfile.from_counts({"a": 1.5})  # type: ignore[dict-item]

    def test_uniform(self):
        profile = DemandProfile.uniform(["a", "b", "c", "d"])
        assert all(profile[name] == pytest.approx(0.25) for name in "abcd")

    def test_uniform_empty_rejected(self):
        with pytest.raises(ProfileError):
            DemandProfile.uniform([])

    def test_degenerate(self):
        profile = DemandProfile.degenerate("only")
        assert profile["only"] == 1.0
        assert len(profile) == 1


class TestMappingInterface:
    def test_len_and_iter(self):
        profile = DemandProfile({"a": 0.5, "b": 0.5})
        assert len(profile) == 2
        assert {cls.name for cls in profile} == {"a", "b"}

    def test_support_excludes_zero_classes(self):
        profile = DemandProfile({"a": 1.0, "b": 0.0})
        assert [c.name for c in profile.support] == ["a"]
        assert {c.name for c in profile.classes} == {"a", "b"}

    def test_classes_sorted(self):
        profile = DemandProfile({"z": 0.5, "a": 0.5})
        assert [c.name for c in profile.classes] == ["a", "z"]


class TestAlgebra:
    def test_expectation(self):
        profile = DemandProfile({"a": 0.25, "b": 0.75})
        values = {"a": 4.0, "b": 8.0}
        assert profile.expectation(lambda c: values[c.name]) == pytest.approx(7.0)

    def test_covariance_zero_for_constant(self):
        profile = DemandProfile({"a": 0.3, "b": 0.7})
        assert profile.covariance(lambda c: 1.0, lambda c: c.name == "a") == pytest.approx(
            0.0
        )

    def test_covariance_matches_manual(self):
        profile = DemandProfile({"a": 0.5, "b": 0.5})
        f = {"a": 0.0, "b": 1.0}
        g = {"a": 0.0, "b": 2.0}
        # cov = E[fg] - E[f]E[g] = 1.0 - 0.5*1.0 = 0.5
        assert profile.covariance(
            lambda c: f[c.name], lambda c: g[c.name]
        ) == pytest.approx(0.5)

    def test_mix(self):
        mixed = PAPER_TRIAL_PROFILE.mix(PAPER_FIELD_PROFILE, 0.5)
        assert mixed[EASY] == pytest.approx(0.85)
        assert mixed[DIFFICULT] == pytest.approx(0.15)

    def test_mix_weight_endpoints(self):
        assert PAPER_TRIAL_PROFILE.mix(PAPER_FIELD_PROFILE, 1.0) == PAPER_TRIAL_PROFILE
        assert PAPER_TRIAL_PROFILE.mix(PAPER_FIELD_PROFILE, 0.0) == PAPER_FIELD_PROFILE

    def test_mix_invalid_weight(self):
        with pytest.raises(ProbabilityError):
            PAPER_TRIAL_PROFILE.mix(PAPER_FIELD_PROFILE, 1.5)

    def test_reweighted(self):
        profile = DemandProfile({"a": 0.5, "b": 0.5}).reweighted({"a": 3.0})
        assert profile["a"] == pytest.approx(0.75)
        assert profile["b"] == pytest.approx(0.25)

    def test_reweighted_unknown_factor_ignored(self):
        profile = DemandProfile({"a": 1.0}).reweighted({"zzz": 5.0})
        assert profile["a"] == pytest.approx(1.0)

    def test_restricted(self):
        profile = DemandProfile({"a": 0.6, "b": 0.2, "c": 0.2}).restricted(["a", "b"])
        assert profile["a"] == pytest.approx(0.75)
        assert profile["b"] == pytest.approx(0.25)
        assert profile["c"] == 0.0

    def test_restricted_to_nothing_rejected(self):
        with pytest.raises(ProfileError):
            DemandProfile({"a": 1.0}).restricted(["b"])


class TestComparisons:
    def test_total_variation_distance(self):
        assert PAPER_TRIAL_PROFILE.total_variation_distance(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(0.1)

    def test_total_variation_distance_self_is_zero(self):
        assert PAPER_TRIAL_PROFILE.total_variation_distance(PAPER_TRIAL_PROFILE) == 0.0

    def test_equality_and_hash(self):
        first = DemandProfile({"a": 0.5, "b": 0.5})
        second = DemandProfile({"b": 0.5, "a": 0.5})
        assert first == second
        assert hash(first) == hash(second)

    def test_is_close_tolerance(self):
        first = DemandProfile({"a": 0.5, "b": 0.5})
        second = DemandProfile({"a": 0.5 + 1e-12, "b": 0.5 - 1e-12})
        assert first.is_close(second, atol=1e-9)

    def test_repr_contains_weights(self):
        assert "easy" in repr(PAPER_TRIAL_PROFILE)


class TestPaperProfiles:
    def test_trial_profile(self):
        assert PAPER_TRIAL_PROFILE[EASY] == pytest.approx(0.8)
        assert PAPER_TRIAL_PROFILE[DIFFICULT] == pytest.approx(0.2)

    def test_field_profile(self):
        assert PAPER_FIELD_PROFILE[EASY] == pytest.approx(0.9)
        assert PAPER_FIELD_PROFILE[DIFFICULT] == pytest.approx(0.1)


@st.composite
def profiles(draw, max_classes: int = 6):
    """Random valid demand profiles."""
    n = draw(st.integers(min_value=1, max_value=max_classes))
    weights = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    return DemandProfile.from_weights(
        {f"class_{i}": w for i, w in enumerate(weights)}
    )


class TestProfileProperties:
    @given(profiles())
    def test_weights_sum_to_one(self, profile):
        assert math.fsum(p for _, p in profile.items()) == pytest.approx(1.0)

    @given(profiles(), profiles(), st.floats(min_value=0.0, max_value=1.0))
    def test_mixture_is_valid_and_convex(self, first, second, weight):
        mixed = first.mix(second, weight)
        for cls in set(first.classes) | set(second.classes):
            expected = weight * first[cls] + (1.0 - weight) * second[cls]
            assert mixed[cls] == pytest.approx(expected, abs=1e-9)

    @given(profiles())
    def test_tvd_symmetric_and_bounded(self, profile):
        other = DemandProfile.uniform([c.name for c in profile.classes])
        d1 = profile.total_variation_distance(other)
        d2 = other.total_variation_distance(profile)
        assert d1 == pytest.approx(d2)
        assert 0.0 <= d1 <= 1.0

    @given(profiles())
    def test_expectation_of_one_is_one(self, profile):
        assert profile.expectation(lambda c: 1.0) == pytest.approx(1.0)

    @given(profiles())
    def test_covariance_cauchy_schwarz(self, profile):
        f = lambda c: hash(c.name) % 7 / 7.0  # noqa: E731
        g = lambda c: hash(c.name) % 5 / 5.0  # noqa: E731
        cov = profile.covariance(f, g)
        var_f = profile.covariance(f, f)
        var_g = profile.covariance(g, g)
        assert cov * cov <= var_f * var_g + 1e-12
