"""Property-based tests for demand-profile normalization."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.profile import DemandProfile

class_names = st.sampled_from(["easy", "difficult", "subtle", "dense", "obvious"])
weight_maps = st.dictionaries(
    class_names,
    st.floats(min_value=0.0, max_value=1e9),
    min_size=1,
    max_size=5,
)
count_maps = st.dictionaries(
    class_names,
    st.integers(min_value=0, max_value=10**9),
    min_size=1,
    max_size=5,
)


def total_mass(profile: DemandProfile) -> float:
    return math.fsum(p for _, p in profile.items())


class TestNormalization:
    @given(weight_maps)
    def test_from_weights_normalises_to_one(self, weights):
        assume(math.fsum(weights.values()) > 0)
        profile = DemandProfile.from_weights(weights)
        assert total_mass(profile) == pytest.approx(1.0, abs=1e-12)
        for _, p in profile.items():
            assert 0.0 <= p <= 1.0

    @given(weight_maps)
    def test_from_weights_preserves_proportions(self, weights):
        total = math.fsum(weights.values())
        assume(total > 0)
        profile = DemandProfile.from_weights(weights)
        for name, weight in weights.items():
            assert profile[name] == pytest.approx(weight / total, rel=1e-9, abs=1e-15)

    @given(weight_maps, st.floats(min_value=1e-6, max_value=1e6))
    def test_from_weights_scale_invariant(self, weights, scale):
        assume(math.fsum(weights.values()) > 0)
        assume(math.fsum(v * scale for v in weights.values()) > 0)
        base = DemandProfile.from_weights(weights)
        scaled = DemandProfile.from_weights(
            {name: value * scale for name, value in weights.items()}
        )
        assert base.is_close(scaled, atol=1e-9)

    @given(count_maps)
    def test_from_counts_matches_from_weights(self, counts):
        assume(sum(counts.values()) > 0)
        from_counts = DemandProfile.from_counts(counts)
        from_weights = DemandProfile.from_weights(
            {name: float(value) for name, value in counts.items()}
        )
        assert from_counts.is_close(from_weights, atol=0.0)
        assert total_mass(from_counts) == pytest.approx(1.0, abs=1e-12)


class TestAlgebraPreservesNormalization:
    @given(weight_maps, weight_maps, st.floats(min_value=0.0, max_value=1.0))
    def test_mix_stays_normalised(self, first, second, weight):
        assume(math.fsum(first.values()) > 0)
        assume(math.fsum(second.values()) > 0)
        mixed = DemandProfile.from_weights(first).mix(
            DemandProfile.from_weights(second), weight
        )
        assert total_mass(mixed) == pytest.approx(1.0, abs=1e-9)

    @given(weight_maps, st.floats(min_value=1e-3, max_value=1e3))
    def test_reweighted_stays_normalised(self, weights, factor):
        assume(math.fsum(weights.values()) > 0)
        profile = DemandProfile.from_weights(weights)
        reweighted = profile.reweighted({cls: factor for cls in profile.classes})
        assert total_mass(reweighted) == pytest.approx(1.0, abs=1e-9)
        # Uniform reweighting is a no-op after renormalisation.
        assert reweighted.is_close(profile, atol=1e-9)
