"""Tests for repro.core.sequential (equations 4-10)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIFFICULT,
    EASY,
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    ClassParameters,
    DemandProfile,
    ModelParameters,
    SequentialModel,
)
from repro.exceptions import ParameterError

probabilities = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def models_and_profiles(draw, max_classes: int = 5):
    """Random (SequentialModel, DemandProfile) pairs over shared classes."""
    n = draw(st.integers(min_value=1, max_value=max_classes))
    names = [f"class_{i}" for i in range(n)]
    params = {
        name: ClassParameters(
            p_machine_failure=draw(probabilities),
            p_human_failure_given_machine_failure=draw(probabilities),
            p_human_failure_given_machine_success=draw(probabilities),
        )
        for name in names
    }
    weights = draw(
        st.lists(st.floats(min_value=1e-3, max_value=1.0), min_size=n, max_size=n)
    )
    profile = DemandProfile.from_weights(dict(zip(names, weights)))
    return SequentialModel(ModelParameters(params)), profile


class TestPaperNumbers:
    """The sequential model must reproduce the paper's Section 5 example."""

    def test_easy_class_failure(self, paper_model):
        assert paper_model.class_failure_probability(EASY) == pytest.approx(
            0.143, abs=5e-4
        )

    def test_difficult_class_failure(self, paper_model):
        assert paper_model.class_failure_probability(DIFFICULT) == pytest.approx(
            0.605, abs=5e-4
        )

    def test_trial_failure_probability(self, paper_model):
        assert paper_model.system_failure_probability(
            PAPER_TRIAL_PROFILE
        ) == pytest.approx(0.235, abs=5e-4)

    def test_field_failure_probability(self, paper_model):
        assert paper_model.system_failure_probability(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(0.189, abs=5e-4)

    def test_improved_easy_matches_table3(self, paper_model):
        improved = paper_model.with_machine_improved(10.0, ["easy"])
        assert improved.class_failure_probability(EASY) == pytest.approx(0.140, abs=5e-4)
        assert improved.system_failure_probability(
            PAPER_TRIAL_PROFILE
        ) == pytest.approx(0.233, abs=5e-4)
        assert improved.system_failure_probability(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(0.187, abs=5e-4)

    def test_improved_difficult_matches_table3(self, paper_model):
        improved = paper_model.with_machine_improved(10.0, ["difficult"])
        # Exact value 0.4205; the paper prints 0.421.
        assert improved.class_failure_probability(DIFFICULT) == pytest.approx(
            0.4205, abs=5e-4
        )
        assert improved.system_failure_probability(
            PAPER_TRIAL_PROFILE
        ) == pytest.approx(0.198, abs=5e-4)
        assert improved.system_failure_probability(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(0.171, abs=5e-4)

    def test_difficult_improvement_beats_easy_improvement(self, paper_model):
        """The paper's headline non-intuitive result."""
        easy_improved = paper_model.with_machine_improved(10.0, ["easy"])
        difficult_improved = paper_model.with_machine_improved(10.0, ["difficult"])
        for profile in (PAPER_TRIAL_PROFILE, PAPER_FIELD_PROFILE):
            assert difficult_improved.system_failure_probability(
                profile
            ) < easy_improved.system_failure_probability(profile)


class TestEvaluation:
    def test_predict_breakdown_sums_to_total(self, paper_model):
        prediction = paper_model.predict(PAPER_TRIAL_PROFILE)
        assert prediction.probability == pytest.approx(
            math.fsum(prediction.contributions.values())
        )

    def test_predict_contributions_are_weighted_class_probabilities(self, paper_model):
        prediction = paper_model.predict(PAPER_TRIAL_PROFILE)
        assert prediction.contributions[EASY] == pytest.approx(0.8 * 0.1428)
        assert prediction.per_class[DIFFICULT] == pytest.approx(0.605)

    def test_profile_missing_parameters_rejected(self, paper_model):
        stranger = DemandProfile({"weird": 1.0})
        with pytest.raises(ParameterError):
            paper_model.system_failure_probability(stranger)

    def test_profile_with_zero_weight_unknown_class_allowed(self, paper_model):
        # Zero-probability classes need no parameters.
        profile = DemandProfile({"easy": 1.0, "weird": 0.0})
        assert paper_model.system_failure_probability(profile) == pytest.approx(
            0.1428
        )

    def test_model_requires_model_parameters(self):
        with pytest.raises(ParameterError):
            SequentialModel({"easy": None})  # type: ignore[arg-type]

    def test_degenerate_profile_matches_class_probability(self, paper_model):
        profile = DemandProfile.degenerate("difficult")
        assert paper_model.system_failure_probability(profile) == pytest.approx(
            paper_model.class_failure_probability("difficult")
        )


class TestSummaries:
    def test_mean_machine_failure(self, paper_model):
        expected = 0.8 * 0.07 + 0.2 * 0.41
        assert paper_model.mean_machine_failure(PAPER_TRIAL_PROFILE) == pytest.approx(
            expected
        )

    def test_mean_importance(self, paper_model):
        expected = 0.8 * 0.04 + 0.2 * 0.5
        assert paper_model.mean_importance(PAPER_TRIAL_PROFILE) == pytest.approx(expected)

    def test_machine_improvement_floor(self, paper_model):
        expected = 0.8 * 0.14 + 0.2 * 0.40
        assert paper_model.machine_improvement_floor(
            PAPER_TRIAL_PROFILE
        ) == pytest.approx(expected)

    def test_floor_equals_perfect_machine_model(self, paper_model):
        perfect = SequentialModel(
            paper_model.parameters.transform(
                lambda cls, p: p.with_machine_failure(0.0)
            )
        )
        assert paper_model.machine_improvement_floor(
            PAPER_FIELD_PROFILE
        ) == pytest.approx(
            perfect.system_failure_probability(PAPER_FIELD_PROFILE)
        )


class TestCovarianceDecomposition:
    def test_reassembles_exactly(self, paper_model):
        for profile in (PAPER_TRIAL_PROFILE, PAPER_FIELD_PROFILE):
            decomposition = paper_model.covariance_decomposition(profile)
            assert decomposition.total == pytest.approx(
                paper_model.system_failure_probability(profile), abs=1e-12
            )

    def test_terms_match_summaries(self, paper_model):
        decomposition = paper_model.covariance_decomposition(PAPER_TRIAL_PROFILE)
        assert decomposition.mean_machine_failure == pytest.approx(
            paper_model.mean_machine_failure(PAPER_TRIAL_PROFILE)
        )
        assert decomposition.mean_importance == pytest.approx(
            paper_model.mean_importance(PAPER_TRIAL_PROFILE)
        )
        assert (
            decomposition.expected_human_failure_given_machine_success
            == pytest.approx(paper_model.machine_improvement_floor(PAPER_TRIAL_PROFILE))
        )

    def test_paper_covariance_is_positive(self, paper_model):
        """The machine fails more exactly where its failures hurt more."""
        decomposition = paper_model.covariance_decomposition(PAPER_TRIAL_PROFILE)
        assert decomposition.covariance > 0

    def test_single_class_covariance_is_zero(self, example_class_parameters):
        model = SequentialModel(ModelParameters({"only": example_class_parameters}))
        decomposition = model.covariance_decomposition(DemandProfile({"only": 1.0}))
        assert decomposition.covariance == pytest.approx(0.0, abs=1e-12)

    @given(models_and_profiles())
    def test_decomposition_exact_for_random_models(self, model_and_profile):
        model, profile = model_and_profile
        decomposition = model.covariance_decomposition(profile)
        assert decomposition.total == pytest.approx(
            model.system_failure_probability(profile), abs=1e-9
        )


class TestModelProperties:
    @given(models_and_profiles())
    def test_failure_probability_in_unit_interval(self, model_and_profile):
        model, profile = model_and_profile
        assert 0.0 <= model.system_failure_probability(profile) <= 1.0

    @given(models_and_profiles())
    def test_floor_is_a_lower_bound_when_importance_nonnegative(self, model_and_profile):
        model, profile = model_and_profile
        if all(model.parameters[c].importance_index >= 0 for c in profile.support):
            assert model.system_failure_probability(
                profile
            ) >= model.machine_improvement_floor(profile) - 1e-12

    @given(models_and_profiles(), st.floats(min_value=1.0, max_value=50.0))
    def test_machine_improvement_monotone_when_importance_nonnegative(
        self, model_and_profile, factor
    ):
        model, profile = model_and_profile
        if all(model.parameters[c].importance_index >= 0 for c in profile.support):
            improved = model.with_machine_improved(factor)
            assert improved.system_failure_probability(
                profile
            ) <= model.system_failure_probability(profile) + 1e-12

    @given(models_and_profiles())
    def test_profile_mixture_linearity(self, model_and_profile):
        """PHf is linear in the demand profile (equation 8 is a weighted sum)."""
        model, profile = model_and_profile
        other = DemandProfile.uniform([c.name for c in profile.classes])
        mixed = profile.mix(other, 0.3)
        expected = 0.3 * model.system_failure_probability(
            profile
        ) + 0.7 * model.system_failure_probability(other)
        assert model.system_failure_probability(mixed) == pytest.approx(
            expected, abs=1e-9
        )

    @given(models_and_profiles())
    def test_indifferent_reader_makes_machine_irrelevant(self, model_and_profile):
        """If PHf|Mf == PHf|Ms on every class, improving the machine does nothing."""
        model, profile = model_and_profile
        flattened = SequentialModel(
            model.parameters.transform(
                lambda cls, p: ClassParameters(
                    p.p_machine_failure,
                    p.p_human_failure_given_machine_success,
                    p.p_human_failure_given_machine_success,
                )
            )
        )
        improved = flattened.with_machine_improved(100.0)
        assert improved.system_failure_probability(profile) == pytest.approx(
            flattened.system_failure_probability(profile), abs=1e-9
        )


class TestFailureAttribution:
    def test_sums_to_one(self, paper_model):
        attribution = paper_model.failure_attribution(PAPER_FIELD_PROFILE)
        assert math.fsum(attribution.values()) == pytest.approx(1.0)

    def test_machine_success_share_formula(self, paper_model):
        """Failures that happened despite correct machine output:
        sum_x p(x)*PMs(x)*PHf|Ms(x) / PHf."""
        attribution = paper_model.failure_attribution(PAPER_FIELD_PROFILE)
        unpreventable = sum(
            value
            for (cls, outcome), value in attribution.items()
            if outcome == "machine_success"
        )
        params = paper_model.parameters
        expected = PAPER_FIELD_PROFILE.expectation(
            lambda cls: params[cls].p_machine_success
            * params[cls].p_human_failure_given_machine_success
        ) / paper_model.system_failure_probability(PAPER_FIELD_PROFILE)
        assert unpreventable == pytest.approx(expected)
        # Most failures happen on machine successes (PMf is small): the
        # operational face of the Section 6.1 floor.
        assert unpreventable > 0.7

    def test_paper_attribution_values(self, paper_model):
        attribution = paper_model.failure_attribution(PAPER_FIELD_PROFILE)
        # Easy/machine-success dominates: frequent class, machine fine,
        # reader just misses - most failures are not the machine's fault.
        top = max(attribution, key=attribution.get)
        assert top == (EASY, "machine_success")
        # Difficult/machine-failure: 0.1 * 0.41 * 0.9 / 0.18902.
        assert attribution[(DIFFICULT, "machine_failure")] == pytest.approx(
            0.1 * 0.41 * 0.9 / 0.18902, abs=1e-6
        )

    def test_never_failing_system_rejected(self):
        model = SequentialModel(
            ModelParameters({"x": ClassParameters(0.5, 0.0, 0.0)})
        )
        with pytest.raises(ParameterError):
            model.failure_attribution(DemandProfile({"x": 1.0}))

    def test_zero_weight_classes_excluded(self, paper_model):
        profile = DemandProfile({"easy": 1.0, "difficult": 0.0})
        attribution = paper_model.failure_attribution(profile)
        assert all(cls.name == "easy" for cls, _ in attribution)
