"""Tests for repro.core.tradeoff (FN/FP trade-offs, Section 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    SequentialModel,
    SystemOperatingPoint,
    TradeoffFrontier,
    TwoSidedModel,
    expected_cost,
)
from repro.exceptions import ParameterError, ProbabilityError

unit_floats = st.floats(min_value=0.0, max_value=1.0)


class TestSystemOperatingPoint:
    def test_sensitivity_specificity(self):
        point = SystemOperatingPoint("a", p_false_negative=0.2, p_false_positive=0.1)
        assert point.sensitivity == pytest.approx(0.8)
        assert point.specificity == pytest.approx(0.9)

    def test_dominance(self):
        better = SystemOperatingPoint("b", 0.1, 0.1)
        worse = SystemOperatingPoint("w", 0.2, 0.2)
        mixed = SystemOperatingPoint("m", 0.05, 0.3)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(mixed)
        assert not mixed.dominates(better)

    def test_no_self_domination(self):
        point = SystemOperatingPoint("a", 0.2, 0.1)
        twin = SystemOperatingPoint("b", 0.2, 0.1)
        assert not point.dominates(twin)

    def test_recall_rate(self):
        point = SystemOperatingPoint("a", p_false_negative=0.2, p_false_positive=0.1)
        # 1% prevalence: 0.01*0.8 + 0.99*0.1
        assert point.recall_rate(0.01) == pytest.approx(0.107)

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            SystemOperatingPoint("a", 1.5, 0.1)


class TestExpectedCost:
    def test_formula(self):
        point = SystemOperatingPoint("a", 0.2, 0.1)
        cost = expected_cost(
            point, prevalence=0.01, cost_false_negative=100.0, cost_false_positive=1.0
        )
        assert cost == pytest.approx(0.01 * 0.2 * 100.0 + 0.99 * 0.1 * 1.0)

    def test_rejects_nonpositive_costs(self):
        point = SystemOperatingPoint("a", 0.2, 0.1)
        with pytest.raises(ProbabilityError):
            expected_cost(point, 0.01, 0.0, 1.0)

    @given(unit_floats, unit_floats, unit_floats)
    def test_cost_nonnegative(self, fn, fp, prevalence):
        point = SystemOperatingPoint("a", fn, fp)
        assert expected_cost(point, prevalence, 10.0, 1.0) >= 0.0


class TestTwoSidedModel:
    @pytest.fixture
    def two_sided(self):
        fn_model = SequentialModel(
            ModelParameters(
                {
                    "subtle": ClassParameters(0.4, 0.8, 0.3),
                    "obvious": ClassParameters(0.05, 0.2, 0.05),
                }
            )
        )
        fp_model = SequentialModel(
            ModelParameters(
                {
                    "busy_film": ClassParameters(0.5, 0.3, 0.15),
                    "clean_film": ClassParameters(0.1, 0.1, 0.03),
                }
            )
        )
        return TwoSidedModel(
            fn_model,
            fp_model,
            cancer_profile=DemandProfile({"subtle": 0.3, "obvious": 0.7}),
            healthy_profile=DemandProfile({"busy_film": 0.4, "clean_film": 0.6}),
        )

    def test_false_negative_probability(self, two_sided):
        expected = 0.3 * (0.3 * 0.6 + 0.8 * 0.4) + 0.7 * (0.05 * 0.95 + 0.2 * 0.05)
        assert two_sided.p_false_negative() == pytest.approx(expected)

    def test_false_positive_probability(self, two_sided):
        expected = 0.4 * (0.15 * 0.5 + 0.3 * 0.5) + 0.6 * (0.03 * 0.9 + 0.1 * 0.1)
        assert two_sided.p_false_positive() == pytest.approx(expected)

    def test_operating_point(self, two_sided):
        point = two_sided.operating_point("nominal")
        assert point.label == "nominal"
        assert point.p_false_negative == pytest.approx(two_sided.p_false_negative())
        assert point.p_false_positive == pytest.approx(two_sided.p_false_positive())

    def test_profile_mismatch_rejected(self, two_sided):
        with pytest.raises(ParameterError):
            TwoSidedModel(
                two_sided.false_negative_model,
                two_sided.false_positive_model,
                cancer_profile=DemandProfile({"nonexistent": 1.0}),
                healthy_profile=DemandProfile({"busy_film": 1.0}),
            )


class TestTradeoffFrontier:
    @pytest.fixture
    def frontier(self):
        return TradeoffFrontier(
            [
                SystemOperatingPoint("conservative", 0.30, 0.02),
                SystemOperatingPoint("nominal", 0.15, 0.08),
                SystemOperatingPoint("aggressive", 0.05, 0.30),
                SystemOperatingPoint("dominated", 0.20, 0.10),
                SystemOperatingPoint("terrible", 0.40, 0.40),
            ]
        )

    def test_non_dominated(self, frontier):
        labels = [p.label for p in frontier.non_dominated()]
        assert labels == ["aggressive", "nominal", "conservative"]

    def test_best_under_fn_heavy_costs(self, frontier):
        best = frontier.best(
            prevalence=0.01, cost_false_negative=10_000.0, cost_false_positive=1.0
        )
        assert best.label == "aggressive"

    def test_best_under_fp_heavy_costs(self, frontier):
        best = frontier.best(
            prevalence=0.01, cost_false_negative=1.0, cost_false_positive=100.0
        )
        assert best.label == "conservative"

    def test_sensitivity_at_specificity(self, frontier):
        point = frontier.sensitivity_at_specificity(0.90)
        assert point.label == "nominal"

    def test_sensitivity_at_impossible_specificity(self, frontier):
        with pytest.raises(ParameterError):
            frontier.sensitivity_at_specificity(0.999)

    def test_auc_between_zero_and_one(self, frontier):
        assert 0.0 <= frontier.area_under_curve() <= 1.0

    def test_auc_better_frontier_larger(self, frontier):
        better = TradeoffFrontier(
            [
                SystemOperatingPoint("a", 0.02, 0.02),
                SystemOperatingPoint("b", 0.01, 0.10),
            ]
        )
        assert better.area_under_curve() > frontier.area_under_curve()

    def test_duplicate_labels_rejected(self):
        point = SystemOperatingPoint("x", 0.1, 0.1)
        with pytest.raises(ParameterError):
            TradeoffFrontier([point, point])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            TradeoffFrontier([])

    def test_iteration_and_len(self, frontier):
        assert len(frontier) == 5
        assert len(list(frontier)) == 5

    @given(
        st.lists(
            st.tuples(unit_floats, unit_floats), min_size=1, max_size=20, unique=True
        )
    )
    def test_frontier_points_mutually_non_dominating(self, rates):
        frontier = TradeoffFrontier(
            [SystemOperatingPoint(f"p{i}", fn, fp) for i, (fn, fp) in enumerate(rates)]
        )
        pareto = frontier.non_dominated()
        for p in pareto:
            for q in pareto:
                assert not p.dominates(q) or p.label == q.label or (
                    p.p_false_negative == q.p_false_negative
                    and p.p_false_positive == q.p_false_positive
                )
