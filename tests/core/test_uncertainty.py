"""Tests for repro.core.uncertainty (Beta posteriors, MC propagation)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_TRIAL_PROFILE,
    BetaPosterior,
    CredibleInterval,
    DemandProfile,
    SequentialModel,
    UncertainClassParameters,
    UncertainModel,
    paper_example_parameters,
)
from repro.exceptions import EstimationError, ParameterError


class TestBetaPosterior:
    def test_from_counts_jeffreys(self):
        posterior = BetaPosterior.from_counts(3, 10)
        assert posterior.alpha == pytest.approx(3.5)
        assert posterior.beta == pytest.approx(7.5)

    def test_mean(self):
        assert BetaPosterior(2.0, 2.0).mean == pytest.approx(0.5)
        assert BetaPosterior(1.0, 3.0).mean == pytest.approx(0.25)

    def test_variance_shrinks_with_data(self):
        small = BetaPosterior.from_counts(5, 10)
        large = BetaPosterior.from_counts(500, 1000)
        assert large.variance < small.variance

    def test_invalid_counts(self):
        with pytest.raises(EstimationError):
            BetaPosterior.from_counts(5, 3)
        with pytest.raises(EstimationError):
            BetaPosterior.from_counts(-1, 3)

    def test_invalid_shapes(self):
        with pytest.raises(EstimationError):
            BetaPosterior(0.0, 1.0)
        with pytest.raises(EstimationError):
            BetaPosterior(1.0, float("inf"))

    def test_certain_concentrates(self):
        posterior = BetaPosterior.certain(0.3)
        assert posterior.mean == pytest.approx(0.3, abs=1e-6)
        assert posterior.std < 1e-4

    def test_certain_at_endpoints(self):
        assert BetaPosterior.certain(0.0).mean == pytest.approx(0.0, abs=1e-6)
        assert BetaPosterior.certain(1.0).mean == pytest.approx(1.0, abs=1e-6)

    def test_quantiles_ordered(self):
        posterior = BetaPosterior.from_counts(3, 10)
        assert posterior.quantile(0.1) < posterior.quantile(0.5) < posterior.quantile(0.9)

    def test_interval_contains_mean(self):
        posterior = BetaPosterior.from_counts(3, 10)
        interval = posterior.interval(0.95)
        assert posterior.mean in interval
        assert interval.level == 0.95

    def test_interval_narrows_with_data(self):
        wide = BetaPosterior.from_counts(3, 10).interval()
        narrow = BetaPosterior.from_counts(300, 1000).interval()
        assert narrow.width < wide.width

    def test_sampling_matches_mean(self, rng):
        posterior = BetaPosterior.from_counts(30, 100)
        samples = posterior.sample(rng, 20_000)
        assert float(np.mean(samples)) == pytest.approx(posterior.mean, abs=0.01)

    def test_bad_quantile_level(self):
        with pytest.raises(EstimationError):
            BetaPosterior(1.0, 1.0).quantile(1.5)

    def test_bad_interval_level(self):
        with pytest.raises(EstimationError):
            BetaPosterior(1.0, 1.0).interval(0.0)


class TestCredibleInterval:
    def test_width_and_contains(self):
        interval = CredibleInterval(lower=0.2, upper=0.4, level=0.9, mean=0.3)
        assert interval.width == pytest.approx(0.2)
        assert 0.3 in interval
        assert 0.5 not in interval

    def test_invalid_order(self):
        with pytest.raises(EstimationError):
            CredibleInterval(lower=0.4, upper=0.2, level=0.9, mean=0.3)

    def test_invalid_level(self):
        with pytest.raises(EstimationError):
            CredibleInterval(lower=0.1, upper=0.2, level=1.0, mean=0.15)


class TestUncertainClassParameters:
    def test_from_point_roundtrip(self, example_class_parameters):
        uncertain = UncertainClassParameters.from_point(example_class_parameters)
        assert uncertain.mean_parameters().is_close(example_class_parameters, atol=1e-5)

    def test_sampling_is_valid_parameters(self, rng, example_class_parameters):
        uncertain = UncertainClassParameters(
            BetaPosterior.from_counts(2, 20),
            BetaPosterior.from_counts(14, 20),
            BetaPosterior.from_counts(2, 20),
        )
        for _ in range(50):
            sample = uncertain.sample_parameters(rng)
            assert 0.0 <= sample.p_machine_failure <= 1.0
            assert 0.0 <= sample.p_human_failure_given_machine_failure <= 1.0


class TestUncertainModel:
    @pytest.fixture
    def uncertain_model(self):
        return UncertainModel(
            {
                "easy": UncertainClassParameters(
                    BetaPosterior.from_counts(7, 100),
                    BetaPosterior.from_counts(18, 100),
                    BetaPosterior.from_counts(14, 100),
                ),
                "difficult": UncertainClassParameters(
                    BetaPosterior.from_counts(41, 100),
                    BetaPosterior.from_counts(90, 100),
                    BetaPosterior.from_counts(40, 100),
                ),
            }
        )

    def test_mean_model_close_to_paper(self, uncertain_model):
        mean_model = uncertain_model.mean_model()
        paper = SequentialModel(paper_example_parameters())
        assert mean_model.system_failure_probability(
            PAPER_TRIAL_PROFILE
        ) == pytest.approx(
            paper.system_failure_probability(PAPER_TRIAL_PROFILE), abs=0.01
        )

    def test_interval_contains_mean_prediction(self, uncertain_model, rng):
        interval = uncertain_model.failure_probability_interval(
            PAPER_TRIAL_PROFILE, num_samples=2000, rng=rng
        )
        mean_prediction = uncertain_model.mean_model().system_failure_probability(
            PAPER_TRIAL_PROFILE
        )
        assert mean_prediction in interval

    def test_interval_narrows_with_more_trial_data(self, rng):
        def model_at(n: int) -> UncertainModel:
            return UncertainModel(
                {
                    "only": UncertainClassParameters(
                        BetaPosterior.from_counts(n // 10, n),
                        BetaPosterior.from_counts(n // 2, n),
                        BetaPosterior.from_counts(n // 10, n),
                    )
                }
            )

        profile = DemandProfile({"only": 1.0})
        wide = model_at(20).failure_probability_interval(
            profile, num_samples=2000, rng=np.random.default_rng(0)
        )
        narrow = model_at(2000).failure_probability_interval(
            profile, num_samples=2000, rng=np.random.default_rng(0)
        )
        assert narrow.width < wide.width

    def test_samples_in_unit_interval(self, uncertain_model, rng):
        samples = uncertain_model.failure_probability_samples(
            PAPER_TRIAL_PROFILE, num_samples=500, rng=rng
        )
        assert np.all((samples >= 0.0) & (samples <= 1.0))

    def test_from_point_is_degenerate(self, rng):
        model = UncertainModel.from_point(paper_example_parameters())
        interval = model.failure_probability_interval(
            PAPER_TRIAL_PROFILE, num_samples=500, rng=rng
        )
        assert interval.width < 1e-3
        assert interval.mean == pytest.approx(0.235, abs=1e-2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            UncertainModel({})
        with pytest.raises(ParameterError):
            UncertainModel({"a": "nope"})  # type: ignore[dict-item]
        model = UncertainModel.from_point(paper_example_parameters())
        with pytest.raises(ParameterError):
            model["unknown"]

    def test_bad_sample_count(self):
        model = UncertainModel.from_point(paper_example_parameters())
        with pytest.raises(EstimationError):
            model.failure_probability_samples(PAPER_TRIAL_PROFILE, num_samples=0)


class TestScenarioComparison:
    @pytest.fixture
    def uncertain_paper_model(self):
        """Posteriors as if Table 1 came from a 400-reading-per-class trial."""
        def from_rate(rate, n=400):
            return BetaPosterior.from_counts(round(rate * n), n)

        return UncertainModel(
            {
                "easy": UncertainClassParameters(
                    from_rate(0.07), from_rate(0.18), from_rate(0.14)
                ),
                "difficult": UncertainClassParameters(
                    from_rate(0.41), from_rate(0.90), from_rate(0.40)
                ),
            }
        )

    def test_improving_difficult_beats_easy_with_high_probability(
        self, uncertain_paper_model, rng
    ):
        """Table 3's conclusion survives estimation uncertainty."""
        probability = uncertain_paper_model.probability_scenario_beats(
            lambda p: p.with_machine_improved(10.0, ["difficult"]),
            lambda p: p.with_machine_improved(10.0, ["easy"]),
            PAPER_TRIAL_PROFILE,
            num_samples=2000,
            rng=rng,
        )
        assert probability > 0.95

    def test_identical_scenarios_are_a_coin_flip(self, uncertain_paper_model, rng):
        probability = uncertain_paper_model.probability_scenario_beats(
            lambda p: p,
            lambda p: p,
            PAPER_TRIAL_PROFILE,
            num_samples=500,
            rng=rng,
        )
        # Identical transforms give identical values on every draw; exact
        # ties count as half a win each, so the answer is exactly 0.5 —
        # "the data cannot tell the scenarios apart" — rather than the
        # misleading 0.0 that strict-win counting used to report.
        assert probability == 0.5

    def test_degenerate_posterior_cannot_distinguish_scenarios(self, rng):
        """A from_point posterior compares near-identical draws: exactly 0.5."""
        model = UncertainModel.from_point(paper_example_parameters())
        probability = model.probability_scenario_beats(
            lambda p: p,
            lambda p: p,
            PAPER_TRIAL_PROFILE,
            num_samples=200,
            rng=rng,
        )
        assert probability == 0.5

    def test_interval_is_reproducible_with_seed(self, uncertain_paper_model):
        first = uncertain_paper_model.failure_probability_interval(
            PAPER_TRIAL_PROFILE, num_samples=400, seed=123
        )
        second = uncertain_paper_model.failure_probability_interval(
            PAPER_TRIAL_PROFILE, num_samples=400, seed=123
        )
        assert (first.lower, first.upper, first.mean) == (
            second.lower,
            second.upper,
            second.mean,
        )
        different = uncertain_paper_model.failure_probability_interval(
            PAPER_TRIAL_PROFILE, num_samples=400, seed=124
        )
        assert (different.lower, different.upper) != (first.lower, first.upper)

    def test_any_improvement_beats_baseline(self, uncertain_paper_model, rng):
        probability = uncertain_paper_model.probability_scenario_beats(
            lambda p: p.with_machine_improved(10.0),
            lambda p: p,
            PAPER_TRIAL_PROFILE,
            num_samples=500,
            rng=rng,
        )
        assert probability == 1.0

    def test_invalid_sample_count(self, uncertain_paper_model):
        with pytest.raises(EstimationError):
            uncertain_paper_model.probability_scenario_beats(
                lambda p: p, lambda p: p, PAPER_TRIAL_PROFILE, num_samples=0
            )
