"""Scalar-vs-vectorized bit-identity for the posterior-propagation kernel.

Every consumer of :mod:`repro.engine.posterior` keeps its scalar
reference path; these tests pin the contract that for a given seed the
two paths return *bit-identical* results (``==``/``array_equal``, not
``approx``): both consume the same param-major sampled table and the
evaluation replays the same left-to-right float64 operations.
"""

import numpy as np
import pytest

from repro.analysis.sensitivity import tornado
from repro.core import (
    PAPER_FIELD_PROFILE,
    PAPER_TRIAL_PROFILE,
    BetaPosterior,
    Change,
    ExtrapolationStudy,
    ImproveMachine,
    Scenario,
    SequentialModel,
    TwoSidedModel,
    UncertainClassParameters,
    UncertainModel,
    paper_example_parameters,
    paper_improvement_scenarios,
    sweep_machine_settings,
)
from repro.exceptions import EstimationError


@pytest.fixture
def uncertain_paper_model():
    """Posteriors as if Table 1 came from a 400-reading-per-class trial."""

    def from_rate(rate, n=400):
        return BetaPosterior.from_counts(round(rate * n), n)

    return UncertainModel(
        {
            "easy": UncertainClassParameters(
                from_rate(0.07), from_rate(0.18), from_rate(0.14)
            ),
            "difficult": UncertainClassParameters(
                from_rate(0.41), from_rate(0.90), from_rate(0.40)
            ),
        }
    )


class TestSampleEquivalence:
    def test_samples_bit_identical(self, uncertain_paper_model):
        vectorized = uncertain_paper_model.failure_probability_samples(
            PAPER_FIELD_PROFILE, num_samples=1000, seed=42
        )
        scalar = uncertain_paper_model.failure_probability_samples(
            PAPER_FIELD_PROFILE, num_samples=1000, seed=42, method="scalar"
        )
        assert np.array_equal(vectorized, scalar)

    def test_interval_bit_identical(self, uncertain_paper_model):
        vectorized = uncertain_paper_model.failure_probability_interval(
            PAPER_FIELD_PROFILE, num_samples=1000, seed=42
        )
        scalar = uncertain_paper_model.failure_probability_interval(
            PAPER_FIELD_PROFILE, num_samples=1000, seed=42, method="scalar"
        )
        assert vectorized.lower == scalar.lower
        assert vectorized.upper == scalar.upper
        assert vectorized.mean == scalar.mean

    def test_bad_method_rejected(self, uncertain_paper_model):
        with pytest.raises(EstimationError):
            uncertain_paper_model.failure_probability_samples(
                PAPER_FIELD_PROFILE, num_samples=10, seed=0, method="quantum"
            )


class TestScenarioBeatsEquivalence:
    def test_array_protocol_transform(self, uncertain_paper_model):
        vectorized = uncertain_paper_model.probability_scenario_beats(
            lambda p: p.with_machine_improved(10.0, ["difficult"]),
            lambda p: p.with_machine_improved(10.0, ["easy"]),
            PAPER_TRIAL_PROFILE,
            num_samples=1000,
            seed=7,
        )
        scalar = uncertain_paper_model.probability_scenario_beats(
            lambda p: p.with_machine_improved(10.0, ["difficult"]),
            lambda p: p.with_machine_improved(10.0, ["easy"]),
            PAPER_TRIAL_PROFILE,
            num_samples=1000,
            seed=7,
            method="scalar",
        )
        assert vectorized == scalar

    def test_scalar_only_transform_falls_back(self, uncertain_paper_model):
        """A transform speaking only the ModelParameters protocol falls back

        to the per-row loop over the same table — same seed, same answer."""

        def opaque(parameters):
            # touches ModelParameters-only API, so it cannot run on a table
            return parameters.with_class("easy", parameters["easy"])

        via_fallback = uncertain_paper_model.probability_scenario_beats(
            opaque,
            lambda p: p.with_machine_improved(10.0),
            PAPER_TRIAL_PROFILE,
            num_samples=400,
            seed=11,
        )
        scalar = uncertain_paper_model.probability_scenario_beats(
            opaque,
            lambda p: p.with_machine_improved(10.0),
            PAPER_TRIAL_PROFILE,
            num_samples=400,
            seed=11,
            method="scalar",
        )
        assert via_fallback == scalar
        assert via_fallback == 0.0  # an improvement always beats the baseline


class TestTornadoEquivalence:
    def test_bars_bit_identical(self):
        model = SequentialModel(paper_example_parameters())
        vectorized = tornado(model, PAPER_FIELD_PROFILE, relative_change=0.25)
        scalar = tornado(
            model, PAPER_FIELD_PROFILE, relative_change=0.25, method="scalar"
        )
        assert len(vectorized) == len(scalar) == 6
        for a, b in zip(vectorized, scalar):
            assert (a.case_class, a.parameter) == (b.case_class, b.parameter)
            assert a.low == b.low
            assert a.high == b.high
            assert a.baseline == b.baseline

    def test_clipping_perturbations_stay_identical(self):
        # A 500% swing clips at 1.0; both paths must clip identically.
        model = SequentialModel(paper_example_parameters())
        vectorized = tornado(model, PAPER_TRIAL_PROFILE, relative_change=5.0)
        scalar = tornado(model, PAPER_TRIAL_PROFILE, relative_change=5.0, method="scalar")
        for a, b in zip(vectorized, scalar):
            assert (a.low, a.high) == (b.low, b.high)


class TestExtrapolationEquivalence:
    def test_baseline_cell_matches_direct_interval(self, uncertain_paper_model):
        study = ExtrapolationStudy(
            paper_example_parameters(),
            {"trial": PAPER_TRIAL_PROFILE, "field": PAPER_FIELD_PROFILE},
            paper_improvement_scenarios(),
        )
        intervals = study.credible_intervals(uncertain_paper_model, num_draws=800, seed=3)
        assert set(intervals) == {
            (s, p)
            for s in ("baseline", "improve_easy", "improve_difficult")
            for p in ("trial", "field")
        }
        direct = uncertain_paper_model.failure_probability_interval(
            PAPER_FIELD_PROFILE, num_samples=800, seed=3
        )
        cell = intervals[("baseline", "field")]
        assert (cell.lower, cell.upper, cell.mean) == (
            direct.lower,
            direct.upper,
            direct.mean,
        )

    def test_custom_change_fallback_matches_array_path(self, uncertain_paper_model):
        class OpaqueImprove(Change):
            """Same effect as ImproveMachine(2.0) but scalar-only."""

            def apply(self, parameters, profile):
                return parameters.with_machine_improved(2.0), profile

        profiles = {"field": PAPER_FIELD_PROFILE}
        fallback = ExtrapolationStudy(
            paper_example_parameters(),
            profiles,
            [Scenario("change", (OpaqueImprove(),))],
        ).credible_intervals(uncertain_paper_model, num_draws=300, seed=9)
        array = ExtrapolationStudy(
            paper_example_parameters(),
            profiles,
            [Scenario("change", (ImproveMachine(2.0),))],
        ).credible_intervals(uncertain_paper_model, num_draws=300, seed=9)
        a, b = fallback[("change", "field")], array[("change", "field")]
        assert (a.lower, a.upper, a.mean) == (b.lower, b.upper, b.mean)

    def test_bad_level_rejected(self, uncertain_paper_model):
        study = ExtrapolationStudy(
            paper_example_parameters(), {"field": PAPER_FIELD_PROFILE}
        )
        with pytest.raises(EstimationError):
            study.credible_intervals(uncertain_paper_model, level=1.0, num_draws=10)


class TestTradeoffSweepEquivalence:
    def test_sweep_bit_identical(self):
        parameters = paper_example_parameters()
        model = TwoSidedModel(
            SequentialModel(parameters),
            SequentialModel(parameters.with_machine_improved(2.0)),
            PAPER_TRIAL_PROFILE,
            PAPER_FIELD_PROFILE,
        )
        settings = {
            "lenient": (0.5, 2.0),
            "baseline": (1.0, 1.0),
            "strict": (2.0, 0.5),
        }
        vectorized = sweep_machine_settings(model, settings)
        scalar = sweep_machine_settings(model, settings, method="scalar")
        assert [p.label for p in vectorized] == list(settings)
        for a, b in zip(vectorized, scalar):
            assert a.label == b.label
            assert a.p_false_negative == b.p_false_negative
            assert a.p_false_positive == b.p_false_positive
