"""Property-based tests for Beta posteriors and the posterior kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BetaPosterior,
    DemandProfile,
    UncertainClassParameters,
    UncertainModel,
)

counts = st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
    lambda pair: (min(pair), max(pair))
)
quantile_levels = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def beta_posteriors(draw):
    events, trials = draw(counts)
    return BetaPosterior.from_counts(events, trials)


@st.composite
def uncertain_class_parameters(draw):
    return UncertainClassParameters(
        draw(beta_posteriors()), draw(beta_posteriors()), draw(beta_posteriors())
    )


class TestBetaPosteriorProperties:
    @given(posterior=beta_posteriors())
    def test_mean_is_a_probability(self, posterior):
        assert 0.0 <= posterior.mean <= 1.0

    @given(posterior=beta_posteriors(), q=quantile_levels)
    @settings(max_examples=50)
    def test_quantiles_are_probabilities(self, posterior, q):
        assert 0.0 <= posterior.quantile(q) <= 1.0

    @given(posterior=beta_posteriors(), q=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=25, deadline=None)
    def test_quantile_agrees_with_monte_carlo(self, posterior, q):
        """The exact (scipy) quantile and a seeded MC estimate agree.

        Tolerance scales with the posterior's spread: a quantile can only
        be pinned down to the local density of samples around it.
        """
        exact = posterior.quantile(q)
        rng = np.random.default_rng(0)
        estimate = float(np.quantile(posterior.sample(rng, 100_000), q))
        assert estimate == pytest.approx(exact, abs=max(5e-2 * posterior.std, 1e-4))

    @given(posterior=beta_posteriors(), level=st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=25, deadline=None)
    def test_interval_is_ordered_and_in_unit_range(self, posterior, level):
        interval = posterior.interval(level)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0


class TestKernelProperties:
    @given(
        first=uncertain_class_parameters(),
        second=uncertain_class_parameters(),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_interval_invariant_under_class_relabelling(self, first, second, seed):
        """Sampling is keyed by *sorted* class order, so the same posteriors

        under reordered (relabelled-but-order-preserving) construction
        consume the RNG stream identically and give bit-identical
        intervals."""
        forward = UncertainModel({"alpha": first, "beta": second})
        reversed_insertion = UncertainModel({"beta": second, "alpha": first})
        profile = DemandProfile({"alpha": 0.3, "beta": 0.7})
        one = forward.failure_probability_interval(profile, num_samples=200, seed=seed)
        two = reversed_insertion.failure_probability_interval(
            profile, num_samples=200, seed=seed
        )
        assert (one.lower, one.upper, one.mean) == (two.lower, two.upper, two.mean)

    @given(
        entry=uncertain_class_parameters(),
        seed=st.integers(0, 2**31 - 1),
        factor=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_win_probabilities_sum_to_one(self, entry, seed, factor):
        """With ties counted half, P(A beats B) + P(B beats A) = 1 exactly

        under common random numbers — no probability mass leaks into
        ties."""
        model = UncertainModel({"only": entry})
        profile = DemandProfile({"only": 1.0})
        improve = lambda p: p.with_machine_improved(factor)  # noqa: E731
        keep = lambda p: p  # noqa: E731
        forward = model.probability_scenario_beats(
            improve, keep, profile, num_samples=200, seed=seed
        )
        backward = model.probability_scenario_beats(
            keep, improve, profile, num_samples=200, seed=seed
        )
        assert forward + backward == 1.0

    @given(entry=uncertain_class_parameters(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_samples_are_probabilities(self, entry, seed):
        model = UncertainModel({"only": entry})
        profile = DemandProfile({"only": 1.0})
        samples = model.failure_probability_samples(profile, num_samples=100, seed=seed)
        assert np.all((samples >= 0.0) & (samples <= 1.0))
