"""Scalar/batch equivalence: the engine's bit-identical-counts guarantee.

For every stateless system configuration over every population preset,
the vectorized engine must report *exactly* the failure counts the scalar
loop reports — overall and per case class — in both randomness modes:

* unseeded: two fresh, identically-seeded systems, one driven case by
  case and one through the engine (components consume their private
  generator streams identically);
* seeded single chunk: the engine replicates the seeded scalar loop's
  shared-generator stream.
"""

import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.engine import evaluate_system_batch
from repro.reader import (
    MILD_BIAS,
    NO_BIAS,
    STRONG_BIAS,
    ReaderModel,
    ReaderSkill,
    ReadingProcedure,
)
from repro.screening import (
    SubtletyClassifier,
    low_correlation_population,
    routine_screening_population,
    symptomatic_clinic_population,
    trial_workload,
    young_cohort_population,
)
from repro.system import AssistedReading, UnaidedReading, evaluate_system

POPULATION_PRESETS = {
    "routine": routine_screening_population,
    "young": young_cohort_population,
    "symptomatic": symptomatic_clinic_population,
    "low_correlation": low_correlation_population,
}

BIASES = {"no_bias": NO_BIAS, "mild": MILD_BIAS, "strong": STRONG_BIAS}


def make_workload(preset, n=600):
    return trial_workload(preset(seed=11), n, cancer_fraction=0.3, name="eq")


def make_unaided(seed, bias=MILD_BIAS, procedure=ReadingProcedure.SEQUENTIAL):
    reader = ReaderModel(
        skill=ReaderSkill(), bias=bias, procedure=procedure, name="r", seed=seed
    )
    return UnaidedReading(reader)


def make_assisted(seed, bias=MILD_BIAS, procedure=ReadingProcedure.SEQUENTIAL):
    reader = ReaderModel(
        skill=ReaderSkill(), bias=bias, procedure=procedure, name="r", seed=seed
    )
    return AssistedReading(reader, Cadt(DetectionAlgorithm(), seed=seed + 1000))


SYSTEM_FACTORIES = {"unaided": make_unaided, "assisted": make_assisted}


def failure_counts(evaluation):
    """Every count the evaluation carries, as one comparable structure."""
    return {
        "fn": (
            (evaluation.false_negative.failures, evaluation.false_negative.trials)
            if evaluation.false_negative
            else None
        ),
        "fp": (
            (evaluation.false_positive.failures, evaluation.false_positive.trials)
            if evaluation.false_positive
            else None
        ),
        "per_class": {
            cls.name: (est.failures, est.trials)
            for cls, est in evaluation.per_class_false_negative.items()
        },
    }


@pytest.mark.parametrize("population", POPULATION_PRESETS)
@pytest.mark.parametrize("kind", SYSTEM_FACTORIES)
class TestUnseededEquivalence:
    def test_fresh_systems_bit_identical(self, population, kind):
        workload = make_workload(POPULATION_PRESETS[population])
        classifier = SubtletyClassifier()
        scalar = evaluate_system(
            SYSTEM_FACTORIES[kind](seed=7), workload, classifier
        )
        batch = evaluate_system_batch(
            SYSTEM_FACTORIES[kind](seed=7), workload, classifier
        )
        assert failure_counts(scalar) == failure_counts(batch)

    def test_chunking_does_not_change_unseeded_results(self, population, kind):
        # PCG64 stream continuity: drawing a batch's uniforms in chunks
        # consumes the private generators identically to one flat draw.
        workload = make_workload(POPULATION_PRESETS[population])
        whole = evaluate_system_batch(SYSTEM_FACTORIES[kind](seed=3), workload)
        chunked = evaluate_system_batch(
            SYSTEM_FACTORIES[kind](seed=3), workload, chunk_size=97
        )
        assert failure_counts(whole) == failure_counts(chunked)


@pytest.mark.parametrize("population", POPULATION_PRESETS)
@pytest.mark.parametrize("kind", SYSTEM_FACTORIES)
class TestSeededEquivalence:
    def test_seeded_single_chunk_matches_seeded_scalar(self, population, kind):
        # Component seeds differ on purpose: with an evaluation seed the
        # private generators are bypassed, so only the seed may matter.
        workload = make_workload(POPULATION_PRESETS[population])
        classifier = SubtletyClassifier()
        scalar = evaluate_system(
            SYSTEM_FACTORIES[kind](seed=1), workload, classifier, seed=2024
        )
        batch = evaluate_system_batch(
            SYSTEM_FACTORIES[kind](seed=2), workload, classifier, seed=2024
        )
        assert failure_counts(scalar) == failure_counts(batch)

    def test_seeded_multichunk_is_reproducible(self, population, kind):
        workload = make_workload(POPULATION_PRESETS[population])
        first = evaluate_system_batch(
            SYSTEM_FACTORIES[kind](seed=1), workload, seed=5, chunk_size=100
        )
        second = evaluate_system_batch(
            SYSTEM_FACTORIES[kind](seed=2), workload, seed=5, chunk_size=100
        )
        assert failure_counts(first) == failure_counts(second)


@pytest.mark.parametrize("bias", BIASES)
@pytest.mark.parametrize("procedure", list(ReadingProcedure))
class TestReaderVariantEquivalence:
    def test_assisted_bias_and_procedure_variants(self, bias, procedure):
        workload = make_workload(routine_screening_population)
        scalar = evaluate_system(
            make_assisted(seed=7, bias=BIASES[bias], procedure=procedure), workload
        )
        batch = evaluate_system_batch(
            make_assisted(seed=7, bias=BIASES[bias], procedure=procedure), workload
        )
        assert failure_counts(scalar) == failure_counts(batch)

    def test_unaided_bias_and_procedure_variants(self, bias, procedure):
        workload = make_workload(routine_screening_population)
        scalar = evaluate_system(
            make_unaided(seed=7, bias=BIASES[bias], procedure=procedure), workload
        )
        batch = evaluate_system_batch(
            make_unaided(seed=7, bias=BIASES[bias], procedure=procedure), workload
        )
        assert failure_counts(scalar) == failure_counts(batch)


class TestMachineFailureEquivalence:
    def test_batch_machine_failures_match_scalar(self):
        # The machine-failure flags, not just system failures, must agree.
        workload = make_workload(routine_screening_population, n=400)
        arrays = workload.to_arrays()
        scalar_system = make_assisted(seed=9)
        batch_system = make_assisted(seed=9)
        scalar_flags = [
            scalar_system.decide(case).machine_failed for case in workload
        ]
        decisions = batch_system.decide_batch(arrays)
        assert decisions.machine_failed is not None
        assert [bool(f) for f in decisions.machine_failed] == scalar_flags

    def test_batch_recall_decisions_match_scalar(self):
        workload = make_workload(routine_screening_population, n=400)
        arrays = workload.to_arrays()
        scalar_system = make_unaided(seed=9)
        batch_system = make_unaided(seed=9)
        scalar_recalls = [scalar_system.decide(case).recall for case in workload]
        decisions = batch_system.decide_batch(arrays)
        assert decisions.machine_failed is None
        assert [bool(r) for r in decisions.recall] == scalar_recalls
