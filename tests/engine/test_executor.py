"""Executor mechanics: chunk planning, parallel fan-out, array views."""

import numpy as np
import pytest

from repro.cadt import Cadt
from repro.engine import (
    CaseArrays,
    LESION_CODES,
    compare_systems_batch,
    evaluate_system_batch,
    plan_chunks,
)
from repro.exceptions import SimulationError
from repro.reader import MILD_BIAS, ReaderModel, ReaderSkill
from repro.screening import (
    SubtletyClassifier,
    routine_screening_population,
    trial_workload,
)
from repro.screening.workload import Workload
from repro.system import AssistedReading, UnaidedReading, compare_systems

from tests.engine.test_equivalence import failure_counts


def make_workload(n=500, seed=31):
    return trial_workload(
        routine_screening_population(seed=seed), n, cancer_fraction=0.3, name="ex"
    )


def make_system(seed=4):
    reader = ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=seed)
    return AssistedReading(reader, Cadt(seed=seed + 1000))


class TestPlanChunks:
    def test_covers_range_exactly(self):
        chunks = plan_chunks(10, 3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk_when_larger_than_workload(self):
        assert plan_chunks(5, 100) == [(0, 5)]

    def test_empty_range(self):
        assert plan_chunks(0, 4) == []

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(SimulationError):
            plan_chunks(10, 0)


class TestCaseArrays:
    def test_roundtrips_case_attributes(self):
        workload = make_workload(n=50)
        arrays = workload.to_arrays()
        assert isinstance(arrays, CaseArrays)
        assert len(arrays) == len(workload)
        for i, case in enumerate(workload):
            assert arrays.case_id[i] == case.case_id
            assert arrays.has_cancer[i] == case.has_cancer
            assert arrays.machine_difficulty[i] == case.machine_difficulty
            assert (
                arrays.human_detection_difficulty[i]
                == case.human_detection_difficulty
            )
        assert list(arrays.lesion_types()) == [c.lesion_type for c in workload]

    def test_lesion_codes_cover_all_types(self):
        assert len(set(LESION_CODES)) == len(LESION_CODES)
        workload = make_workload(n=200)
        arrays = workload.to_arrays()
        healthy = ~arrays.has_cancer
        assert (arrays.lesion_code[healthy] == -1).all()
        assert (arrays.lesion_code[~healthy] >= 0).all()

    def test_chunk_is_a_view(self):
        arrays = make_workload(n=20).to_arrays()
        chunk = arrays.chunk(5, 12)
        assert len(chunk) == 7
        assert chunk.case_id.base is arrays.case_id
        assert (chunk.case_id == arrays.case_id[5:12]).all()

    def test_chunk_bounds_checked(self):
        arrays = make_workload(n=20).to_arrays()
        with pytest.raises(SimulationError):
            arrays.chunk(5, 25)

    def test_mismatched_lengths_rejected(self):
        arrays = make_workload(n=4).to_arrays()
        with pytest.raises(SimulationError):
            CaseArrays(
                case_id=arrays.case_id,
                has_cancer=arrays.has_cancer[:2],
                lesion_code=arrays.lesion_code,
                breast_density=arrays.breast_density,
                subtlety=arrays.subtlety,
                machine_difficulty=arrays.machine_difficulty,
                human_detection_difficulty=arrays.human_detection_difficulty,
                human_classification_difficulty=arrays.human_classification_difficulty,
                distractor_level=arrays.distractor_level,
            )


class TestExecutorGuards:
    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            evaluate_system_batch(make_system(), Workload("empty", ()))

    def test_parallel_without_seed_rejected(self):
        with pytest.raises(SimulationError, match="seed"):
            evaluate_system_batch(make_system(), make_workload(), workers=2)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SimulationError):
            evaluate_system_batch(make_system(), make_workload(), workers=0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SimulationError):
            compare_systems_batch([make_system(1), make_system(2)], make_workload())


class TestParallelDeterminism:
    def test_worker_count_does_not_change_seeded_results(self):
        workload = make_workload()
        serial = evaluate_system_batch(
            make_system(1), workload, seed=8, chunk_size=100
        )
        parallel = evaluate_system_batch(
            make_system(2), workload, seed=8, chunk_size=100, workers=2
        )
        assert failure_counts(serial) == failure_counts(parallel)

    def test_parallel_per_class_counts_merge_correctly(self):
        workload = make_workload()
        classifier = SubtletyClassifier()
        serial = evaluate_system_batch(
            make_system(1), workload, classifier, seed=8, chunk_size=64
        )
        parallel = evaluate_system_batch(
            make_system(2), workload, classifier, seed=8, chunk_size=64, workers=2
        )
        assert failure_counts(serial) == failure_counts(parallel)
        assert sum(
            est.trials for est in parallel.per_class_false_negative.values()
        ) == parallel.false_negative.trials


class TestCompareSystemsBatch:
    def test_matches_scalar_compare_under_common_seed(self):
        workload = make_workload()
        systems_scalar = [
            UnaidedReading(
                ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="u", seed=1)
            ),
            make_system(2),
        ]
        systems_batch = [
            UnaidedReading(
                ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="u", seed=3)
            ),
            make_system(4),
        ]
        scalar = compare_systems(systems_scalar, workload, seed=13)
        batch = compare_systems_batch(systems_batch, workload, seed=13)
        assert scalar.keys() == batch.keys()
        for name in scalar:
            assert failure_counts(scalar[name]) == failure_counts(batch[name])

    def test_mixed_stateless_and_stateful_comparison(self):
        # A batch-incapable system rides the scalar fallback inside the
        # same comparison; everything still evaluates.
        from repro.reader import FatiguedReader

        workload = make_workload(n=200)
        stateless = make_system(1)
        stateful = UnaidedReading(
            FatiguedReader(
                ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="f", seed=2)
            )
        )
        results = compare_systems_batch([stateless, stateful], workload, seed=5)
        assert set(results) == {stateless.name, stateful.name}
        for evaluation in results.values():
            assert evaluation.false_negative is not None
