"""Stateful systems keep their order-dependent semantics — transparently
and exactly — through the batch entry point.

Fatigued and adapting readers, and drifting tools, are order-dependent:
the decision on case ``i`` depends on cases ``0..i-1``.  Temporal reader
wrappers now run on the engine's ordered stream-carry path (see
``tests/engine/test_stateful_equivalence.py`` for the full battery);
drifting tools still route through
:func:`~repro.system.simulate.evaluate_system`.  Either way the batch
entry point must reproduce the scalar trajectories exactly — that is
what these tests pin down.
"""

import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.engine import evaluate_system_batch, supports_batch
from repro.exceptions import SimulationError
from repro.reader import (
    MILD_BIAS,
    AdaptiveReader,
    FatiguedReader,
    ReaderModel,
    ReaderSkill,
)
from repro.screening import routine_screening_population, trial_workload
from repro.system import AssistedReading, UnaidedReading, evaluate_system

from tests.engine.test_equivalence import failure_counts


def base_reader(seed):
    return ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=seed)


def workload(n=400):
    return trial_workload(
        routine_screening_population(seed=21), n, cancer_fraction=0.3, name="fb"
    )


def fatigued_system(seed):
    return UnaidedReading(FatiguedReader(base_reader(seed), seed=seed + 50))


def adaptive_system(seed):
    return AssistedReading(
        AdaptiveReader(base_reader(seed), seed=seed + 50), Cadt(seed=seed + 100)
    )


def drifting_system(seed):
    return AssistedReading(
        base_reader(seed),
        Cadt(DetectionAlgorithm(), drift_per_case=5e-3, seed=seed + 100),
    )


STATEFUL_FACTORIES = {
    "fatigued_reader": fatigued_system,
    "adaptive_reader": adaptive_system,
    "drifting_cadt": drifting_system,
}


@pytest.mark.parametrize("kind", STATEFUL_FACTORIES)
class TestStatefulFallback:
    def test_declares_no_batch_support(self, kind):
        assert not supports_batch(STATEFUL_FACTORIES[kind](seed=1))

    def test_batch_entry_point_matches_scalar_loop(self, kind):
        # Order-dependent results, bit for bit: the fallback must run the
        # very same per-case loop over the very same sequence.
        wl = workload()
        scalar = evaluate_system(STATEFUL_FACTORIES[kind](seed=5), wl)
        batch = evaluate_system_batch(STATEFUL_FACTORIES[kind](seed=5), wl)
        assert failure_counts(scalar) == failure_counts(batch)

    def test_seeded_fallback_matches_seeded_scalar(self, kind):
        wl = workload()
        scalar = evaluate_system(STATEFUL_FACTORIES[kind](seed=5), wl, seed=77)
        batch = evaluate_system_batch(STATEFUL_FACTORIES[kind](seed=5), wl, seed=77)
        assert failure_counts(scalar) == failure_counts(batch)

    def test_decide_batch_refuses_stateful_components(self, kind):
        system = STATEFUL_FACTORIES[kind](seed=1)
        with pytest.raises(SimulationError):
            system.decide_batch(workload(50).to_arrays())


class TestStatefulnessIsObservable:
    def test_fatigue_actually_changes_results(self):
        # Guard against the fallback tests passing vacuously: the
        # stateful wrapper must differ from its stateless base.
        wl = workload()
        rested = evaluate_system(UnaidedReading(base_reader(5)), wl, seed=77)
        fatigued = evaluate_system(fatigued_system(5), wl, seed=77)
        assert failure_counts(rested) != failure_counts(fatigued)

    def test_drift_actually_changes_results(self):
        wl = workload()
        stable = evaluate_system(
            AssistedReading(base_reader(5), Cadt(seed=105)), wl, seed=77
        )
        drifting = evaluate_system(drifting_system(5), wl, seed=77)
        assert failure_counts(stable) != failure_counts(drifting)
