"""Pin the fused-dispatch kernel bit-identical to the per-call executor.

``run_fused_batch`` is the shared kernel behind the sweep runner and the
service micro-batcher.  These tests build :data:`FusedTask` tuples by
hand and assert that every item's demultiplexed
:class:`~repro.engine.fused.FusedCounts` rebuilds *exactly* the
:class:`~repro.system.simulate.SystemEvaluation` a standalone
:func:`~repro.engine.executor.evaluate_system_batch` run of the same
``(seed, chunk_size)`` produces — for batch systems, stream systems,
mixed fusions, pooled dispatch, and multi-class breakdowns.
"""

import numpy as np
import pytest

from repro.cadt import Cadt
from repro.engine import EngineRuntime, evaluate_system_batch
from repro.engine.fused import (
    FusedCounts,
    build_fused_item,
    cancer_class_codes,
    run_fused_batch,
)
from repro.exceptions import SimulationError
from repro.reader import MILD_BIAS, AdaptiveReader, FatiguedReader, ReaderModel, ReaderSkill
from repro.screening import SingleClassClassifier, SubtletyClassifier
from repro.system import AssistedReading

from tests.engine.test_executor import make_system, make_workload


def stream_system(seed=2, wrapper=FatiguedReader):
    """An assisted system on the ordered stream-carry path."""
    reader = ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=seed)
    return AssistedReading(wrapper(reader, seed=seed + 500), Cadt(seed=seed + 1000))


def fused_task(workload, items, chunk_size, classifier, plane=None):
    """Hand-build one dispatch exactly as the runner/service do."""
    arrays = workload.to_arrays()
    positions = np.flatnonzero(arrays.has_cancer)
    codes = cancer_class_codes(workload, classifier, arrays, positions)
    n_classes = len(classifier.classes)
    return (
        plane if plane is not None else arrays,
        chunk_size,
        positions,
        codes,
        n_classes,
        tuple(items),
    )


def fused_evaluations(workload, pairs, chunk_size, classifier=None):
    """Evaluate ``(system, seed)`` pairs through one fused dispatch."""
    classifier = classifier if classifier is not None else SingleClassClassifier()
    items = [
        build_fused_item(index, system, seed)
        for index, (system, seed) in enumerate(pairs)
    ]
    rows = run_fused_batch(fused_task(workload, items, chunk_size, classifier))
    class_names = tuple(case_class.name for case_class in classifier.classes)
    return [
        FusedCounts.from_row(row, class_names).evaluation(
            system.name, workload.name
        )
        for row, (system, _) in zip(rows, pairs)
    ]


class TestFusedEquivalence:
    @pytest.mark.parametrize("chunk_size", [64, 128, 16384])
    def test_batch_system_matches_executor(self, chunk_size):
        workload = make_workload(600)
        (fused,) = fused_evaluations(workload, [(make_system(), 17)], chunk_size)
        reference = evaluate_system_batch(
            make_system(), workload, seed=17, chunk_size=chunk_size
        )
        # Frozen-dataclass equality: counts, Wilson intervals, names.
        assert fused == reference

    @pytest.mark.parametrize("chunk_size", [64, 250])
    @pytest.mark.parametrize("wrapper", [FatiguedReader, AdaptiveReader])
    def test_stream_system_matches_executor(self, chunk_size, wrapper):
        # Stateful wrappers carry reader state across chunk boundaries;
        # the fused path must reproduce the executor's ordered stream.
        workload = make_workload(500)
        (fused,) = fused_evaluations(
            workload, [(stream_system(wrapper=wrapper), 23)], chunk_size
        )
        reference = evaluate_system_batch(
            stream_system(wrapper=wrapper), workload, seed=23, chunk_size=chunk_size
        )
        assert fused == reference

    def test_mixed_fusion_matches_each_solo_run(self):
        # Batch and stream items fused into ONE task each stay identical
        # to their standalone runs: per-item seeds, no cross-talk.
        workload = make_workload(400)
        pairs = [
            (make_system(1), 101),
            (stream_system(2), 202),
            (make_system(3), 303),
            (stream_system(4, wrapper=AdaptiveReader), 404),
        ]
        fused = fused_evaluations(workload, pairs, 128)
        rebuilt = [
            (make_system(1), 101),
            (stream_system(2), 202),
            (make_system(3), 303),
            (stream_system(4, wrapper=AdaptiveReader), 404),
        ]
        for evaluation, (system, seed) in zip(fused, rebuilt):
            assert evaluation == evaluate_system_batch(
                system, workload, seed=seed, chunk_size=128
            )

    def test_per_class_counts_match_under_subtlety_classifier(self):
        workload = make_workload(800)
        classifier = SubtletyClassifier()
        (fused,) = fused_evaluations(
            workload, [(make_system(), 9)], 128, classifier=classifier
        )
        reference = evaluate_system_batch(
            make_system(), workload, classifier=classifier, seed=9, chunk_size=128
        )
        assert fused.per_class_false_negative == reference.per_class_false_negative
        assert fused == reference

    def test_pooled_dispatch_returns_identical_rows(self):
        # The same task shipped through runtime.map (workers attach the
        # published plane) yields byte-for-byte the in-process rows.
        workload = make_workload(600)
        classifier = SingleClassClassifier()
        items = [
            build_fused_item(0, make_system(1), 31),
            build_fused_item(1, make_system(2), 32),
        ]
        in_process = run_fused_batch(fused_task(workload, items, 128, classifier))
        with EngineRuntime(workers=2) as runtime:
            arrays, segment = runtime.publish_workload(workload)
            plane = segment if segment is not None else arrays
            task = fused_task(workload, items, 128, classifier, plane=plane)
            (pooled,) = runtime.map(run_fused_batch, [task])
        assert pooled == in_process

    def test_item_order_and_indices_survive_the_round_trip(self):
        workload = make_workload(300)
        pairs = [(make_system(n), 50 + n) for n in range(3)]
        classifier = SingleClassClassifier()
        items = [
            build_fused_item(index * 7, system, seed)
            for index, (system, seed) in enumerate(pairs)
        ]
        rows = run_fused_batch(fused_task(workload, items, 128, classifier))
        assert [row[0] for row in rows] == [0, 7, 14]


class TestBuildFusedItem:
    def test_rejects_non_vectorizable_systems(self):
        class ScalarOnly:
            name = "scalar-only"

        with pytest.raises(SimulationError, match="neither batch nor stream"):
            build_fused_item(0, ScalarOnly(), 1)

    def test_stream_flag_reflects_execution_mode(self):
        assert build_fused_item(0, make_system(), 1)[3] is False
        assert build_fused_item(0, stream_system(), 1)[3] is True
