"""Shared numeric primitives: the kernels both simulation paths sample with."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._numeric import (
    MAX_POISSON_RATE,
    exp,
    log,
    logit,
    poisson_from_uniform,
    sigmoid,
    sqrt,
)


class TestTranscendentalSeam:
    """exp/log/sqrt: the REP002 seam both simulation paths share."""

    def test_scalar_input_returns_float(self):
        for fn, value in ((exp, 0.3), (log, 0.3), (sqrt, 0.3)):
            result = fn(value)
            assert isinstance(result, float)

    def test_array_input_returns_array(self):
        xs = np.linspace(0.1, 3.0, 7)
        for fn in (exp, log, sqrt):
            result = fn(xs)
            assert isinstance(result, np.ndarray)
            assert result.shape == xs.shape

    def test_scalar_and_array_paths_bit_identical(self):
        xs = np.linspace(-30.0, 30.0, 201)
        assert (exp(xs) == np.array([exp(float(x)) for x in xs])).all()
        positives = np.linspace(1e-6, 50.0, 201)
        assert (log(positives) == np.array([log(float(x)) for x in positives])).all()
        assert (
            sqrt(positives) == np.array([sqrt(float(x)) for x in positives])
        ).all()

    def test_seam_matches_numpy_bit_for_bit(self):
        # The seam is a thin wrapper: it must equal np.* exactly, so
        # batch code calling np.exp on arrays and scalar code calling
        # _numeric.exp agree by construction.
        xs = np.linspace(-10.0, 10.0, 101)
        assert (exp(xs) == np.exp(xs)).all()
        ps = np.linspace(0.01, 0.99, 101)
        assert (log(ps) == np.log(ps)).all()
        assert (sqrt(ps) == np.sqrt(ps)).all()

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_exp_agrees_with_math_to_one_ulp(self, x):
        # math.exp and np.exp may differ, but never by more than 1 ulp —
        # this documents why the seam exists (exact equality can fail)
        # while bounding how far apart the two libraries can drift.
        ours = exp(x)
        theirs = math.exp(x)
        assert ours == theirs or math.isclose(ours, theirs, rel_tol=1e-15)

    def test_log_exp_roundtrip(self):
        xs = np.linspace(-20.0, 20.0, 81)
        assert np.allclose(log(exp(xs)), xs, atol=1e-12)


class TestLogitSigmoid:
    @given(st.floats(min_value=1e-9, max_value=1.0 - 1e-9))
    def test_roundtrip(self, p):
        assert sigmoid(logit(p)) == pytest.approx(p, rel=1e-9)

    @given(st.floats(min_value=-700.0, max_value=700.0))
    def test_sigmoid_bounded_and_monotone_branches_agree(self, x):
        value = sigmoid(x)
        assert 0.0 <= value <= 1.0
        # The two-branch form must agree with the naive form where the
        # naive form is stable.
        if abs(x) < 30:
            assert value == pytest.approx(1.0 / (1.0 + math.exp(-x)), rel=1e-12)

    def test_scalar_and_array_paths_bit_identical(self):
        xs = np.linspace(-40.0, 40.0, 101)
        vector = sigmoid(xs)
        scalars = np.array([sigmoid(float(x)) for x in xs])
        assert (vector == scalars).all()
        ps = np.linspace(0.001, 0.999, 101)
        assert (logit(ps) == np.array([logit(float(p)) for p in ps])).all()

    def test_logit_clips_boundaries(self):
        assert math.isfinite(logit(0.0))
        assert math.isfinite(logit(1.0))
        assert logit(0.0) < logit(0.5) < logit(1.0)


class TestPoissonFromUniform:
    @given(
        st.floats(min_value=0.0, max_value=0.999999),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_matches_cdf_inversion(self, u, rate):
        k = poisson_from_uniform(u, rate)
        assert k >= 0
        # k is the smallest count with u < CDF(k).
        cdf = 0.0
        pmf = math.exp(-rate)
        for i in range(k + 1):
            if i > 0:
                pmf *= rate / i
            cdf += pmf
        assert u < cdf or math.isclose(u, cdf)
        if k > 0:
            assert u >= cdf - pmf

    def test_zero_rate_always_zero(self):
        assert poisson_from_uniform(0.999, 0.0) == 0
        assert (poisson_from_uniform(np.array([0.1, 0.9]), 0.0) == 0).all()

    def test_monotone_in_u(self):
        us = np.linspace(0.0, 0.9999, 500)
        counts = poisson_from_uniform(us, 3.0)
        assert (np.diff(counts) >= 0).all()

    def test_scalar_and_array_paths_bit_identical(self):
        rng = np.random.default_rng(0)
        us = rng.random(300)
        rates = rng.random(300) * 8.0
        vector = poisson_from_uniform(us, rates)
        scalars = np.array(
            [poisson_from_uniform(float(u), float(r)) for u, r in zip(us, rates)]
        )
        assert (vector == scalars).all()

    def test_reproduces_poisson_distribution(self):
        # Inversion of uniforms must give exactly Poisson marginals.
        rng = np.random.default_rng(1)
        sample = poisson_from_uniform(rng.random(20000), 2.5)
        assert float(np.mean(sample)) == pytest.approx(2.5, abs=0.05)
        assert float(np.var(sample)) == pytest.approx(2.5, abs=0.1)

    def test_rejects_extreme_rates(self):
        with pytest.raises(ValueError):
            poisson_from_uniform(0.5, MAX_POISSON_RATE * 2)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            poisson_from_uniform(0.5, -1.0)
