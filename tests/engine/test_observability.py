"""Engine-level observability: bit-identity, worker-span merging, and
degradation warnings.

These are the integration halves of the :mod:`repro.obs` contract:

* instrumentation never changes seeded results (on/off bit-identity);
* spans recorded inside worker processes merge back through the result
  channel with their worker pids intact;
* every silent fallback in the runtime now warns
  (:class:`RuntimeDegradationWarning`) exactly once per runtime per
  reason, while its counter records every event.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.core import CaseClass
from repro.engine import EngineRuntime, compare_systems_batch
from repro.engine import runtime as runtime_module
from repro.exceptions import RuntimeDegradationWarning
from repro.obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    get_instrumentation,
    use_instrumentation,
)
from repro.screening import SubtletyClassifier
from tests.engine.test_equivalence import failure_counts
from tests.engine.test_executor import make_system, make_workload
from tests.engine.test_runtime import named_system

SEED = 97
CHUNK = 64  # 500-case workload -> 8 chunks: genuinely multi-chunk


def degradation_warnings(caught):
    return [w for w in caught if issubclass(w.category, RuntimeDegradationWarning)]


class ClassifyOnlyClassifier:
    """A third-party-style classifier: per-case ``classify`` only."""

    _class = CaseClass("all")

    def classify(self, case):
        return self._class

    @property
    def classes(self):
        return (self._class,)


class TestBitIdentity:
    def test_seeded_comparison_identical_with_instrumentation_on_and_off(self):
        workload = make_workload()
        classifier = SubtletyClassifier()
        systems = [named_system(seed=4, name="a"), named_system(seed=9, name="b")]

        with EngineRuntime(workers=2) as runtime:
            plain = compare_systems_batch(
                systems, workload, classifier,
                seed=SEED, chunk_size=CHUNK, runtime=runtime,
            )
        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, obs=obs) as runtime:
            traced = compare_systems_batch(
                systems, workload, classifier,
                seed=SEED, chunk_size=CHUNK, runtime=runtime,
            )

        assert {n: failure_counts(e) for n, e in traced.items()} == {
            n: failure_counts(e) for n, e in plain.items()
        }
        # ... and the traced run actually recorded something.
        assert len(obs.spans) > 0

    def test_serial_runtime_identical_with_instrumentation_on_and_off(self):
        workload = make_workload()
        system = make_system()
        with EngineRuntime(workers=1) as runtime:
            plain = runtime.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
        with EngineRuntime(workers=1, obs=Instrumentation()) as runtime:
            traced = runtime.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
        assert failure_counts(traced) == failure_counts(plain)


class TestWorkerSpanMerging:
    def test_chunk_spans_come_back_from_worker_processes(self):
        obs = Instrumentation()
        with EngineRuntime(workers=2, obs=obs) as runtime:
            runtime.evaluate(make_system(), make_workload(), seed=SEED, chunk_size=CHUNK)
            shm = runtime.uses_shared_memory
        chunk_spans = [r for r in obs.spans.records() if r.name == "runtime.chunk"]
        assert len(chunk_spans) == 8
        # Chunk work ran on the pool, so its spans carry worker pids.
        assert all(record.pid != os.getpid() for record in chunk_spans)
        # Every chunk also lands in the wall-time histogram.
        snapshot = obs.metrics.snapshot()
        assert snapshot["histograms"]["runtime.chunk.wall_s"]["count"] == 8
        if shm:
            attach_spans = [
                r for r in obs.spans.records() if r.name == "runtime.attach"
            ]
            assert 1 <= len(attach_spans) <= 2  # once per attaching worker
            assert snapshot["counters"]["runtime.shm.bytes_attached"] > 0
            assert snapshot["counters"]["runtime.shm.bytes_published"] > 0

    def test_parent_spans_describe_the_evaluation(self):
        obs = Instrumentation()
        with EngineRuntime(workers=2, obs=obs) as runtime:
            runtime.evaluate(make_system(), make_workload(), seed=SEED, chunk_size=CHUNK)
        by_name = {r.name: r for r in obs.spans.records()}
        evaluate = by_name["runtime.evaluate"]
        assert evaluate.pid == os.getpid()
        assert evaluate.attrs["cases"] == 500
        assert evaluate.attrs["chunks"] == 8
        assert evaluate.attrs["chunk_size"] == CHUNK
        assert "runtime.tally" in by_name
        assert "runtime.pool_launch" in by_name

    def test_cache_counters_record_hits_and_misses(self):
        obs = Instrumentation()
        workload = make_workload()
        classifier = SubtletyClassifier()
        with EngineRuntime(workers=1, obs=obs) as runtime:
            runtime.evaluate(make_system(), workload, classifier, seed=SEED)
            runtime.evaluate(make_system(), workload, classifier, seed=SEED)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.workload_cache.miss"] == 1.0
        assert counters["runtime.workload_cache.hit"] == 1.0
        assert counters["runtime.label_cache.miss"] == 1.0
        assert counters["runtime.label_cache.hit"] == 1.0


class TestAmbientResolution:
    def test_runtime_defaults_to_null_instrumentation(self):
        with EngineRuntime(workers=1) as runtime:
            assert runtime.obs is NULL_INSTRUMENTATION
            assert not runtime.obs.enabled

    def test_runtime_picks_up_ambient_instrumentation(self):
        obs = Instrumentation()
        with use_instrumentation(obs):
            with EngineRuntime(workers=1) as runtime:
                assert runtime.obs is obs
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_explicit_obs_wins_over_ambient(self):
        ambient, explicit = Instrumentation(), Instrumentation()
        with use_instrumentation(ambient):
            with EngineRuntime(workers=1, obs=explicit) as runtime:
                assert runtime.obs is explicit


class TestDegradationWarnings:
    def test_no_shm_warns_once_at_construction(self, monkeypatch):
        monkeypatch.setattr(runtime_module, "shared_memory_available", lambda: False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obs = Instrumentation()
            with EngineRuntime(workers=2, obs=obs) as runtime:
                assert not runtime.uses_shared_memory
                assert runtime.degradations == frozenset({"no_shm"})
        (warning,) = degradation_warnings(caught)
        assert "no_shm" in str(warning.message)
        assert obs.metrics.snapshot()["counters"]["runtime.degraded.no_shm"] == 1.0

    def test_serial_runtime_does_not_warn_about_shm(self, monkeypatch):
        monkeypatch.setattr(runtime_module, "shared_memory_available", lambda: False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with EngineRuntime(workers=1):
                pass
        assert degradation_warnings(caught) == []

    def test_unpicklable_system_warns_once_per_runtime(self):
        workload = make_workload()
        system = make_system()
        system.marker = lambda: None  # closures cannot be pickled
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obs = Instrumentation()
            with EngineRuntime(workers=2, obs=obs) as runtime:
                first = runtime.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
                second = runtime.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
                assert runtime.degradations == frozenset({"unpicklable_system"})
        (warning,) = degradation_warnings(caught)  # once, not once per call
        assert "unpicklable_system" in str(warning.message)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.degraded.unpicklable_system"] == 2.0
        # The in-process fallback is still bit-identical to the serial path.
        assert failure_counts(first) == failure_counts(second)

    def test_scalar_classify_fallback_warns_once_per_runtime(self):
        workload = make_workload()
        classifier = ClassifyOnlyClassifier()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obs = Instrumentation()
            with EngineRuntime(workers=1, obs=obs) as runtime:
                runtime.evaluate(make_system(), workload, classifier, seed=SEED)
                runtime.evaluate(make_system(), workload, classifier, seed=SEED)
        (warning,) = degradation_warnings(caught)  # label cache: one fallback
        assert "scalar_classify" in str(warning.message)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.degraded.scalar_classify"] == 1.0

    def test_temporal_readers_run_stream_with_zero_degradations(self):
        """The tentpole regression: adaptation/bias/fatigue workloads no
        longer fire ``unpicklable_system``/``scalar_classify`` (or any
        other degradation) — they run vectorized on the stream path."""
        from tests.engine.test_stateful_equivalence import SYSTEM_FACTORIES

        workload = make_workload()
        classifier = SubtletyClassifier()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obs = Instrumentation()
            with EngineRuntime(workers=2, obs=obs) as runtime:
                for factory in SYSTEM_FACTORIES.values():
                    runtime.evaluate(
                        factory(), workload, classifier, seed=SEED, chunk_size=CHUNK
                    )
                assert runtime.degradations == frozenset()
        assert degradation_warnings(caught) == []
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("runtime.degraded.unpicklable_system", 0.0) == 0.0
        assert counters.get("runtime.degraded.scalar_classify", 0.0) == 0.0
        assert counters.get("runtime.degraded.scalar_system", 0.0) == 0.0
        # The stream genuinely ran chunked (one span per chunk, pooled).
        chunk_spans = [r for r in obs.spans.records() if r.name == "runtime.chunk"]
        assert len(chunk_spans) == 8 * len(SYSTEM_FACTORIES)
        assert all(record.pid != os.getpid() for record in chunk_spans)

    def test_genuinely_unvectorizable_system_still_degrades(self):
        """A custom scalar-only reader keeps the scalar fallback — and now
        says so via ``runtime.degraded.scalar_system``."""
        from tests.engine.test_stateful_equivalence import SEED as TEQ_SEED
        from repro.reader import MILD_BIAS, ReaderModel
        from repro.system import UnaidedReading

        class ScalarOnlyReader:
            """Stateful in a way the carry protocol does not model."""

            name = "scalar-only"

            def __init__(self):
                self._inner = ReaderModel(bias=MILD_BIAS, name="inner", seed=TEQ_SEED)
                self.mood = 0.0  # arbitrary untracked state

            def decide(self, case, cadt_output=None, rng=None):
                self.mood += 1.0
                return self._inner.decide(case, cadt_output, rng)

        workload = make_workload()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obs = Instrumentation()
            with EngineRuntime(workers=2, obs=obs) as runtime:
                runtime.evaluate(
                    UnaidedReading(ScalarOnlyReader()), workload, seed=SEED
                )
                assert runtime.degradations == frozenset({"scalar_system"})
        (warning,) = degradation_warnings(caught)
        assert "scalar_system" in str(warning.message)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.degraded.scalar_system"] == 1.0

    def test_unpicklable_stream_state_falls_back_to_serial_stream(self):
        """An unpicklable temporal system still runs *vectorized* — the
        degradation only moves the stream in-process."""
        from tests.engine.test_stateful_equivalence import (
            make_fatigued_system,
            reader_state,
        )

        workload = make_workload()
        reference = make_fatigued_system()
        with EngineRuntime(workers=1) as runtime:
            expected = runtime.evaluate(reference, workload, seed=SEED, chunk_size=CHUNK)
        system = make_fatigued_system()
        system.marker = lambda: None  # closures cannot be pickled
        with pytest.warns(RuntimeDegradationWarning, match="unpicklable_system"):
            obs = Instrumentation()
            with EngineRuntime(workers=2, obs=obs) as runtime:
                degraded = runtime.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
        assert failure_counts(degraded) == failure_counts(expected)
        assert reader_state(system) == reader_state(reference)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.degraded.unpicklable_system"] == 1.0

    def test_broken_pool_warns_and_recovers_in_process(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        class ExplodingPool:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("injected")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        workload = make_workload()
        system = make_system()
        obs = Instrumentation()
        with EngineRuntime(workers=2, obs=obs) as runtime:
            reference = EngineRuntime(workers=1)
            expected = reference.evaluate(system, workload, seed=SEED, chunk_size=CHUNK)
            reference.close()
            monkeypatch.setattr(
                runtime, "_ensure_pool", lambda: ExplodingPool()
            )
            with pytest.warns(RuntimeDegradationWarning, match="broken_pool"):
                recovered = runtime.evaluate(
                    system, workload, seed=SEED, chunk_size=CHUNK
                )
        assert failure_counts(recovered) == failure_counts(expected)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["runtime.degraded.broken_pool"] == 1.0
