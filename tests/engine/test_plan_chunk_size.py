"""Edge cases for adaptive chunk planning and degenerate chunk shapes.

Complements ``tests/engine/test_runtime.py::TestPlanChunkSize`` (the
budget/fair-share interplay) with the boundary shapes: empty and
single-case workloads, a requested chunk bigger than the workload, and
more workers than chunks.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineRuntime, evaluate_system_batch, plan_chunk_size
from repro.engine.executor import plan_chunks
from repro.engine.runtime import MIN_CHUNK_SIZE, _group_jobs
from repro.exceptions import SimulationError
from tests.engine.test_equivalence import failure_counts
from tests.engine.test_executor import make_system, make_workload


class TestPlanChunkSizeEdges:
    def test_zero_cases_returns_the_floor(self):
        assert plan_chunk_size(0, 1) == MIN_CHUNK_SIZE
        assert plan_chunk_size(0, 16) == MIN_CHUNK_SIZE

    def test_negative_cases_treated_as_empty(self):
        assert plan_chunk_size(-5, 2) == MIN_CHUNK_SIZE

    def test_zero_cases_with_tiny_floor_still_positive(self):
        assert plan_chunk_size(0, 2, min_chunk_size=0) == 1

    def test_single_case_workload_plans_one_case_chunks(self):
        assert plan_chunk_size(1, 1) == 1
        assert plan_chunk_size(1, 64) == 1

    def test_workers_far_exceeding_cases_cap_at_workload(self):
        # Fair share would be sub-1-case chunks; the plan caps at n.
        assert plan_chunk_size(10, 64) == 10

    def test_plan_never_exceeds_workload(self):
        for n in (1, 2, 1023, 1024, 1025, 10_000):
            for workers in (1, 2, 7, 64):
                size = plan_chunk_size(n, workers)
                assert 1 <= size <= n

    def test_custom_floor_and_chunks_per_worker(self):
        # 8 workers x 2 chunks each over 1600 cases -> 100-case fair
        # share, kept (floor lowered below it).
        assert (
            plan_chunk_size(
                1600, 8, min_chunk_size=10, chunks_per_worker=2,
                bytes_per_case=1, target_chunk_bytes=1 << 20,
            )
            == 100
        )

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(SimulationError):
            plan_chunk_size(100, 0)
        with pytest.raises(SimulationError):
            plan_chunk_size(100, -2)


class TestDegenerateChunkShapes:
    def test_chunk_size_larger_than_workload_is_one_chunk(self):
        assert plan_chunks(10, 100) == [(0, 10)]

    def test_evaluation_with_oversized_chunk_matches_exact_fit(self):
        workload = make_workload(200)
        exact = evaluate_system_batch(
            make_system(), workload, seed=5, chunk_size=200
        )
        oversized = evaluate_system_batch(
            make_system(), workload, seed=5, chunk_size=10_000
        )
        # Both plans collapse to the single chunk [0, 200): same single
        # seeded generator, bit-identical tallies.
        assert failure_counts(oversized) == failure_counts(exact)

    def test_more_workers_than_chunks(self):
        workload = make_workload(300)
        serial = evaluate_system_batch(
            make_system(), workload, seed=5, chunk_size=100
        )
        with EngineRuntime(workers=8) as runtime:  # 3 chunks, 8 workers
            pooled = evaluate_system_batch(
                make_system(), workload, seed=5, chunk_size=100, runtime=runtime
            )
        assert failure_counts(pooled) == failure_counts(serial)

    def test_group_jobs_never_returns_empty_groups(self):
        jobs = [(0, 1, None), (1, 2, None)]
        groups = _group_jobs(jobs, 8)
        assert groups == [[(0, 1, None)], [(1, 2, None)]]
        assert _group_jobs(jobs, 1) == [jobs]
