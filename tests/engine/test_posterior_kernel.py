"""Tests for repro.engine.posterior (the array-backed parameter-table kernel)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_TRIAL_PROFILE,
    CaseClass,
    ClassParameters,
    DemandProfile,
    SequentialModel,
    UncertainModel,
    paper_example_parameters,
)
from repro.engine import (
    PARAMETER_FIELDS,
    ParameterTable,
    sample_parameter_table,
    scenario_win_probability,
)
from repro.exceptions import EstimationError, ParameterError, ProbabilityError


@pytest.fixture
def paper_table():
    return ParameterTable.from_model_parameters(paper_example_parameters(), num_rows=4)


class TestConstruction:
    def test_from_model_parameters_broadcasts(self, paper_table):
        assert paper_table.num_rows == 4
        assert paper_table.num_classes == 2
        assert len(paper_table) == 4
        for name in PARAMETER_FIELDS:
            values = getattr(paper_table, name)
            assert values.shape == (4, 2)
            assert values.dtype == np.float64
            # every row is the broadcast of the same scalar table
            assert np.array_equal(values, np.tile(values[0], (4, 1)))

    def test_classes_are_sorted(self, paper_table):
        assert paper_table.classes == tuple(sorted(paper_table.classes))
        assert paper_table.class_index("difficult") == 0
        assert paper_table.class_index("easy") == 1

    def test_unknown_class_index(self, paper_table):
        with pytest.raises(ParameterError):
            paper_table.class_index("venus")

    def test_rejects_bad_shapes(self):
        good = np.zeros((3, 1))
        with pytest.raises(ParameterError):
            ParameterTable(
                classes=(CaseClass("only"),),
                p_machine_failure=np.zeros(3),  # 1-D
                p_human_failure_given_machine_failure=good,
                p_human_failure_given_machine_success=good,
            )
        with pytest.raises(ParameterError):
            ParameterTable(
                classes=(CaseClass("only"),),
                p_machine_failure=np.zeros((2, 1)),  # mismatched rows
                p_human_failure_given_machine_failure=good,
                p_human_failure_given_machine_success=good,
            )

    def test_rejects_unsorted_or_duplicate_classes(self):
        values = np.zeros((1, 2))
        with pytest.raises(ParameterError):
            ParameterTable(
                classes=(CaseClass("easy"), CaseClass("difficult")),  # unsorted
                p_machine_failure=values,
                p_human_failure_given_machine_failure=values,
                p_human_failure_given_machine_success=values,
            )
        with pytest.raises(ParameterError):
            ParameterTable(
                classes=(CaseClass("easy"), CaseClass("easy")),
                p_machine_failure=values,
                p_human_failure_given_machine_failure=values,
                p_human_failure_given_machine_success=values,
            )

    def test_rejects_column_count_mismatch(self):
        values = np.zeros((1, 3))
        with pytest.raises(ParameterError):
            ParameterTable(
                classes=(CaseClass("a"), CaseClass("b")),
                p_machine_failure=values,
                p_human_failure_given_machine_failure=values,
                p_human_failure_given_machine_success=values,
            )

    def test_bad_num_rows(self):
        with pytest.raises(ParameterError):
            ParameterTable.from_model_parameters(paper_example_parameters(), num_rows=0)


class TestRowMaterialisation:
    def test_row_roundtrips_the_scalar_table(self, paper_table):
        parameters = paper_example_parameters()
        for i in range(paper_table.num_rows):
            row = paper_table.row(i)
            assert row == parameters

    def test_row_out_of_range(self, paper_table):
        with pytest.raises(ParameterError):
            paper_table.row(4)
        with pytest.raises(ParameterError):
            paper_table.row(-1)


class TestTransforms:
    def test_machine_improved_scalar_factor(self, paper_table):
        improved = paper_table.with_machine_improved(10.0, ["difficult"])
        j = paper_table.class_index("difficult")
        assert np.array_equal(
            improved.p_machine_failure[:, j], paper_table.p_machine_failure[:, j] / 10.0
        )
        k = paper_table.class_index("easy")
        assert np.array_equal(
            improved.p_machine_failure[:, k], paper_table.p_machine_failure[:, k]
        )

    def test_machine_improved_per_row_factors(self, paper_table):
        factors = np.array([1.0, 2.0, 4.0, 8.0])
        improved = paper_table.with_machine_improved(factors)
        assert np.array_equal(
            improved.p_machine_failure,
            paper_table.p_machine_failure / factors[:, np.newaxis],
        )

    def test_machine_improved_matches_scalar_transform(self, paper_table):
        improved = paper_table.with_machine_improved(3.0)
        scalar = paper_example_parameters().with_machine_improved(3.0)
        assert improved.row(0) == scalar

    def test_machine_improved_rejects_unknown_class(self, paper_table):
        with pytest.raises(ParameterError, match="cannot improve unknown classes"):
            paper_table.with_machine_improved(10.0, ["venus"])

    def test_machine_improved_rejects_bad_factors(self, paper_table):
        with pytest.raises(ProbabilityError):
            paper_table.with_machine_improved(np.array([1.0, -1.0, 1.0, 1.0]))
        with pytest.raises(ParameterError):
            paper_table.with_machine_improved(np.array([1.0, 2.0]))  # wrong shape
        # a factor below one worsens the machine; leaving [0, 1] raises
        with pytest.raises(ProbabilityError):
            paper_table.with_machine_improved(1e-3)

    def test_with_machine_failure(self, paper_table):
        changed = paper_table.with_machine_failure("easy", 0.5)
        j = paper_table.class_index("easy")
        assert np.all(changed.p_machine_failure[:, j] == 0.5)
        scalar = paper_example_parameters()
        assert changed.row(0) == scalar.with_class(
            "easy", scalar["easy"].with_machine_failure(0.5)
        )

    def test_with_reader_shift(self, paper_table):
        shifted = paper_table.with_reader_shift("difficult", 0.05, -0.1)
        scalar = paper_example_parameters()
        assert shifted.row(0) == scalar.with_class(
            "difficult", scalar["difficult"].with_reader_shift(0.05, -0.1)
        )

    def test_with_reader_shift_validates(self, paper_table):
        with pytest.raises(ProbabilityError):
            paper_table.with_reader_shift("difficult", 0.5)  # 0.9 + 0.5 > 1

    def test_with_class_parameters_replaces(self, paper_table):
        triple = ClassParameters(0.1, 0.2, 0.3)
        replaced = paper_table.with_class_parameters("easy", triple)
        assert replaced.classes == paper_table.classes
        assert replaced.row(0) == paper_example_parameters().with_class("easy", triple)

    def test_with_class_parameters_inserts_sorted(self, paper_table):
        triple = ClassParameters(0.1, 0.2, 0.3)
        extended = paper_table.with_class_parameters("average", triple)
        assert extended.num_classes == 3
        assert extended.classes == tuple(sorted(extended.classes))
        assert extended.row(0) == paper_example_parameters().with_class("average", triple)

    def test_transforms_do_not_mutate(self, paper_table):
        before = paper_table.p_machine_failure.copy()
        paper_table.with_machine_improved(10.0)
        paper_table.with_machine_failure("easy", 0.5)
        paper_table.with_reader_shift("easy", 0.01)
        assert np.array_equal(paper_table.p_machine_failure, before)


class TestEvaluation:
    def test_matches_sequential_model(self, paper_table):
        model = SequentialModel(paper_example_parameters())
        expected = model.system_failure_probability(PAPER_TRIAL_PROFILE)
        values = paper_table.system_failure_probability(PAPER_TRIAL_PROFILE)
        assert values.shape == (4,)
        assert np.all(values == expected)

    def test_missing_class_raises(self, paper_table):
        profile = DemandProfile({"easy": 0.5, "venus": 0.5})
        with pytest.raises(ParameterError, match="without parameters"):
            paper_table.system_failure_probability(profile)

    def test_zero_weight_classes_are_skipped(self):
        # A profile whose support omits a class the table has.
        table = ParameterTable.from_model_parameters(paper_example_parameters())
        profile = DemandProfile({"easy": 1.0})
        expected = SequentialModel(
            paper_example_parameters()
        ).system_failure_probability(profile)
        assert table.system_failure_probability(profile)[0] == expected


class TestSampling:
    def test_param_major_layout(self):
        """The documented randomness contract: column draws in class-major,

        then PARAMETER_FIELDS order, one batched beta call each."""
        model = UncertainModel.from_point(paper_example_parameters())
        table = sample_parameter_table(model, 16, seed=99)
        rng = np.random.default_rng(99)
        for j, cls in enumerate(table.classes):
            entry = model[cls]
            for name in PARAMETER_FIELDS:
                posterior = getattr(entry, name)
                expected = rng.beta(posterior.alpha, posterior.beta, size=16)
                assert np.array_equal(getattr(table, name)[:, j], expected)

    def test_same_seed_same_table(self):
        model = UncertainModel.from_point(paper_example_parameters())
        first = sample_parameter_table(model, 8, seed=5)
        second = sample_parameter_table(model, 8, seed=5)
        for name in PARAMETER_FIELDS:
            assert np.array_equal(getattr(first, name), getattr(second, name))

    def test_bad_draw_count(self):
        model = UncertainModel.from_point(paper_example_parameters())
        with pytest.raises(EstimationError):
            sample_parameter_table(model, 0)


class TestWinProbability:
    def test_strict_wins(self):
        first = np.array([0.1, 0.2, 0.3])
        second = np.array([0.2, 0.3, 0.4])
        assert scenario_win_probability(first, second) == 1.0
        assert scenario_win_probability(second, first) == 0.0

    def test_ties_count_half(self):
        first = np.array([0.1, 0.2, 0.3, 0.4])
        second = np.array([0.1, 0.2, 0.5, 0.3])
        # one strict win, two exact ties -> (1 + 0.5 * 2) / 4
        assert scenario_win_probability(first, second) == 0.5

    def test_tables_need_a_profile(self):
        table = ParameterTable.from_model_parameters(paper_example_parameters())
        with pytest.raises(EstimationError):
            scenario_win_probability(table, table)

    def test_tables_with_profile(self):
        table = ParameterTable.from_model_parameters(paper_example_parameters())
        assert scenario_win_probability(table, table, PAPER_TRIAL_PROFILE) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(EstimationError):
            scenario_win_probability(np.zeros(3), np.zeros(4))
