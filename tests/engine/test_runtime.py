"""EngineRuntime: pooled workers, shared-memory plane, caches, planning."""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.cadt import Cadt
from repro.engine import (
    EngineRuntime,
    compare_systems_batch,
    evaluate_system_batch,
    plan_chunk_size,
    shared_memory_available,
)
from repro.engine import runtime as runtime_module
from repro.exceptions import SimulationError
from repro.reader import MILD_BIAS, ReaderModel, ReaderSkill
from repro.screening import SubtletyClassifier

from tests.engine.test_equivalence import failure_counts
from tests.engine.test_executor import make_system, make_workload
from repro.system import AssistedReading


def named_system(seed=4, name=None):
    reader = ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=seed)
    return AssistedReading(reader, Cadt(seed=seed + 1000), name=name)


class FailingBatchSystem:
    """Picklable stateless system whose decide_batch always raises."""

    name = "failing"
    supports_batch = True

    def decide_batch(self, chunk, rng=None):
        raise ValueError("injected decide_batch failure")


class TestPlanChunkSize:
    def test_byte_budget_caps_the_chunk(self):
        # 1 MiB budget / 64 B per case = 16384 cases; plenty of cases
        # and one worker, so the budget is the binding constraint.
        assert plan_chunk_size(10_000_000, 1, bytes_per_case=64) == 16384

    def test_fair_share_splits_small_workloads(self):
        # 100k cases over 4 workers x 4 chunks each -> 6250 per chunk.
        assert plan_chunk_size(100_000, 4, bytes_per_case=58) == 6250

    def test_floor_at_min_chunk_size(self):
        assert plan_chunk_size(5000, 4, bytes_per_case=58) == 1024

    def test_capped_at_workload(self):
        assert plan_chunk_size(10, 1, bytes_per_case=58) == 10

    def test_empty_workload_gets_the_floor(self):
        assert plan_chunk_size(0, 2) == 1024

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(SimulationError):
            plan_chunk_size(100, 0)

    def test_pure_function_of_arguments(self):
        a = plan_chunk_size(123_457, 3, bytes_per_case=58)
        b = plan_chunk_size(123_457, 3, bytes_per_case=58)
        assert a == b


class TestDeterminism:
    def test_seeded_bit_identical_across_worker_counts(self):
        workload = make_workload(3000)
        reference = evaluate_system_batch(
            make_system(), workload, seed=11, chunk_size=512
        )
        for workers in (1, 2, 4):
            with EngineRuntime(workers=workers) as runtime:
                evaluation = evaluate_system_batch(
                    make_system(),
                    workload,
                    seed=11,
                    chunk_size=512,
                    runtime=runtime,
                )
            assert failure_counts(evaluation) == failure_counts(reference)

    def test_unseeded_runtime_matches_serial_batch(self):
        workload = make_workload(800)
        serial = evaluate_system_batch(make_system(), workload, seed=None)
        with EngineRuntime(workers=2) as runtime:
            pooled = evaluate_system_batch(
                make_system(), workload, seed=None, runtime=runtime
            )
        assert failure_counts(pooled) == failure_counts(serial)

    def test_fallback_path_matches_shared_memory_path(self):
        workload = make_workload(2500)
        with EngineRuntime(workers=2, use_shared_memory=False) as no_shm:
            assert not no_shm.uses_shared_memory
            pickled = evaluate_system_batch(
                make_system(), workload, seed=7, chunk_size=500, runtime=no_shm
            )
            assert no_shm.active_segments == ()
        with EngineRuntime(workers=2) as with_shm:
            shared = evaluate_system_batch(
                make_system(), workload, seed=7, chunk_size=500, runtime=with_shm
            )
        assert failure_counts(pickled) == failure_counts(shared)

    def test_classifier_breakdown_identical_through_runtime(self):
        workload = make_workload(1500)
        classifier = SubtletyClassifier()
        reference = evaluate_system_batch(
            make_system(), workload, classifier, seed=3, chunk_size=300
        )
        with EngineRuntime(workers=2) as runtime:
            pooled = evaluate_system_batch(
                make_system(),
                workload,
                classifier,
                seed=3,
                chunk_size=300,
                runtime=runtime,
            )
        assert failure_counts(pooled) == failure_counts(reference)


class TestPoolReuse:
    def test_one_pool_across_many_calls(self):
        workload = make_workload(2500)
        with EngineRuntime(workers=2) as runtime:
            for seed in (1, 2, 3):
                runtime.evaluate(make_system(), workload, seed=seed, chunk_size=500)
            assert runtime.pool_launches == 1

    def test_compare_systems_batch_uses_one_pool(self, monkeypatch):
        launches = []
        real_pool = runtime_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            launches.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(runtime_module, "ProcessPoolExecutor", counting_pool)
        workload = make_workload(2500)
        results = compare_systems_batch(
            [named_system(1, "a"), named_system(2, "b"), named_system(3, "c")],
            workload,
            seed=11,
            chunk_size=500,
            workers=2,
        )
        assert set(results) == {"a", "b", "c"}
        assert len(launches) == 1

    def test_workload_cached_across_calls(self):
        workload = make_workload(1200)
        with EngineRuntime(workers=2) as runtime:
            runtime.evaluate(make_system(), workload, seed=1, chunk_size=400)
            runtime.evaluate(make_system(), workload, seed=2, chunk_size=400)
            info = runtime.cache_info()
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_equal_workloads_share_one_cache_entry(self):
        # Two distinct Workload instances with identical cases digest to
        # the same key, so the second columnisation is a cache hit.
        first = make_workload(600, seed=21)
        second = make_workload(600, seed=21)
        with EngineRuntime(workers=2) as runtime:
            runtime.evaluate(make_system(), first, seed=1, chunk_size=200)
            runtime.evaluate(make_system(), second, seed=1, chunk_size=200)
            assert runtime.cache_info()["workloads"] == 1


@pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory in this environment"
)
class TestSegmentLifecycle:
    def test_segments_cleaned_up_on_close(self):
        workload = make_workload(2500)
        runtime = EngineRuntime(workers=2)
        try:
            runtime.evaluate(make_system(), workload, seed=5, chunk_size=500)
            names = runtime.active_segments
            assert names  # the workload was published
        finally:
            runtime.close()
        assert runtime.active_segments == ()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segments_cleaned_up_after_worker_exception(self):
        workload = make_workload(2500)
        runtime = EngineRuntime(workers=2)
        try:
            with pytest.raises(ValueError, match="injected"):
                runtime.evaluate(
                    FailingBatchSystem(), workload, seed=5, chunk_size=500
                )
            names = runtime.active_segments
            # The pool survives the worker exception and stays reusable.
            evaluation = runtime.evaluate(
                make_system(), workload, seed=5, chunk_size=500
            )
            assert evaluation.false_negative is not None
        finally:
            runtime.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_final(self):
        runtime = EngineRuntime(workers=1)
        runtime.close()
        runtime.close()
        assert runtime.closed
        with pytest.raises(SimulationError):
            runtime.evaluate(make_system(), make_workload(50), seed=1)


class TestRuntimeApi:
    def test_compare_shares_everything(self):
        workload = make_workload(2500)
        with EngineRuntime(workers=2) as runtime:
            pooled = runtime.compare(
                [named_system(1, "a"), named_system(2, "b")],
                workload,
                seed=11,
                chunk_size=500,
            )
            assert runtime.pool_launches == 1
            assert runtime.cache_info()["workloads"] == 1
        serial = compare_systems_batch(
            [named_system(1, "a"), named_system(2, "b")],
            workload,
            seed=11,
            chunk_size=500,
        )
        assert {k: failure_counts(v) for k, v in pooled.items()} == {
            k: failure_counts(v) for k, v in serial.items()
        }

    def test_compare_rejects_duplicate_names(self):
        with EngineRuntime(workers=1) as runtime:
            with pytest.raises(SimulationError):
                runtime.compare(
                    [named_system(1, "same"), named_system(2, "same")],
                    make_workload(100),
                    seed=1,
                )

    def test_map_preserves_order(self):
        with EngineRuntime(workers=2) as runtime:
            assert runtime.map(abs, [-3, 1, -2]) == [3, 1, 2]

    def test_map_falls_back_for_unpicklable_functions(self):
        with EngineRuntime(workers=2) as runtime:
            doubled = runtime.map(lambda x: 2 * x, [1, 2, 3])
        assert doubled == [2, 4, 6]

    def test_map_empty(self):
        with EngineRuntime(workers=2) as runtime:
            assert runtime.map(abs, []) == []

    def test_adaptive_chunking_is_deterministic_per_runtime(self):
        workload = make_workload(3000)
        with EngineRuntime(workers=2) as runtime:
            first = runtime.evaluate(
                make_system(), workload, seed=11, chunk_size=None
            )
            second = runtime.evaluate(
                make_system(), workload, seed=11, chunk_size=None
            )
        assert failure_counts(first) == failure_counts(second)

    def test_temporal_reader_runs_on_stream_path(self):
        # A fatigued reader now takes the ordered stream-carry path
        # through the runtime — no degradation — and counts every case.
        from repro.system import UnaidedReading
        from repro.reader import FatiguedReader

        reader = FatiguedReader(
            ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=2),
            seed=2,
        )
        workload = make_workload(200)
        with EngineRuntime(workers=2) as runtime:
            evaluation = runtime.evaluate(
                UnaidedReading(reader), workload, seed=3
            )
            assert runtime.degradations == frozenset()
        total = (
            evaluation.false_negative.trials + evaluation.false_positive.trials
        )
        assert total == len(workload)

    def test_drifting_system_falls_back_to_scalar(self):
        # A drifting CADT is stateful in a way the reader-state carry
        # does not model: it routes to the scalar loop (and says so).
        import warnings

        from repro.cadt import Cadt
        from repro.system import AssistedReading

        reader = ReaderModel(skill=ReaderSkill(), bias=MILD_BIAS, name="r", seed=2)
        system = AssistedReading(reader, Cadt(drift_per_case=1e-5, seed=4))
        workload = make_workload(200)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with EngineRuntime(workers=2) as runtime:
                evaluation = runtime.evaluate(system, workload, seed=3)
                assert runtime.degradations == frozenset({"scalar_system"})
        total = (
            evaluation.false_negative.trials + evaluation.false_positive.trials
        )
        assert total == len(workload)

    def test_rejects_bad_construction(self):
        with pytest.raises(SimulationError):
            EngineRuntime(workers=0)
        with pytest.raises(SimulationError):
            EngineRuntime(max_cached_workloads=0)

    def test_lru_eviction_unlinks_segments(self):
        runtime = EngineRuntime(workers=2, max_cached_workloads=1)
        try:
            first = make_workload(1500, seed=1)
            second = make_workload(1500, seed=2)
            runtime.evaluate(make_system(), first, seed=5, chunk_size=300)
            evicted = runtime.active_segments
            runtime.evaluate(make_system(), second, seed=5, chunk_size=300)
            assert runtime.cache_info()["workloads"] == 1
            if shared_memory_available():
                for name in evicted:
                    with pytest.raises(FileNotFoundError):
                        shared_memory.SharedMemory(name=name)
        finally:
            runtime.close()


class TestRoutedConsumers:
    def test_credible_intervals_identical_with_runtime(self):
        from repro.core import (
            BetaPosterior,
            ExtrapolationStudy,
            UncertainClassParameters,
            UncertainModel,
        )
        from repro.core.profile import DemandProfile

        uncertain = UncertainModel(
            {
                "easy": UncertainClassParameters(
                    BetaPosterior.from_counts(2, 100),
                    BetaPosterior.from_counts(30, 100),
                    BetaPosterior.from_counts(1, 100),
                ),
                "difficult": UncertainClassParameters(
                    BetaPosterior.from_counts(20, 100),
                    BetaPosterior.from_counts(40, 100),
                    BetaPosterior.from_counts(5, 100),
                ),
            }
        )
        study = ExtrapolationStudy(
            uncertain.mean_model().parameters,
            {"field": DemandProfile({"easy": 0.9, "difficult": 0.1})},
        )
        serial = study.credible_intervals(uncertain, num_draws=500, seed=4)
        with EngineRuntime(workers=2) as runtime:
            pooled = study.credible_intervals(
                uncertain, num_draws=500, seed=4, runtime=runtime
            )
        assert serial == pooled

    def test_sweep_identical_with_runtime(self):
        from repro.core import sweep_machine_settings
        from repro.core.parameters import ClassParameters, ModelParameters
        from repro.core.profile import DemandProfile
        from repro.core.sequential import SequentialModel
        from repro.core.tradeoff import TwoSidedModel

        model = TwoSidedModel(
            SequentialModel(
                ModelParameters(
                    {
                        "subtle": ClassParameters(0.4, 0.8, 0.3),
                        "obvious": ClassParameters(0.05, 0.2, 0.05),
                    }
                )
            ),
            SequentialModel(
                ModelParameters(
                    {
                        "busy_film": ClassParameters(0.5, 0.3, 0.15),
                        "clean_film": ClassParameters(0.1, 0.1, 0.03),
                    }
                )
            ),
            cancer_profile=DemandProfile({"subtle": 0.3, "obvious": 0.7}),
            healthy_profile=DemandProfile({"busy_film": 0.4, "clean_film": 0.6}),
        )
        settings = {f"s{i}": (0.5 + 0.25 * i, 2.0 - 0.2 * i) for i in range(7)}
        serial = sweep_machine_settings(model, settings)
        with EngineRuntime(workers=2) as runtime:
            pooled = sweep_machine_settings(model, settings, runtime=runtime)
        assert serial.points == pooled.points


class TestShmByteBudget:
    """LRU segment eviction under the shm_byte_budget cap."""

    def test_rejects_bad_budget(self):
        with pytest.raises(SimulationError, match="shm_byte_budget"):
            EngineRuntime(shm_byte_budget=0)

    def test_no_budget_keeps_every_segment(self):
        from repro.obs import Instrumentation

        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            runtime.publish_workload(make_workload(800, seed=1))
            runtime.publish_workload(make_workload(800, seed=2))
            assert len(runtime.active_segments) == 2
            assert runtime.shm_bytes_live > 0
        assert obs.metrics.counter("runtime.shm.evicted").value == 0

    def test_budget_evicts_lru_segment_and_counts(self):
        from repro.obs import Instrumentation

        obs = Instrumentation(name="test")
        # A 1-byte budget forces every publication to evict everything
        # except the segment just published (which is never evicted).
        with EngineRuntime(workers=2, shm_byte_budget=1, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            runtime.publish_workload(make_workload(800, seed=1))
            first = runtime.active_segments
            assert len(first) == 1
            runtime.publish_workload(make_workload(800, seed=2))
            assert obs.metrics.counter("runtime.shm.evicted").value == 1
            # Only the fresh segment is live; the evicted name is gone.
            assert len(runtime.active_segments) == 1
            assert runtime.active_segments != first
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first[0])
            # The evicted workload's arrays stay cached: only the
            # shared plane was dropped.
            assert runtime.cache_info()["workloads"] == 2

    def test_evicted_workload_republishes_on_next_use(self):
        from repro.obs import Instrumentation

        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, shm_byte_budget=1, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            first = make_workload(800, seed=1)
            second = make_workload(800, seed=2)
            runtime.publish_workload(first)
            runtime.publish_workload(second)  # evicts first's segment
            _, spec = runtime.publish_workload(first)  # republish
            assert spec is not None
            assert obs.metrics.counter("runtime.shm.evicted").value == 2

    def test_results_identical_under_budget_pressure(self):
        workloads = [make_workload(600, seed=i) for i in range(3)]
        system = make_system()
        serial = [
            evaluate_system_batch(system, w, seed=9, chunk_size=200)
            for w in workloads
        ]
        with EngineRuntime(workers=2, shm_byte_budget=1) as runtime:
            pooled = [
                runtime.evaluate(system, w, seed=9, chunk_size=200)
                for w in workloads
            ]
        assert serial == pooled

    def test_publish_workload_serial_runtime_returns_no_spec(self):
        with EngineRuntime(workers=1) as runtime:
            arrays, spec = runtime.publish_workload(make_workload(400, seed=3))
            assert spec is None
            assert len(arrays.has_cancer) == 400

    def test_publish_on_closed_runtime_raises(self):
        runtime = EngineRuntime(workers=1)
        runtime.close()
        with pytest.raises(SimulationError, match="closed"):
            runtime.publish_workload(make_workload(400, seed=3))
