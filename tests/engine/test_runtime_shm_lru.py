"""Shm LRU eviction under interleaved publishers.

``TestShmByteBudget`` (test_runtime.py) pins the degenerate 1-byte
budget.  Here the budget is sized to hold *exactly one* workload plane,
and two workloads ping-pong across it — the service's multi-tenant
steady state, where alternating requests keep evicting each other's
segment.  The invariants: every publish stays within the budget, the
``runtime.shm.evicted`` counter tracks each eviction, and a workload
republished after eviction evaluates bit-identical to standalone.
"""

import pytest

from repro.engine import EngineRuntime, evaluate_system_batch
from repro.obs import Instrumentation

from tests.engine.test_executor import make_system, make_workload


def one_segment_bytes(workload):
    """The shared-plane footprint of one published workload."""
    with EngineRuntime(workers=2) as runtime:
        if not runtime.uses_shared_memory:
            pytest.skip("shared memory unavailable")
        runtime.publish_workload(workload)
        return runtime.shm_bytes_live


class TestShmLruPingPong:
    def test_interleaved_publishers_stay_within_budget_and_count_evictions(self):
        first = make_workload(800, seed=1)
        second = make_workload(800, seed=2)
        # Room for one plane plus slack, but never two.
        budget = one_segment_bytes(first) * 3 // 2
        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, shm_byte_budget=budget, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            seen = []
            for ping_pong, workload in enumerate([first, second] * 3):
                _, spec = runtime.publish_workload(workload)
                assert spec is not None
                seen.append(spec.name)
                # The budget binds after every single publish.
                assert runtime.shm_bytes_live <= budget
                assert len(runtime.active_segments) == 1
                # Every alternation evicts the other tenant's segment.
                expected_evictions = max(0, ping_pong)
                assert (
                    obs.metrics.counter("runtime.shm.evicted").value
                    == expected_evictions
                )
            # Each republish allocated a fresh segment: no name reuse
            # of a live segment across the ping-pong.
            assert len(set(seen)) == len(seen)

    def test_resident_workload_republish_is_a_memo_hit(self):
        workload = make_workload(800, seed=1)
        budget = one_segment_bytes(workload) * 3 // 2
        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, shm_byte_budget=budget, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            _, spec_a = runtime.publish_workload(workload)
            _, spec_b = runtime.publish_workload(workload)
            # Same fingerprint, same live segment: no churn, no eviction.
            assert spec_a.name == spec_b.name
            assert obs.metrics.counter("runtime.shm.evicted").value == 0

    def test_ping_pong_evaluations_stay_bit_identical(self):
        first = make_workload(600, seed=1)
        second = make_workload(600, seed=2)
        budget = one_segment_bytes(first) * 3 // 2
        schedule = [first, second, first, second, first]
        references = [
            evaluate_system_batch(make_system(), w, seed=13, chunk_size=200)
            for w in schedule
        ]
        obs = Instrumentation(name="test")
        with EngineRuntime(workers=2, shm_byte_budget=budget, obs=obs) as runtime:
            if not runtime.uses_shared_memory:
                pytest.skip("shared memory unavailable")
            pooled = [
                runtime.evaluate(make_system(), w, seed=13, chunk_size=200)
                for w in schedule
            ]
        # Evictions happened (the budget really was tight) and every
        # post-eviction republish still reproduced the standalone run.
        assert obs.metrics.counter("runtime.shm.evicted").value >= 3
        assert pooled == references
