"""Temporal-equivalence battery: vectorized stream vs scalar reader dynamics.

The stream-carry path (``advance_stream`` + :class:`ReaderStateVector`)
must reproduce the scalar per-case loops *bit-identically*: decisions
element-wise, trust curves and fatigue decrements value-for-value,
across chunk sizes, worker counts, and session-break placement.  These
tests are the proof obligation for running ``AdaptiveReader`` /
``FatiguedReader`` workloads on the vectorized engine.
"""

import numpy as np
import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.engine import EngineRuntime, evaluate_system_batch, supports_stream
from repro.reader import (
    MILD_BIAS,
    AdaptiveReader,
    AdaptiveTrust,
    FatiguedReader,
    FatigueModel,
    ReaderModel,
)
from repro.screening import routine_screening_population, trial_workload
from repro.system import AssistedReading, UnaidedReading, evaluate_system

from tests.engine.test_equivalence import failure_counts

SEED = 23
N = 420
CHUNK_SIZES = [1, 7, 64, N]  # single-case, odd, round, whole-stream
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def workload():
    return trial_workload(
        routine_screening_population(seed=SEED), N, cancer_fraction=0.3, name="teq"
    )


def make_fatigued_system(seed=SEED, cases_per_session=None):
    base = ReaderModel(bias=MILD_BIAS, name="r", seed=seed + 1)
    fatigue = FatigueModel(
        rate=0.02, max_decrement=0.9, cases_per_session=cases_per_session
    )
    return UnaidedReading(FatiguedReader(base, fatigue, seed=seed + 2))


def make_adaptive_system(seed=SEED):
    base = ReaderModel(bias=MILD_BIAS, name="r", seed=seed + 1)
    trust = AdaptiveTrust(growth_rate=0.02, failure_penalty=0.5)
    return AssistedReading(
        AdaptiveReader(base, trust, seed=seed + 2),
        Cadt(DetectionAlgorithm(), seed=seed + 3),
    )


SYSTEM_FACTORIES = {
    "fatigued": make_fatigued_system,
    "fatigued_sessions": lambda: make_fatigued_system(cases_per_session=50),
    "adaptive": make_adaptive_system,
}


def reader_state(system):
    """The committed scalar state of a system's temporal wrapper."""
    reader = system.reader
    if isinstance(reader, FatiguedReader):
        return (reader.fatigue.decrement, reader.fatigue.cases_this_session)
    return (
        reader.trust.trust,
        reader.trust.observed_successes,
        reader.trust.caught_failures,
    )


class TestStreamSupport:
    @pytest.mark.parametrize("factory", SYSTEM_FACTORIES.values(), ids=SYSTEM_FACTORIES)
    def test_temporal_wrappers_support_stream(self, factory):
        assert supports_stream(factory())

    def test_drifting_cadt_does_not(self):
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        wrapped = FatiguedReader(base, seed=2)
        system = AssistedReading(wrapped, Cadt(drift_per_case=1e-5, seed=3))
        assert not supports_stream(system)

    def test_custom_reader_does_not(self):
        class OpaqueReader:
            name = "opaque"

            def decide(self, case, cadt_output=None, rng=None):
                raise NotImplementedError

        assert not supports_stream(UnaidedReading(OpaqueReader()))


class TestUnseededChunkSizeInvariance:
    """Unseeded serial streams are bit-identical to the scalar loop at
    *every* chunk size, and leave the wrapper in the identical state."""

    @pytest.mark.parametrize("factory", SYSTEM_FACTORIES.values(), ids=SYSTEM_FACTORIES)
    def test_matches_scalar_at_every_chunk_size(self, factory, workload):
        reference_system = factory()
        reference = failure_counts(evaluate_system(reference_system, workload))
        for chunk_size in CHUNK_SIZES:
            system = factory()
            result = failure_counts(
                evaluate_system_batch(system, workload, chunk_size=chunk_size)
            )
            assert result == reference, f"chunk_size={chunk_size}"
            assert reader_state(system) == reader_state(reference_system), (
                f"carried state diverged at chunk_size={chunk_size}"
            )


class TestSeededEquivalence:
    @pytest.mark.parametrize("factory", SYSTEM_FACTORIES.values(), ids=SYSTEM_FACTORIES)
    def test_whole_stream_chunk_matches_seeded_scalar(self, factory, workload):
        scalar_system, stream_system = factory(), factory()
        scalar = failure_counts(evaluate_system(scalar_system, workload, seed=77))
        stream = failure_counts(
            evaluate_system_batch(stream_system, workload, seed=77, chunk_size=N)
        )
        assert stream == scalar
        assert reader_state(stream_system) == reader_state(scalar_system)

    @pytest.mark.parametrize("factory", SYSTEM_FACTORIES.values(), ids=SYSTEM_FACTORIES)
    def test_invariant_across_worker_counts(self, factory, workload):
        """Seeded results are a function of (seed, chunk_size) only: the
        serial executor and pooled runtimes of any width agree exactly,
        with no degradation events."""
        results, states = {}, {}
        for workers in WORKER_COUNTS:
            system = factory()
            if workers == 1:
                evaluation = evaluate_system_batch(
                    system, workload, seed=5, chunk_size=32
                )
            else:
                with EngineRuntime(workers=workers) as runtime:
                    evaluation = runtime.evaluate(
                        system, workload, seed=5, chunk_size=32
                    )
                    assert runtime.degradations == frozenset()
            results[workers] = failure_counts(evaluation)
            states[workers] = reader_state(system)
        assert results[2] == results[1]
        assert results[4] == results[1]
        assert states[2] == states[1]
        assert states[4] == states[1]


class TestElementWiseTrajectories:
    """Beyond counts: the per-case decisions and the state curves match
    the scalar loop element-wise across chunk boundaries."""

    @pytest.mark.parametrize("factory", SYSTEM_FACTORIES.values(), ids=SYSTEM_FACTORIES)
    def test_decisions_match_element_wise(self, factory, workload):
        scalar_system, stream_system = factory(), factory()
        scalar_recall = np.array(
            [scalar_system.decide(case).recall for case in workload.cases]
        )
        arrays = workload.to_arrays()
        state = stream_system.stream_state()
        stream_recall = []
        for start in range(0, N, 7):  # boundary never aligned to anything
            chunk = arrays.chunk(start, min(start + 7, N))
            decisions, state = stream_system.advance_stream(chunk, state)
            stream_recall.append(decisions.recall)
        stream_system.commit_stream(state)
        np.testing.assert_array_equal(np.concatenate(stream_recall), scalar_recall)
        assert reader_state(stream_system) == reader_state(scalar_system)

    def test_trust_curve_matches_scalar(self, workload):
        """Trust after every case: scalar loop vs chunk-size-1 stream."""
        scalar_system, stream_system = make_adaptive_system(), make_adaptive_system()
        scalar_curve = []
        for case in workload.cases:
            scalar_system.decide(case)
            scalar_curve.append(scalar_system.reader.trust.trust)
        arrays = workload.to_arrays()
        state = stream_system.stream_state()
        stream_curve = []
        for start in range(N):
            _, state = stream_system.advance_stream(
                arrays.chunk(start, start + 1), state
            )
            stream_curve.append(float(state.trust[0]))
        assert stream_curve == scalar_curve  # exact, not approximate
        assert scalar_system.reader.trust.caught_failures > 0  # curve has drops

    def test_fatigue_decrement_curve_matches_scalar(self, workload):
        """Decrement after every case, including automatic session resets."""
        make = lambda: make_fatigued_system(cases_per_session=37)  # noqa: E731
        scalar_system, stream_system = make(), make()
        scalar_curve = []
        for case in workload.cases:
            scalar_system.decide(case)
            scalar_curve.append(scalar_system.reader.fatigue.decrement)
        arrays = workload.to_arrays()
        state = stream_system.stream_state()
        stream_curve = []
        for start in range(N):
            _, state = stream_system.advance_stream(
                arrays.chunk(start, start + 1), state
            )
            stream_curve.append(float(state.decrement[0]))
        assert stream_curve == scalar_curve  # exact, including the resets
        assert 0.0 in scalar_curve[1:]  # at least one reset happened


class TestSessionBreakBoundaries:
    """The satellite fix: a session break is counted in cases, never in
    chunks, so its interaction with chunk boundaries is invisible."""

    def test_boundary_exactly_on_break(self, workload):
        """Chunk size == cases_per_session: every chunk boundary lands
        exactly on a break; results and carried state match the scalar
        loop (which never sees chunks at all)."""
        session = 60
        scalar_system = make_fatigued_system(cases_per_session=session)
        aligned_system = make_fatigued_system(cases_per_session=session)
        scalar = failure_counts(evaluate_system(scalar_system, workload))
        aligned = failure_counts(
            evaluate_system_batch(aligned_system, workload, chunk_size=session)
        )
        assert aligned == scalar
        assert reader_state(aligned_system) == reader_state(scalar_system)

    def test_state_carried_over_aligned_boundary_is_rested(self, workload):
        session = 60
        system = make_fatigued_system(cases_per_session=session)
        arrays = workload.to_arrays()
        _, state = system.advance_stream(
            arrays.chunk(0, session), system.stream_state()
        )
        assert float(state.decrement[0]) == 0.0
        assert int(state.cases_this_session[0]) == 0

    def test_boundary_mid_session(self, workload):
        """A chunk boundary mid-session (chunk 45, sessions of 60) carries
        partial fatigue across it; still bit-identical to scalar."""
        session = 60
        scalar_system = make_fatigued_system(cases_per_session=session)
        offset_system = make_fatigued_system(cases_per_session=session)
        scalar = failure_counts(evaluate_system(scalar_system, workload))
        offset = failure_counts(
            evaluate_system_batch(offset_system, workload, chunk_size=45)
        )
        assert offset == scalar
        assert reader_state(offset_system) == reader_state(scalar_system)
        # And the mid-session carry is visibly partial, not a reset:
        probe = make_fatigued_system(cases_per_session=session)
        arrays = workload.to_arrays()
        _, state = probe.advance_stream(arrays.chunk(0, 45), probe.stream_state())
        assert float(state.decrement[0]) > 0.0
        assert int(state.cases_this_session[0]) == 45
