"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTablesCommand:
    def test_paper_tables(self, capsys):
        code, out, _ = run_cli(capsys, "tables")
        assert code == 0
        assert "0.235" in out and "0.189" in out
        assert "Table 3" in out

    def test_custom_factor(self, capsys):
        code, out, _ = run_cli(capsys, "tables", "--factor", "2")
        assert code == 0
        assert "x2" in out


class TestFigure4Command:
    def test_series_printed(self, capsys):
        code, out, _ = run_cli(capsys, "figure4", "--points", "3")
        assert code == 0
        assert "class easy" in out and "class difficult" in out
        assert "intercept=0.1400" in out
        assert "slope=0.5000" in out


class TestDecomposeCommand:
    def test_field_decomposition(self, capsys):
        code, out, _ = run_cli(capsys, "decompose", "--profile", "field")
        assert code == 0
        assert "PHf (total)" in out
        assert "0.189020" in out

    def test_unknown_profile_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "decompose", "--profile", "venus")
        assert code == 1
        assert "venus" in err


class TestTrialPredictDesignPipeline:
    def test_full_pipeline(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code, out, _ = run_cli(
            capsys,
            "trial",
            "--cases",
            "120",
            "--readers",
            "2",
            "--seed",
            "5",
            "--output",
            str(model_path),
        )
        assert code == 0
        assert "observed aided cancer FN rate" in out
        assert model_path.exists()
        body = json.loads(model_path.read_text())
        assert body["format"] == "repro-model/1"

        code, out, _ = run_cli(capsys, "predict", str(model_path))
        assert code == 0
        assert "P(system failure)" in out

        code, out, _ = run_cli(
            capsys, "design", str(model_path), "--cases", "120", "--readers", "2"
        )
        assert code == 0
        assert "machine_failure" in out
        assert ("feasible" in out) or ("THIN" in out)

    def test_predict_missing_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "predict", str(tmp_path / "nope.json"))
        # Missing file surfaces as an OSError, not a clean exit; accept
        # either a nonzero code or a raised error.
        assert code != 0 or err

    def test_predict_requires_profile_when_ambiguous(self, capsys, tmp_path):
        from repro.core import (
            PAPER_FIELD_PROFILE,
            PAPER_TRIAL_PROFILE,
            dump_model,
            paper_example_parameters,
        )

        path = tmp_path / "model.json"
        dump_model(
            path,
            paper_example_parameters(),
            {"trial": PAPER_TRIAL_PROFILE, "field": PAPER_FIELD_PROFILE},
        )
        code, _, err = run_cli(capsys, "predict", str(path))
        assert code == 1
        assert "--profile required" in err

        code, out, _ = run_cli(capsys, "predict", str(path), "--profile", "field")
        assert code == 0
        assert "0.189" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestSensitivityCommand:
    def test_tornado_printed(self, capsys):
        code, out, _ = run_cli(capsys, "sensitivity", "--profile", "field")
        assert code == 0
        assert "baseline" in out and "swing" in out
        # The dominant bar is the easy class's PHf|Ms.
        first_row = out.splitlines()[2]
        assert "easy" in first_row
        assert "machine_success" in first_row

    def test_custom_swing(self, capsys):
        code, out, _ = run_cli(capsys, "sensitivity", "--swing", "0.5")
        assert code == 0


class TestUncertaintyCommand:
    def test_interval_printed(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "uncertainty",
            "--level", "0.95",
            "--draws", "2000",
            "--seed", "7",
        )
        assert code == 0
        assert "95% credible interval" in out
        assert "draws/s" in out
        # The field-profile interval brackets the paper's 0.189 prediction.
        assert "mean 0.1" in out

    def test_seed_makes_output_reproducible(self, capsys):
        _, first, _ = run_cli(capsys, "uncertainty", "--draws", "500", "--seed", "3")
        _, second, _ = run_cli(capsys, "uncertainty", "--draws", "500", "--seed", "3")
        # Everything except the timing line must match exactly.
        assert first.splitlines()[:2] == second.splitlines()[:2]

    def test_trial_profile(self, capsys):
        code, out, _ = run_cli(
            capsys, "uncertainty", "--profile", "trial", "--draws", "500"
        )
        assert code == 0
        assert "profile 'trial'" in out

    def test_invalid_trials_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "uncertainty", "--trials", "0")
        assert code == 1
        assert "--trials" in err


class TestMonitorCommand:
    def test_monitor_stable_records(self, capsys, tmp_path):
        import numpy as np

        from repro.core import (
            CaseClass,
            ClassParameters,
            DemandProfile,
            ModelParameters,
            dump_model,
        )
        from repro.trial import CaseRecord, TrialRecords, dump_records_csv

        parameters = ModelParameters({"x": ClassParameters(0.2, 0.6, 0.1)})
        profile = DemandProfile({"x": 1.0})
        model_path = tmp_path / "model.json"
        dump_model(model_path, parameters, {"field": profile})

        rng = np.random.default_rng(7)
        records = TrialRecords()
        for i in range(2000):
            machine_failed = bool(rng.random() < 0.2)
            p_fail = 0.6 if machine_failed else 0.1
            records.append(
                CaseRecord(
                    i, "r", CaseClass("x"), True, True, machine_failed, 0,
                    not bool(rng.random() < p_fail),
                )
            )
        records_path = tmp_path / "field.csv"
        dump_records_csv(records_path, records)

        code, out, _ = run_cli(
            capsys, "monitor", str(records_path), str(model_path)
        )
        assert code == 0
        assert "no drift detected" in out

    def test_monitor_detects_drift(self, capsys, tmp_path):
        import numpy as np

        from repro.core import (
            CaseClass,
            ClassParameters,
            DemandProfile,
            ModelParameters,
            dump_model,
        )
        from repro.trial import CaseRecord, TrialRecords, dump_records_csv

        parameters = ModelParameters({"x": ClassParameters(0.05, 0.6, 0.1)})
        model_path = tmp_path / "model.json"
        dump_model(model_path, parameters, {"field": DemandProfile({"x": 1.0})})

        rng = np.random.default_rng(8)
        records = TrialRecords()
        for i in range(2000):
            machine_failed = bool(rng.random() < 0.25)  # 5x the reference PMf
            p_fail = 0.6 if machine_failed else 0.1
            records.append(
                CaseRecord(
                    i, "r", CaseClass("x"), True, True, machine_failed, 0,
                    not bool(rng.random() < p_fail),
                )
            )
        records_path = tmp_path / "field.csv"
        dump_records_csv(records_path, records)

        code, out, _ = run_cli(
            capsys, "monitor", str(records_path), str(model_path)
        )
        assert code == 0
        assert "DRIFT DETECTED" in out
        assert "x/PMf" in out


class TestMonitorStreamingModes:
    @staticmethod
    def write_model(tmp_path, pmf):
        from repro.core import ClassParameters, DemandProfile, ModelParameters, dump_model

        model_path = tmp_path / "model.json"
        dump_model(
            model_path,
            ModelParameters({"x": ClassParameters(pmf, 0.6, 0.1)}),
            {"field": DemandProfile({"x": 1.0})},
        )
        return model_path

    @staticmethod
    def make_records(pmf, n=2000, seed=7):
        import numpy as np

        from repro.core import CaseClass
        from repro.trial import CaseRecord, TrialRecords

        rng = np.random.default_rng(seed)
        records = TrialRecords()
        for i in range(n):
            machine_failed = bool(rng.random() < pmf)
            p_fail = 0.6 if machine_failed else 0.1
            records.append(
                CaseRecord(
                    i, "r", CaseClass("x"), True, True, machine_failed, 0,
                    not bool(rng.random() < p_fail),
                )
            )
        return records

    def test_follow_streams_stable_csv(self, capsys, tmp_path):
        from repro.trial import dump_records_csv

        model_path = self.write_model(tmp_path, pmf=0.2)
        records_path = tmp_path / "field.csv"
        dump_records_csv(records_path, self.make_records(pmf=0.2))
        code, out, _ = run_cli(
            capsys,
            "monitor", str(records_path), str(model_path),
            "--follow", "--max-polls", "1", "--poll-interval", "0",
        )
        assert code == 0
        assert f"following {records_path} (csv)" in out
        assert "+2000 records: 2000 used of 2000 seen" in out
        assert "no drift detected" in out

    def test_follow_trips_sequential_alarms_on_drift(self, capsys, tmp_path):
        from repro.trial import dump_records_csv

        model_path = self.write_model(tmp_path, pmf=0.05)
        records_path = tmp_path / "field.csv"
        dump_records_csv(records_path, self.make_records(pmf=0.25, seed=8))
        code, out, _ = run_cli(
            capsys,
            "monitor", str(records_path), str(model_path),
            "--follow", "--max-polls", "1", "--poll-interval", "0",
        )
        assert code == 0
        assert "DRIFT DETECTED" in out
        assert "sequential alarms still tripped" in out

    def test_from_journal_matches_csv_report(self, capsys, tmp_path):
        from repro.trial import (
            append_journal_entries,
            dump_records_csv,
            record_to_entry,
        )

        model_path = self.write_model(tmp_path, pmf=0.2)
        records = self.make_records(pmf=0.2)
        csv_path = tmp_path / "field.csv"
        dump_records_csv(csv_path, records)
        journal_path = tmp_path / "field.jsonl"
        append_journal_entries(
            journal_path, [record_to_entry(r) for r in records]
        )
        code, from_csv, _ = run_cli(
            capsys, "monitor", str(csv_path), str(model_path)
        )
        assert code == 0
        code, from_journal, _ = run_cli(
            capsys,
            "monitor", str(journal_path), str(model_path), "--from-journal",
        )
        assert code == 0
        assert from_journal == from_csv

    def test_follow_from_journal(self, capsys, tmp_path):
        from repro.trial import append_journal_entries, record_to_entry

        model_path = self.write_model(tmp_path, pmf=0.2)
        journal_path = tmp_path / "field.jsonl"
        append_journal_entries(
            journal_path,
            [record_to_entry(r) for r in self.make_records(pmf=0.2, n=600)],
        )
        code, out, _ = run_cli(
            capsys,
            "monitor", str(journal_path), str(model_path),
            "--follow", "--from-journal",
            "--max-polls", "1", "--poll-interval", "0", "--check-every", "200",
        )
        assert code == 0
        assert f"following {journal_path} (journal)" in out
        assert "3 checkpoints" in out

    def test_empty_journal_fails_cleanly(self, capsys, tmp_path):
        model_path = self.write_model(tmp_path, pmf=0.2)
        journal_path = tmp_path / "empty.jsonl"
        journal_path.write_text("")
        code, _, err = run_cli(
            capsys,
            "monitor", str(journal_path), str(model_path), "--from-journal",
        )
        assert code == 1
        assert "no record entries" in err

    def test_follow_trace_out_captures_monitor_gauges(self, capsys, tmp_path):
        from repro.trial import dump_records_csv

        model_path = self.write_model(tmp_path, pmf=0.2)
        records_path = tmp_path / "field.csv"
        dump_records_csv(records_path, self.make_records(pmf=0.2, n=600))
        trace = tmp_path / "monitor-report.json"
        code, out, _ = run_cli(
            capsys,
            "monitor", str(records_path), str(model_path),
            "--follow", "--max-polls", "1", "--poll-interval", "0",
            "--trace-out", str(trace),
        )
        assert code == 0
        body = json.loads(trace.read_text())
        gauges = body["metrics"]["gauges"]
        assert gauges["monitor.records_used"] == 600
        assert body["metrics"]["counters"]["monitor.checkpoints"] == 2


class TestObservabilityFlags:
    def test_simulate_profile_prints_run_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--cases", "400", "--system", "unaided", "--profile"
        )
        assert code == 0
        assert "run report: simulate" in out
        assert "where the time went (spans):" in out
        assert "executor.evaluate" in out
        assert "degraded paths fired" in out

    def test_simulate_trace_out_writes_schema_stamped_json(self, capsys, tmp_path):
        trace = tmp_path / "run-report.json"
        code, out, _ = run_cli(
            capsys,
            "simulate", "--cases", "400", "--system", "unaided",
            "--trace-out", str(trace),
        )
        assert code == 0
        assert f"run report written to {trace}" in out
        # --trace-out alone writes the file but keeps stdout terse.
        assert "where the time went" not in out
        body = json.loads(trace.read_text())
        assert body["schema"] == 1
        assert body["name"] == "simulate"
        assert body["spans"]
        assert "counters" in body["metrics"]

    def test_profile_does_not_change_seeded_results(self, capsys):
        import re

        def failure_cells(out):
            return re.findall(r"\d+\.\d{4} \(\d+/\d+\)", out)

        _, plain, _ = run_cli(capsys, "simulate", "--cases", "400", "--seed", "3")
        _, traced, _ = run_cli(
            capsys, "simulate", "--cases", "400", "--seed", "3", "--profile"
        )
        assert failure_cells(plain) == failure_cells(traced)
        assert failure_cells(plain)  # the extraction actually found rows

    def test_uncertainty_profile_report_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "uncertainty", "--draws", "500", "--profile-report"
        )
        assert code == 0
        assert "run report: uncertainty" in out
        assert "posterior.sample" in out

    def test_uncertainty_profile_still_selects_demand_profile(self, capsys):
        # `uncertainty --profile` keeps its original meaning (a stored
        # demand-profile name); the report spelling is --profile-report.
        code, out, _ = run_cli(
            capsys, "uncertainty", "--profile", "trial", "--draws", "300"
        )
        assert code == 0
        assert "profile 'trial'" in out
        assert "run report" not in out

    def test_ambient_instrumentation_restored_after_command(self, capsys):
        from repro.obs import NULL_INSTRUMENTATION, get_instrumentation

        run_cli(capsys, "simulate", "--cases", "200", "--profile")
        assert get_instrumentation() is NULL_INSTRUMENTATION


class TestSweepCommand:
    @staticmethod
    def write_grid(tmp_path, **overrides):
        from repro.sweep import ScenarioGrid

        fields = dict(
            name="cli",
            populations=("routine",),
            num_cases=60,
            systems=("unaided", "assisted"),
            biases=("none", "mild"),
            operating_points=(0.0,),
            replicates=1,
        )
        fields.update(overrides)
        path = tmp_path / "grid.json"
        ScenarioGrid(**fields).to_file(path)
        return path

    def test_runs_grid_and_prints_summary(self, capsys, tmp_path):
        grid = self.write_grid(tmp_path)
        code, out, _ = run_cli(capsys, "sweep", "--grid", str(grid), "--seed", "7")
        assert code == 0
        assert "grid 'cli': 4 cells, 1 distinct workloads" in out
        assert "complete: 4 cells executed, 0 restored from journal" in out
        assert "FN rate" in out and "FP rate" in out

    def test_group_by_controls_summary_columns(self, capsys, tmp_path):
        grid = self.write_grid(tmp_path)
        code, out, _ = run_cli(
            capsys, "sweep", "--grid", str(grid), "--group-by", "system,bias"
        )
        assert code == 0
        assert "bias" in out

    def test_journal_resume_round_trip(self, capsys, tmp_path):
        grid = self.write_grid(tmp_path, replicates=3)  # 12 cells
        journal = tmp_path / "sweep.jsonl"
        code, out, _ = run_cli(
            capsys,
            "sweep", "--grid", str(grid), "--seed", "7",
            "--journal", str(journal), "--shard-size", "4", "--max-shards", "1",
        )
        assert code == 0
        assert "partial: 4 cells executed" in out
        assert "resume with:" in out
        code, resumed, _ = run_cli(
            capsys,
            "sweep", "--grid", str(grid), "--seed", "7",
            "--journal", str(journal), "--shard-size", "4", "--resume",
        )
        assert code == 0
        assert "8 cells executed, 4 restored from journal" in resumed

        def table(text):
            return [line for line in text.splitlines() if "|" in line]

        # The consolidated table after resume matches an uninterrupted run.
        code, fresh, _ = run_cli(capsys, "sweep", "--grid", str(grid), "--seed", "7")
        assert code == 0
        assert table(resumed) == table(fresh)

    def test_existing_journal_without_resume_fails_cleanly(self, capsys, tmp_path):
        grid = self.write_grid(tmp_path)
        journal = tmp_path / "sweep.jsonl"
        run_cli(capsys, "sweep", "--grid", str(grid), "--journal", str(journal))
        code, _, err = run_cli(
            capsys, "sweep", "--grid", str(grid), "--journal", str(journal)
        )
        assert code == 1
        assert "already exists" in err

    def test_missing_grid_file_fails_cleanly(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "sweep", "--grid", str(tmp_path / "absent.json")
        )
        assert code == 1
        assert "cannot read grid file" in err

    def test_profile_prints_sweep_run_report(self, capsys, tmp_path):
        grid = self.write_grid(tmp_path)
        code, out, _ = run_cli(
            capsys, "sweep", "--grid", str(grid), "--profile"
        )
        assert code == 0
        assert "run report: sweep" in out
        assert "sweep.compile" in out and "sweep.shard" in out
