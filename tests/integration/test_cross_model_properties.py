"""Cross-model consistency properties (hypothesis).

These properties tie the library's independent implementations together:
different routes to the same quantity must agree exactly, for *arbitrary*
valid inputs — the strongest guard against silent modelling drift.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    MultiReaderModel,
    ParallelClassParameters,
    ParallelModel,
    SequentialModel,
    TeamPolicy,
    detection_covariance_bounds,
    merge_classes,
    model_from_dict,
    model_to_dict,
)
from repro.rbd import (
    HUMAN_CLASSIFIES,
    HUMAN_DETECTS,
    MACHINE_DETECTS,
    parallel_detection_diagram,
)

unit_floats = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def parameter_tables(draw, max_classes=5):
    n = draw(st.integers(min_value=1, max_value=max_classes))
    return ModelParameters(
        {
            f"c{i}": ClassParameters(
                draw(unit_floats), draw(unit_floats), draw(unit_floats)
            )
            for i in range(n)
        }
    )


@st.composite
def tables_with_profiles(draw, max_classes=5):
    table = draw(parameter_tables(max_classes))
    weights = {
        cls.name: draw(st.floats(min_value=1e-3, max_value=1.0))
        for cls in table.classes
    }
    return table, DemandProfile.from_weights(weights)


class TestRbdVersusParallelModel:
    @given(unit_floats, unit_floats, unit_floats)
    def test_fig2_rbd_equals_equation_2(self, p_machine, p_human, p_misclass):
        """The RBD engine and equation (2) are independent implementations
        of the same structure; at independence they must agree exactly."""
        params = ParallelClassParameters(p_machine, p_human, p_misclass)
        diagram = parallel_detection_diagram()
        rbd_failure = diagram.failure_probability(
            {
                MACHINE_DETECTS: p_machine,
                HUMAN_DETECTS: p_human,
                HUMAN_CLASSIFIES: p_misclass,
            }
        )
        assert rbd_failure == pytest.approx(
            params.p_system_failure_independent, abs=1e-9
        )


class TestParallelSequentialBridge:
    @given(unit_floats, unit_floats, unit_floats, unit_floats)
    def test_bridge_commutes_with_profile_weighting(
        self, p_machine, p_human, p_misclass, weight
    ):
        """Converting to sequential per class then weighting equals
        weighting the parallel model directly."""
        other = ParallelClassParameters(
            min(p_machine + 0.1, 1.0), p_human, min(p_misclass + 0.2, 1.0)
        )
        model = ParallelModel(
            {"a": ParallelClassParameters(p_machine, p_human, p_misclass), "b": other}
        )
        profile = DemandProfile.from_weights({"a": max(weight, 1e-3), "b": 1.0})
        sequential = SequentialModel(model.to_sequential_parameters())
        assert sequential.system_failure_probability(profile) == pytest.approx(
            model.system_failure_probability(profile), abs=1e-9
        )


class TestMergeConsistency:
    @given(tables_with_profiles())
    @settings(max_examples=50)
    def test_full_merge_preserves_overall_failure(self, table_and_profile):
        table, profile = table_and_profile
        merged = merge_classes(table, profile)
        fine = SequentialModel(table).system_failure_probability(profile)
        assert merged.p_system_failure == pytest.approx(fine, abs=1e-9)

    @given(tables_with_profiles(max_classes=4))
    @settings(max_examples=50)
    def test_pairwise_merge_preserves_overall_failure(self, table_and_profile):
        """Merging any two classes (correctly re-profiled) leaves the
        profile-weighted failure probability unchanged."""
        table, profile = table_and_profile
        classes = [c.name for c in table.classes]
        if len(classes) < 2:
            return
        first, second, *rest = classes
        pair_weight = profile[first] + profile[second]
        if pair_weight <= 0:
            return
        merged_params = merge_classes(
            table,
            DemandProfile.from_weights(
                {first: max(profile[first], 1e-12), second: max(profile[second], 1e-12)}
            ),
        )
        coarse_table = {"merged": merged_params}
        coarse_weights = {"merged": pair_weight}
        for name in rest:
            coarse_table[name] = table[name]
            coarse_weights[name] = profile[name]
        coarse_model = SequentialModel(ModelParameters(coarse_table))
        coarse_profile = DemandProfile.from_weights(
            {k: max(v, 1e-12) for k, v in coarse_weights.items()}
        )
        fine = SequentialModel(table).system_failure_probability(profile)
        coarse = coarse_model.system_failure_probability(coarse_profile)
        assert coarse == pytest.approx(fine, abs=1e-7)


class TestSerializationRoundTrip:
    @given(tables_with_profiles())
    @settings(max_examples=50)
    def test_round_trip_preserves_predictions(self, table_and_profile):
        table, profile = table_and_profile
        document = model_to_dict(table, {"p": profile})
        restored_table, restored_profiles = model_from_dict(document)
        original = SequentialModel(table).system_failure_probability(profile)
        restored = SequentialModel(restored_table).system_failure_probability(
            restored_profiles["p"]
        )
        assert restored == pytest.approx(original, abs=1e-12)


class TestTeamConsistency:
    @given(parameter_tables(max_classes=3))
    @settings(max_examples=50)
    def test_homogeneous_pair_under_recall_if_any(self, table):
        """A team of two identical readers: the collapsed conditionals are
        the squares of the individual ones."""
        team = MultiReaderModel.from_single_reader_tables(
            [table, table], TeamPolicy.RECALL_IF_ANY
        )
        collapsed = team.to_sequential_model().parameters
        for cls in table.classes:
            single = table[cls]
            pair = collapsed[cls]
            assert pair.p_human_failure_given_machine_failure == pytest.approx(
                single.p_human_failure_given_machine_failure ** 2, abs=1e-12
            )
            assert pair.p_human_failure_given_machine_success == pytest.approx(
                single.p_human_failure_given_machine_success ** 2, abs=1e-12
            )

    @given(parameter_tables(max_classes=3))
    @settings(max_examples=50)
    def test_policies_bracket_single_reader_systemwide(self, table):
        profile = DemandProfile.uniform([c.name for c in table.classes])
        single = SequentialModel(table).system_failure_probability(profile)
        pair = MultiReaderModel.from_single_reader_tables([table, table])
        recall_any = pair.system_failure_probability(profile)
        recall_all = pair.with_policy(
            TeamPolicy.RECALL_IF_ALL
        ).system_failure_probability(profile)
        assert recall_any <= single + 1e-12
        assert recall_all >= single - 1e-12


class TestCovarianceFeasibility:
    @given(unit_floats, unit_floats, unit_floats)
    def test_extreme_covariances_are_constructible(self, p_machine, p_human, p_misclass):
        """Both Frechet endpoints must yield valid parameter objects with
        joint probabilities inside [0, 1]."""
        lower, upper = detection_covariance_bounds(p_machine, p_human)
        for cov in (lower, upper):
            params = ParallelClassParameters(p_machine, p_human, p_misclass, cov)
            assert 0.0 <= params.p_joint_detection_failure <= 1.0
            assert 0.0 <= params.p_system_failure <= 1.0
