"""Integration: the full trial -> estimate -> extrapolate -> verify loop.

This is the paper's Section 5 methodology executed end-to-end on the
simulation substrates: run an enriched controlled trial, estimate the
per-class parameters, predict the field failure probability by reweighting
with the field demand profile, and verify against direct field simulation.
"""

import numpy as np
import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.core import ExtrapolationStudy, ImproveMachine, Scenario
from repro.reader import MILD_BIAS, QualificationLevel, ReaderPanel
from repro.screening import (
    PopulationModel,
    SubtletyClassifier,
    empirical_profile,
    field_workload,
)
from repro.system import AssistedReading, evaluate_system
from repro.trial import ControlledTrial


@pytest.fixture(scope="module")
def pipeline():
    """Run the trial once for all tests in this module (it is expensive)."""
    classifier = SubtletyClassifier()
    panel = ReaderPanel.sample(
        4, QualificationLevel.STANDARD, bias=MILD_BIAS, seed=201
    )
    trial = ControlledTrial(
        population=PopulationModel(seed=202),
        panel=panel,
        cadt=Cadt(DetectionAlgorithm(), seed=203),
        classifier=classifier,
        num_cases=800,
        cancer_fraction=0.5,
        subtlety_enrichment=1.5,
        on_empty_cell="pool",
        seed=204,
    )
    outcome = trial.run()

    # An independent field population (same statistical law, fresh draws).
    field_population = PopulationModel(seed=205)
    field_cases = field_workload(field_population, 40_000)
    field_profile = empirical_profile(field_cases, classifier)
    return classifier, panel, outcome, field_cases, field_profile


class TestTrialToFieldExtrapolation:
    def test_trial_and_field_profiles_differ(self, pipeline):
        """Enrichment distorts the demand profile — the paper's motivation
        for reweighting (trials oversample difficult presentations)."""
        _, _, outcome, _, field_profile = pipeline
        trial_profile = outcome.estimation.profile
        assert trial_profile.total_variation_distance(field_profile) > 0.01

    def test_field_prediction_matches_field_simulation(self, pipeline):
        classifier, panel, outcome, field_cases, field_profile = pipeline
        model = outcome.estimation.to_sequential_model()
        predicted = model.system_failure_probability(field_profile)

        # Simulate the same panel reading the field's cancer cases (the FN
        # demand space) with fresh CADT streams.
        rng = np.random.default_rng(206)
        failures = 0
        total = 0
        cancers = field_cases.cancer_cases
        for reader in panel:
            cadt = Cadt(DetectionAlgorithm(), seed=int(rng.integers(1 << 30)))
            for case in cancers:
                output = cadt.process(case)
                decision = reader.decide(case, output, rng)
                failures += int(not decision.recall)
                total += 1
        observed = failures / total
        # Shape-level agreement: the prediction is within a few points.
        assert observed == pytest.approx(predicted, abs=0.04)

    def test_uncertain_interval_covers_field_simulation(self, pipeline):
        classifier, panel, outcome, field_cases, field_profile = pipeline
        uncertain = outcome.estimation.to_uncertain_model()
        interval = uncertain.failure_probability_interval(
            field_profile, level=0.99, num_samples=3000, rng=np.random.default_rng(207)
        )
        model = outcome.estimation.to_sequential_model()
        assert model.system_failure_probability(field_profile) in interval

    def test_extrapolation_study_over_estimated_parameters(self, pipeline):
        """The Section 5 decision question answered with estimated data:
        which class should the CADT designers target?"""
        classifier, _, outcome, _, field_profile = pipeline
        parameters = outcome.estimation.to_model_parameters()
        study = ExtrapolationStudy(
            parameters,
            profiles={"trial": outcome.estimation.profile, "field": field_profile},
            scenarios=[
                Scenario("improve_easy", (ImproveMachine(10.0, ("easy",)),)),
                Scenario("improve_difficult", (ImproveMachine(10.0, ("difficult",)),)),
            ],
        )
        result = study.evaluate()
        baseline = result.probability("baseline", "field")
        improved_easy = result.probability("improve_easy", "field")
        improved_difficult = result.probability("improve_difficult", "field")
        # Both improvements help...
        assert improved_easy <= baseline
        assert improved_difficult <= baseline
        # ...and targeting the difficult class helps more, as in the paper
        # (its machine failures are more frequent and more consequential).
        assert improved_difficult < improved_easy

    def test_covariance_term_positive_on_estimated_model(self, pipeline):
        """Difficulty for the machine and importance to the reader correlate
        positively across classes, as the paper's example assumes."""
        _, _, outcome, _, field_profile = pipeline
        model = outcome.estimation.to_sequential_model()
        decomposition = model.covariance_decomposition(field_profile)
        assert decomposition.covariance > 0
        assert decomposition.total == pytest.approx(
            model.system_failure_probability(field_profile), abs=1e-12
        )


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_numbers(self):
        import repro

        model = repro.SequentialModel(repro.paper_example_parameters())
        assert round(
            model.system_failure_probability(repro.PAPER_TRIAL_PROFILE), 3
        ) == pytest.approx(0.235)
