"""Failure injection: degenerate components must produce sane extremes.

Reliability tooling is judged at the corners: a dead machine, a blind
reader, a trigger-happy reader, a drifted-to-uselessness tool.  These
tests drive the composite systems with pathological components and assert
the boundary behaviour the models predict.
"""

import numpy as np
import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.core import ClassParameters, DemandProfile, ModelParameters, SequentialModel
from repro.reader import NO_BIAS, STRONG_BIAS, ReaderModel, ReaderSkill
from repro.screening import PopulationModel, trial_workload
from repro.system import AssistedReading, UnaidedReading, evaluate_system


@pytest.fixture(scope="module")
def cancer_workload():
    return trial_workload(PopulationModel(seed=1401), 300, cancer_fraction=1.0)


@pytest.fixture(scope="module")
def healthy_workload():
    return trial_workload(PopulationModel(seed=1402), 300, cancer_fraction=0.0)


class TestDeadMachine:
    def test_always_failing_cadt_equals_complacent_unaided_reader(self, cancer_workload):
        """A CADT at threshold +inf prompts nothing: the assisted reader
        behaves like an unaided reader (no bias) — the machine contributes
        nothing but also costs nothing for an unbiased reader."""
        dead_algorithm = DetectionAlgorithm(
            threshold_shift=50.0, base_false_prompt_rate=0.0
        )
        reader_a = ReaderModel(bias=NO_BIAS, name="a", seed=1)
        reader_b = ReaderModel(bias=NO_BIAS, name="b", seed=1)  # same seed/stream
        assisted = AssistedReading(reader_a, Cadt(dead_algorithm, seed=2))
        unaided = UnaidedReading(reader_b)
        assisted_eval = evaluate_system(assisted, cancer_workload)
        unaided_eval = evaluate_system(unaided, cancer_workload)
        assert assisted_eval.false_negative.rate == pytest.approx(
            unaided_eval.false_negative.rate, abs=0.02
        )

    def test_dead_machine_hurts_biased_reader(self, cancer_workload):
        """With complacency, a never-prompting machine is actively harmful:
        every case is an unprompted case."""
        dead_algorithm = DetectionAlgorithm(
            threshold_shift=50.0, base_false_prompt_rate=0.0
        )
        biased = ReaderModel(bias=STRONG_BIAS, name="biased", seed=3)
        unbiased = ReaderModel(bias=NO_BIAS, name="unbiased", seed=3)
        biased_eval = evaluate_system(
            AssistedReading(biased, Cadt(dead_algorithm, seed=4)), cancer_workload
        )
        unbiased_eval = evaluate_system(
            AssistedReading(unbiased, Cadt(dead_algorithm, seed=4)), cancer_workload
        )
        assert biased_eval.false_negative.rate > unbiased_eval.false_negative.rate

    def test_model_predicts_dead_machine_limit(self):
        """PMf -> 1 drives the system to PHf|Mf exactly (Figure 4's right
        end)."""
        params = ClassParameters(1.0, 0.7, 0.1)
        model = SequentialModel(ModelParameters({"x": params}))
        assert model.system_failure_probability(
            DemandProfile({"x": 1.0})
        ) == pytest.approx(0.7)


class TestPerfectMachine:
    def test_perfect_machine_reaches_the_floor(self):
        params = ClassParameters(0.0, 0.7, 0.1)
        model = SequentialModel(ModelParameters({"x": params}))
        profile = DemandProfile({"x": 1.0})
        assert model.system_failure_probability(profile) == pytest.approx(0.1)
        assert model.system_failure_probability(profile) == pytest.approx(
            model.machine_improvement_floor(profile)
        )


class TestPathologicalReaders:
    def test_always_recall_reader(self, cancer_workload, healthy_workload):
        """A reader who recalls everyone: zero false negatives, total false
        positives — the degenerate end of the FN/FP trade-off."""
        trigger_happy = ReaderModel(
            skill=ReaderSkill(
                detection=30.0, classification=30.0, specificity=-30.0, lapse_rate=0.0
            ),
            name="recall_all",
            seed=5,
        )
        system = UnaidedReading(trigger_happy)
        fn_eval = evaluate_system(system, cancer_workload)
        fp_eval = evaluate_system(system, healthy_workload)
        assert fn_eval.false_negative.rate == pytest.approx(0.0, abs=0.01)
        assert fp_eval.false_positive.rate == pytest.approx(1.0, abs=0.01)

    def test_blind_reader_saved_only_by_prompts(self, cancer_workload):
        """A reader who detects nothing unaided but follows prompts: the
        system FN rate approaches the machine's own miss rate (times
        residual misclassification)."""
        blind_but_obedient = ReaderModel(
            skill=ReaderSkill(detection=-30.0, classification=30.0, lapse_rate=0.0),
            bias=NO_BIAS,
            prompt_effectiveness=1.0,
            name="blind",
            seed=6,
        )
        algorithm = DetectionAlgorithm()
        system = AssistedReading(blind_but_obedient, Cadt(algorithm, seed=7))
        evaluation = evaluate_system(system, cancer_workload)
        expected_machine_miss = float(
            np.mean([algorithm.miss_probability(c) for c in cancer_workload.cases])
        )
        assert evaluation.false_negative.rate == pytest.approx(
            expected_machine_miss, abs=0.05
        )


class TestDriftToUselessness:
    def test_unmaintained_tool_degrades_measurably(self):
        """Strong calibration drift without maintenance visibly raises the
        tool's miss probability over a long workload; maintenance restores
        it (Section 5 item 4's 'maintenance practices')."""
        workload = trial_workload(
            PopulationModel(seed=1403), 400, cancer_fraction=1.0
        )
        drifting = Cadt(DetectionAlgorithm(), drift_per_case=0.01, seed=8)
        probe = workload.cases[0]
        fresh_miss = drifting.miss_probability(probe)
        for case in workload:
            drifting.process(case)
        drifted_miss = drifting.miss_probability(probe)
        assert drifted_miss > min(fresh_miss * 2, 0.9)
        drifting.perform_maintenance()
        assert drifting.miss_probability(probe) == pytest.approx(fresh_miss)
