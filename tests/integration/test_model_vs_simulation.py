"""Integration: the analytic models must agree with brute-force simulation.

These tests close the loop the paper could not: because our readers and
CADT are simulators with known analytic conditionals, the sequential
model's predictions can be checked against observed frequencies.
"""

import numpy as np
import pytest

from repro.cadt import Cadt, CadtOutput, DetectionAlgorithm
from repro.core import ClassParameters, DemandProfile, ModelParameters, SequentialModel
from repro.reader import MILD_BIAS, ReaderModel, ReaderSkill, ReadingProcedure
from repro.screening import PopulationModel, SubtletyClassifier
from repro.system import AssistedReading, evaluate_system
from repro.screening import trial_workload
from repro.trial import estimate_model, run_reading_session


def analytic_class_parameters(reader, algorithm, cases):
    """Exact per-class parameters implied by reader+algorithm on a case set.

    Averages the per-case analytic conditionals the way the sequential
    model's class parameters are defined: PMf is the mean miss probability;
    the conditionals are weighted by the probability of the conditioning
    machine outcome per case.
    """
    p_mf = [algorithm.miss_probability(c) for c in cases]
    p_hf_mf = [reader.p_false_negative(c, False) for c in cases]
    p_hf_ms = [reader.p_false_negative(c, True) for c in cases]
    mean_mf = float(np.mean(p_mf))
    joint_mf = float(np.mean([m * h for m, h in zip(p_mf, p_hf_mf)]))
    joint_ms = float(np.mean([(1 - m) * h for m, h in zip(p_mf, p_hf_ms)]))
    return ClassParameters(
        p_machine_failure=mean_mf,
        p_human_failure_given_machine_failure=joint_mf / mean_mf,
        p_human_failure_given_machine_success=joint_ms / (1 - mean_mf),
    )


class TestAnalyticModelMatchesSimulation:
    def test_sequential_model_predicts_simulated_fn_rate(self):
        """Build the model from analytic per-case probabilities, then check
        a large simulation hits the predicted rate."""
        population = PopulationModel(seed=101)
        classifier = SubtletyClassifier()
        cancers = population.generate_cancers(400)
        algorithm = DetectionAlgorithm()
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=5)

        by_class: dict = {}
        weights: dict = {}
        for cls in classifier.classes:
            members = [c for c in cancers if classifier.classify(c) == cls]
            if not members:
                continue
            by_class[cls] = analytic_class_parameters(reader, algorithm, members)
            weights[cls.name] = len(members)
        model = SequentialModel(ModelParameters(by_class))
        profile = DemandProfile.from_counts(weights)
        predicted = model.system_failure_probability(profile)

        # Simulate: each cancer case read many times with fresh CADT output.
        rng = np.random.default_rng(9)
        repeats = 60
        failures = 0
        total = 0
        for case in cancers:
            for _ in range(repeats):
                output = algorithm.process(case, rng)
                decision = reader.decide(case, output, rng)
                failures += int(not decision.recall)
                total += 1
        observed = failures / total
        assert observed == pytest.approx(predicted, abs=0.01)

    def test_estimated_parameters_converge_to_analytic(self):
        """Trial-based estimation must converge to the analytic parameters."""
        population = PopulationModel(seed=102)
        classifier = SubtletyClassifier()
        workload = trial_workload(population, 800, cancer_fraction=1.0)
        algorithm = DetectionAlgorithm()
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=6)

        rng = np.random.default_rng(10)
        records = None
        for _ in range(12):  # re-read the same case set to pile up counts
            session = run_reading_session(
                workload, reader, classifier, Cadt(algorithm, seed=rng.integers(1 << 30)), rng
            )
            records = session if records is None else records + session
        estimation = estimate_model(records, on_empty_cell="pool")

        for cls in estimation.classes:
            members = [c for c in workload.cancer_cases if classifier.classify(c) == cls]
            analytic = analytic_class_parameters(reader, algorithm, members)
            estimate = estimation[cls]
            assert estimate.machine_failure.point == pytest.approx(
                analytic.p_machine_failure, abs=0.03
            )
            assert estimate.human_failure_given_machine_success.point == pytest.approx(
                analytic.p_human_failure_given_machine_success, abs=0.03
            )
            assert estimate.human_failure_given_machine_failure.point == pytest.approx(
                analytic.p_human_failure_given_machine_failure, abs=0.06
            )


class TestProcedureComparison:
    def test_parallel_procedure_immune_to_machine_failures_bias(self):
        """Under the parallel procedure, PHf|Mf equals the unaided failure
        probability composed with classification — complacency cannot act."""
        case_population = PopulationModel(seed=103)
        cancers = case_population.generate_cancers(100)
        sequential_reader = ReaderModel(
            bias=MILD_BIAS, procedure=ReadingProcedure.SEQUENTIAL, name="s"
        )
        parallel_reader = ReaderModel(
            bias=MILD_BIAS, procedure=ReadingProcedure.PARALLEL, name="p"
        )
        for case in cancers[:20]:
            assert parallel_reader.p_false_negative(case, False) <= (
                sequential_reader.p_false_negative(case, False) + 1e-12
            )

    def test_sequential_procedure_higher_importance_index(self):
        """Bias raises t(x): the sequential procedure couples reader failure
        to machine failure more strongly than the parallel procedure."""
        population = PopulationModel(seed=104)
        cancers = population.generate_cancers(300)
        algorithm = DetectionAlgorithm()
        sequential_reader = ReaderModel(
            bias=MILD_BIAS, procedure=ReadingProcedure.SEQUENTIAL, name="s"
        )
        parallel_reader = ReaderModel(
            bias=MILD_BIAS, procedure=ReadingProcedure.PARALLEL, name="p"
        )
        t_sequential = analytic_class_parameters(
            sequential_reader, algorithm, cancers
        ).importance_index
        t_parallel = analytic_class_parameters(
            parallel_reader, algorithm, cancers
        ).importance_index
        assert t_sequential > t_parallel > 0
