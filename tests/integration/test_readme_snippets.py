"""Execute the README's Python code blocks so the front page stays honest."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python blocks to check"
    return blocks


def test_readme_python_blocks_run():
    """Blocks form one narrative session: execute them cumulatively."""
    namespace: dict = {}
    for index, block in enumerate(python_blocks()):
        exec(compile(block, f"README block {index}", "exec"), namespace)  # noqa: S102


def test_readme_quickstart_values():
    """The inline result comments in the quickstart block are correct."""
    import repro

    model = repro.SequentialModel(repro.paper_example_parameters())
    assert round(model.system_failure_probability(repro.PAPER_TRIAL_PROFILE), 3) == 0.235
    assert round(model.system_failure_probability(repro.PAPER_FIELD_PROFILE), 3) == 0.189
    improved = model.with_machine_improved(10.0, ["difficult"])
    assert round(
        improved.system_failure_probability(repro.PAPER_FIELD_PROFILE), 3
    ) == 0.171
