"""Scale sanity: the core models stay exact on large inputs."""

import math
import time

import numpy as np
import pytest

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    SequentialModel,
    optimal_improvement_allocation,
)


@pytest.fixture(scope="module")
def big_model():
    rng = np.random.default_rng(2101)
    n = 5000
    params = {}
    weights = {}
    for i in range(n):
        low = float(rng.uniform(0, 0.5))
        params[f"c{i}"] = ClassParameters(
            p_machine_failure=float(rng.uniform(0, 1)),
            p_human_failure_given_machine_failure=float(
                min(1.0, low + rng.uniform(0, 0.5))
            ),
            p_human_failure_given_machine_success=low,
        )
        weights[f"c{i}"] = float(rng.uniform(0.1, 1.0))
    return SequentialModel(ModelParameters(params)), DemandProfile.from_weights(weights)


class TestLargeModels:
    def test_matches_manual_weighted_sum(self, big_model):
        model, profile = big_model
        manual = math.fsum(
            profile[cls] * model.parameters[cls].p_system_failure
            for cls in profile.classes
        )
        assert model.system_failure_probability(profile) == pytest.approx(
            manual, abs=1e-12
        )

    def test_decomposition_exact_at_scale(self, big_model):
        model, profile = big_model
        decomposition = model.covariance_decomposition(profile)
        assert decomposition.total == pytest.approx(
            model.system_failure_probability(profile), abs=1e-9
        )

    def test_allocation_scales(self, big_model):
        model, profile = big_model
        result = optimal_improvement_allocation(model, profile, math.log(100.0))
        assert result.optimal_failure_probability <= result.uniform_failure_probability
        spent = sum(math.log(f) for f in result.factors.values() if f > 1.0)
        assert spent == pytest.approx(math.log(100.0), rel=1e-6)

    def test_evaluation_is_fast_enough(self, big_model):
        """5000 classes must evaluate in well under a second (guards against
        accidental quadratic behaviour, with a generous CI-safe bound)."""
        model, profile = big_model
        start = time.perf_counter()
        for _ in range(10):
            model.system_failure_probability(profile)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
