"""Baseline mechanics: fingerprints, matching, round-trips, expiry."""

import json

import pytest

from repro.lint import Baseline, BaselineEntry, Finding, lint_paths


def finding(rule="REP001", path="src/repro/x.py", line=3, code="import random"):
    return Finding(
        path=path, line=line, column=0, rule_id=rule,
        message="m", source_line=code,
    )


class TestFingerprints:
    def test_fingerprint_ignores_line_number(self):
        a = finding(line=3)
        b = finding(line=300)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_and_code(self):
        base = finding()
        assert finding(rule="REP002").fingerprint != base.fingerprint
        assert finding(path="src/repro/y.py").fingerprint != base.fingerprint
        assert finding(code="import random  # old").fingerprint != base.fingerprint


class TestMatching:
    def test_baselined_finding_is_absorbed(self):
        baseline = Baseline.from_findings([finding()])
        new, baselined, stale = baseline.match([finding(line=99)])
        assert new == []
        assert len(baselined) == 1
        assert stale == []

    def test_unknown_finding_is_new(self):
        baseline = Baseline.from_findings([finding()])
        new, baselined, stale = baseline.match(
            [finding(), finding(rule="REP004", code="xs=[]")]
        )
        assert [f.rule_id for f in new] == ["REP004"]
        assert [f.rule_id for f in baselined] == ["REP001"]

    def test_count_budget_is_a_multiset(self):
        # Two identical findings baselined; a third with the same
        # fingerprint exceeds the budget and fails the run.
        baseline = Baseline.from_findings([finding(line=1), finding(line=2)])
        assert len(baseline) == 2
        new, baselined, stale = baseline.match(
            [finding(line=1), finding(line=2), finding(line=3)]
        )
        assert len(baselined) == 2
        assert len(new) == 1
        assert stale == []

    def test_fixed_violation_becomes_stale_entry(self):
        baseline = Baseline.from_findings([finding(), finding(rule="REP002")])
        new, baselined, stale = baseline.match([finding()])
        assert new == []
        assert len(baselined) == 1
        assert [entry.rule_id for entry in stale] == ["REP002"]

    def test_partial_budget_staleness_keeps_residual_count(self):
        baseline = Baseline(entries=(BaselineEntry("REP001", "p.py", "c", count=3),))
        new, baselined, stale = baseline.match(
            [finding(rule="REP001", path="p.py", code="c")]
        )
        assert new == []
        assert stale == [BaselineEntry("REP001", "p.py", "c", count=2)]


class TestRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        baseline = Baseline.from_findings(
            [finding(), finding(line=9), finding(rule="REP003", code="def f(p_x):")]
        )
        target = tmp_path / "baseline.json"
        baseline.write(target)
        assert Baseline.load(target) == baseline

    def test_written_file_is_deterministic_json(self, tmp_path):
        baseline = Baseline.from_findings([finding()])
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        baseline.write(first)
        baseline.write(second)
        assert first.read_text() == second.read_text()
        payload = json.loads(first.read_text())
        assert payload["version"] == 1
        assert payload["findings"][0]["count"] == 1

    def test_load_rejects_unknown_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)

    def test_load_rejects_malformed_entries(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"version": 1, "findings": [{"rule": "REP001"}]})
        )
        with pytest.raises(ValueError, match="malformed"):
            Baseline.load(target)


class TestAddExpireWorkflow:
    """The grandfather-then-fix lifecycle against real linted files."""

    @staticmethod
    def _write_module(tmp_path, body):
        package = tmp_path / "src" / "repro" / "cadt"
        package.mkdir(parents=True, exist_ok=True)
        module = package / "fixture.py"
        module.write_text(body)
        return module

    def test_lifecycle(self, tmp_path):
        module = self._write_module(tmp_path, "import random\n")

        # 1. A violation with no baseline fails the run.
        result = lint_paths([module])
        assert not result.clean
        assert [f.rule_id for f in result.findings] == ["REP001"]

        # 2. Grandfather it: the same run is now clean and fresh.
        baseline = Baseline.from_findings(result.findings)
        grandfathered = lint_paths([module], baseline=baseline)
        assert grandfathered.clean_and_fresh
        assert len(grandfathered.baselined) == 1

        # 3. Unrelated edits that shift the line keep the entry live.
        self._write_module(tmp_path, "\n\n\nimport random\n")
        shifted = lint_paths([module], baseline=baseline)
        assert shifted.clean_and_fresh

        # 4. Fixing the violation makes the entry stale (clean but not
        #    fresh), so --strict-baseline can force its removal.
        self._write_module(tmp_path, "import numpy as np\n")
        fixed = lint_paths([module], baseline=baseline)
        assert fixed.clean
        assert not fixed.clean_and_fresh
        assert [entry.rule_id for entry in fixed.stale_baseline] == ["REP001"]
