"""The ``python -m repro.lint`` command line: exit codes and formats."""

import json

import pytest

from repro.lint.cli import main


@pytest.fixture
def sampling_module(tmp_path):
    """A file whose derived module name sits on the sampling path."""
    package = tmp_path / "src" / "repro" / "cadt"
    package.mkdir(parents=True)
    module = package / "fixture.py"
    module.write_text("import random\n")
    return module


@pytest.fixture
def clean_module(tmp_path):
    package = tmp_path / "src" / "repro" / "cadt"
    package.mkdir(parents=True, exist_ok=True)
    module = package / "clean.py"
    module.write_text("import numpy as np\n\n\ndef f(rng):\n    return rng.random()\n")
    return module


class TestExitCodes:
    def test_clean_run_exits_zero(self, clean_module, capsys):
        assert main([str(clean_module)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, sampling_module, capsys):
        assert main([str(sampling_module)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "1 finding(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_select_is_usage_error(self, clean_module, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(clean_module), "--select", "REP999"])
        assert excinfo.value.code == 2

    def test_corrupt_baseline_exits_two(self, sampling_module, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 7}")
        assert main([str(sampling_module), "--baseline", str(bad)]) == 2


class TestSelect:
    def test_select_runs_only_named_rules(self, sampling_module, capsys):
        assert main([str(sampling_module), "--select", "REP002"]) == 0
        assert main([str(sampling_module), "--select", "rep001"]) == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert rule_id in out


class TestJsonFormat:
    def test_json_payload_structure(self, sampling_module, capsys):
        assert main([str(sampling_module), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "REP001"
        assert entry["path"].endswith("fixture.py")
        assert entry["line"] >= 1


class TestBaselineFlags:
    def test_write_baseline_then_clean(self, sampling_module, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(sampling_module), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert baseline.exists()
        # The grandfathered violation no longer fails the run.
        assert main([str(sampling_module), "--baseline", str(baseline)]) == 0

    def test_strict_baseline_fails_on_stale_entries(
        self, sampling_module, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main([str(sampling_module), "--baseline", str(baseline), "--write-baseline"])
        sampling_module.write_text("import numpy as np\n")
        assert main([str(sampling_module), "--baseline", str(baseline)]) == 0
        assert (
            main(
                [
                    str(sampling_module),
                    "--baseline",
                    str(baseline),
                    "--strict-baseline",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "stale" in out

    def test_verbose_lists_baselined_findings(
        self, sampling_module, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main([str(sampling_module), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        assert main(
            [str(sampling_module), "--baseline", str(baseline), "--verbose"]
        ) == 0
        assert "[baselined]" in capsys.readouterr().out
