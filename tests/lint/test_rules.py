"""Per-rule fixtures: one flagging and one non-flagging case per behaviour.

Every fixture goes through :func:`repro.lint.lint_source` with an explicit
``module`` so package-scoped rules (REP002, REP005) see the module name a
real run would derive from the file path.
"""

import textwrap

from repro.lint import LintConfig, lint_source


def run(source, module="repro.cadt.algorithm", select=None):
    config = LintConfig(select=select)
    return lint_source(
        textwrap.dedent(source), path=f"{module.replace('.', '/')}.py",
        module=module, config=config,
    )


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestRep001Randomness:
    def test_flags_stdlib_random_import(self):
        findings = run("import random\n", select=("REP001",))
        assert rule_ids(findings) == ["REP001"]

    def test_flags_from_random_import(self):
        findings = run("from random import choice\n", select=("REP001",))
        assert rule_ids(findings) == ["REP001"]

    def test_flags_unseeded_default_rng(self):
        findings = run(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            select=("REP001",),
        )
        assert rule_ids(findings) == ["REP001"]
        assert "default_rng()" in findings[0].message

    def test_flags_unseeded_default_rng_via_from_import(self):
        findings = run(
            """
            from numpy.random import default_rng

            def make():
                return default_rng()
            """,
            select=("REP001",),
        )
        assert rule_ids(findings) == ["REP001"]

    def test_allows_seeded_default_rng(self):
        findings = run(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
            select=("REP001",),
        )
        assert findings == []

    def test_allows_keyword_seeded_default_rng(self):
        findings = run(
            """
            import numpy as np

            def make(seed=None):
                return np.random.default_rng(seed=seed)
            """,
            select=("REP001",),
        )
        assert findings == []

    def test_seam_module_is_exempt(self):
        findings = run(
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """,
            module="repro.engine.executor",
            select=("REP001",),
        )
        assert findings == []


class TestRep002NumericSeam:
    def test_flags_math_exp_on_sampling_path(self):
        findings = run(
            """
            import math

            def accept(x):
                return math.exp(-x)
            """,
            select=("REP002",),
        )
        assert rule_ids(findings) == ["REP002"]
        assert "repro._numeric" in findings[0].message

    def test_flags_np_exp_on_sampling_path(self):
        findings = run(
            """
            import numpy as np

            def accept(x):
                return np.exp(-x)
            """,
            select=("REP002",),
        )
        assert rule_ids(findings) == ["REP002"]

    def test_flags_aliased_from_import(self):
        findings = run(
            """
            from math import exp as e

            def accept(x):
                return e(-x)
            """,
            select=("REP002",),
        )
        assert rule_ids(findings) == ["REP002"]

    def test_flags_math_sqrt_but_allows_np_sqrt(self):
        # IEEE 754 requires sqrt to be correctly rounded, so np.sqrt
        # cannot cause scalar/batch divergence; math.sqrt still signals
        # a scalar-only code shape on a sampling path.
        flagged = run("import math\nr = math.sqrt(2.0)\n", select=("REP002",))
        allowed = run("import numpy as np\nr = np.sqrt(2.0)\n", select=("REP002",))
        assert rule_ids(flagged) == ["REP002"]
        assert allowed == []

    def test_allows_numeric_seam_calls(self):
        findings = run(
            """
            from repro._numeric import exp as _exp

            def accept(x):
                return _exp(-x)
            """,
            select=("REP002",),
        )
        assert findings == []

    def test_module_outside_sampling_path_is_exempt(self):
        findings = run(
            "import math\nr = math.exp(1.0)\n",
            module="repro.core.bounds",
            select=("REP002",),
        )
        assert findings == []

    def test_numeric_seam_module_is_exempt(self):
        findings = run(
            "import numpy as np\n\n\ndef exp(x):\n    return np.exp(x)\n",
            module="repro._numeric",
            select=("REP002",),
        )
        assert findings == []


class TestRep003Validation:
    def test_flags_unvalidated_probability_parameter(self):
        findings = run(
            """
            def scale(p_failure):
                return 1.0 - p_failure
            """,
            select=("REP003",),
        )
        assert rule_ids(findings) == ["REP003"]
        assert "p_failure" in findings[0].message

    def test_flags_sensitivity_and_prob_suffix_names(self):
        findings = run(
            """
            def mix(sensitivity, miss_prob):
                return sensitivity * miss_prob
            """,
            select=("REP003",),
        )
        assert rule_ids(findings) == ["REP003"]

    def test_allows_validated_parameter(self):
        findings = run(
            """
            from repro._validation import check_probability

            def scale(p_failure):
                p_failure = check_probability(p_failure, "p_failure")
                return 1.0 - p_failure
            """,
            select=("REP003",),
        )
        assert findings == []

    def test_allows_method_style_validator_call(self):
        findings = run(
            """
            from repro import _validation

            def scale(p_failure):
                return 1.0 - _validation.check_probability(p_failure, "p")
            """,
            select=("REP003",),
        )
        assert findings == []

    def test_private_helpers_are_exempt(self):
        findings = run(
            """
            def _scale(p_failure):
                return 1.0 - p_failure
            """,
            select=("REP003",),
        )
        assert findings == []

    def test_non_probability_parameters_are_exempt(self):
        findings = run(
            """
            def scale(factor, count):
                return factor * count
            """,
            select=("REP003",),
        )
        assert findings == []


class TestRep004Comparisons:
    def test_flags_float_equality_on_probability_name(self):
        findings = run(
            """
            def check(p_failure):
                from repro._validation import check_probability
                check_probability(p_failure, "p")
                if p_failure == 0.5:
                    return True
                return False
            """,
            select=("REP004",),
        )
        assert rule_ids(findings) == ["REP004"]

    def test_flags_inequality_on_probability_attribute(self):
        findings = run(
            """
            def check(obj):
                return obj.sensitivity != 1.0
            """,
            select=("REP004",),
        )
        assert rule_ids(findings) == ["REP004"]

    def test_allows_ordered_comparisons(self):
        findings = run(
            """
            def check(obj):
                return obj.p_failure <= 0.0
            """,
            select=("REP004",),
        )
        assert findings == []

    def test_allows_equality_against_exempt_constants(self):
        # String/None sentinels are not float comparisons.
        findings = run(
            """
            def check(p_mode):
                return p_mode == "auto" or p_mode == None
            """,
            select=("REP004",),
        )
        assert findings == []

    def test_flags_mutable_default_arguments(self):
        findings = run(
            """
            def collect(values=[], table={}, seen=set()):
                return values, table, seen
            """,
            select=("REP004",),
        )
        assert rule_ids(findings) == ["REP004", "REP004", "REP004"]

    def test_flags_mutable_default_in_keyword_only_args(self):
        findings = run(
            """
            def collect(*, values=list()):
                return values
            """,
            select=("REP004",),
        )
        assert rule_ids(findings) == ["REP004"]

    def test_allows_immutable_defaults(self):
        findings = run(
            """
            def collect(values=(), name="x", count=0, other=None):
                return values, name, count, other
            """,
            select=("REP004",),
        )
        assert findings == []


class TestRep005SeedThreading:
    def test_flags_decide_without_seed_or_rng(self):
        findings = run(
            """
            class Reader:
                def decide(self, case):
                    return case.is_cancer
            """,
            select=("REP005",),
        )
        assert rule_ids(findings) == ["REP005"]

    def test_flags_evaluate_prefix_without_seed_or_rng(self):
        findings = run(
            """
            def evaluate_policy(cases):
                return len(cases)
            """,
            select=("REP005",),
        )
        assert rule_ids(findings) == ["REP005"]

    def test_flags_accepted_but_unused_rng(self):
        findings = run(
            """
            def compare_systems(a, b, rng):
                return a - b
            """,
            select=("REP005",),
        )
        assert rule_ids(findings) == ["REP005"]
        assert "never" in findings[0].message

    def test_allows_threaded_and_used_rng(self):
        findings = run(
            """
            def decide(case, rng):
                return rng.random() < case.p_detect
            """,
            select=("REP005",),
        )
        assert findings == []

    def test_allows_seed_parameter(self):
        findings = run(
            """
            def evaluate_run(trial, seed=None):
                return trial.run(seed)
            """,
            select=("REP005",),
        )
        assert findings == []

    def test_protocol_stub_checked_for_parameter_only(self):
        findings = run(
            """
            class Decider:
                def decide(self, case, rng):
                    ...
            """,
            select=("REP005",),
        )
        assert findings == []

    def test_property_and_private_names_are_exempt(self):
        findings = run(
            """
            class Policy:
                @property
                def decide(self):
                    return self._decide

                def _decide(self, case):
                    return case
            """,
            select=("REP005",),
        )
        assert findings == []

    def test_module_outside_seed_threading_packages_is_exempt(self):
        findings = run(
            """
            def evaluate(model):
                return model.p_system_failure
            """,
            module="repro.core.extrapolation",
            select=("REP005",),
        )
        assert findings == []

    def test_service_handlers_are_covered(self):
        # The always-on service is a seed-threading package: a request
        # handler that evaluates without threading the request seed
        # would silently break coalesced/standalone bit-identity.
        findings = run(
            """
            class Service:
                async def evaluate(self, workload, system):
                    return self._dispatch(workload, system)
            """,
            module="repro.service.app",
            select=("REP005",),
        )
        assert rule_ids(findings) == ["REP005"]

    def test_service_handler_threading_seed_passes(self):
        findings = run(
            """
            class Service:
                async def evaluate(self, workload, system, *, seed):
                    return self._dispatch(workload, system, seed)
            """,
            module="repro.service.app",
            select=("REP005",),
        )
        assert findings == []

    def test_orchestration_follow_launcher_without_seed_is_flagged(self):
        # follow* streaming launchers in orchestration packages are held
        # to the same bar as run*/resume*: they own the master seed.
        findings = run(
            """
            def follow_cells(journal, grid):
                return journal.tail(grid)
            """,
            module="repro.sweep.runner",
            select=("REP005",),
        )
        assert rule_ids(findings) == ["REP005"]
        assert "follow_cells" in findings[0].message

    def test_orchestration_follow_launcher_threading_seed_passes(self):
        findings = run(
            """
            def follow_cells(journal, grid, *, seed):
                return journal.tail(grid, seed)
            """,
            module="repro.sweep.runner",
            select=("REP005",),
        )
        assert findings == []

    def test_follow_prefix_ignored_outside_orchestration_packages(self):
        # A deterministic file tailer (repro.trial) takes no seed and
        # must not be forced to grow one.
        findings = run(
            """
            def follow_records_csv(path):
                return open(path).readlines()
            """,
            module="repro.trial.storage",
            select=("REP005",),
        )
        assert findings == []


class TestRep006Observability:
    def test_flags_random_import_inside_obs(self):
        findings = run(
            "import random\n", module="repro.obs.metrics", select=("REP006",)
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_numpy_random_import_inside_obs(self):
        findings = run(
            "from numpy.random import default_rng\n",
            module="repro.obs.spans",
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_seeded_default_rng_inside_obs(self):
        # Even *seeded* construction is banned inside instrumentation:
        # the observability layer has no business holding a generator.
        findings = run(
            """
            import numpy as np

            def jitter():
                return np.random.default_rng(7)
            """,
            module="repro.obs.report",
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_generator_method_call_inside_obs(self):
        findings = run(
            """
            def sample_ids(rng):
                return rng.integers(0, 10)
            """,
            module="repro.obs.metrics",
            select=("REP006",),
        )
        # Both the rng-named parameter and the sampling call are findings.
        assert rule_ids(findings) == ["REP006", "REP006"]

    def test_flags_generator_parameter_inside_obs(self):
        findings = run(
            """
            def record(name, generator):
                return (name, generator)
            """,
            module="repro.obs.instrumentation",
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]
        assert "generator" in findings[0].message

    def test_allows_pure_timing_code_inside_obs(self):
        findings = run(
            """
            import time

            def stamp(counts):
                return (time.perf_counter(), sum(counts.values()))
            """,
            module="repro.obs.spans",
            select=("REP006",),
        )
        assert findings == []

    def test_flags_generator_positional_arg_to_instrumentation(self):
        findings = run(
            """
            def evaluate(obs, rng):
                obs.count("draws", rng)
            """,
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_generator_passed_to_timeline_mark(self):
        # mark() feeds the ring-buffered timeline; a generator smuggled
        # through it is as bad as one through count()/gauge().
        findings = run(
            """
            def evaluate(obs, rng):
                obs.mark("monitor.checkpoint", rng)
            """,
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_allows_scalar_mark_values(self):
        findings = run(
            """
            def evaluate(obs, shard_index):
                obs.mark("sweep.shard.completed", shard_index)
            """,
            select=("REP006",),
        )
        assert findings == []

    def test_streaming_monitoring_plane_is_an_observability_package(self):
        # repro.analysis.streaming publishes through repro.obs and must
        # stay a pure observer: no randomness of any shape inside it.
        findings = run(
            "import random\n",
            module="repro.analysis.streaming",
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_streaming_plane_rejects_generator_parameters(self):
        findings = run(
            """
            def checkpoint(counts, rng):
                return (counts, rng)
            """,
            module="repro.analysis.streaming",
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_generator_span_attribute(self):
        findings = run(
            """
            def evaluate(self, rng):
                with self._obs.span("sample", rng=rng):
                    return rng.random()
            """,
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_flags_generator_through_get_instrumentation(self):
        findings = run(
            """
            from repro.obs import get_instrumentation

            def trace(generator):
                get_instrumentation().observe("state", generator)
            """,
            select=("REP006",),
        )
        assert rule_ids(findings) == ["REP006"]

    def test_allows_derived_scalars_to_instrumentation(self):
        findings = run(
            """
            def evaluate(obs, rng, draws):
                obs.count("posterior.rows", draws)
                with obs.span("sample", draws=draws):
                    return rng.normal(size=draws)
            """,
            select=("REP006",),
        )
        assert findings == []

    def test_allows_generator_to_non_instrumentation_call(self):
        findings = run(
            """
            def evaluate(sampler, rng):
                return sampler.sample(rng)
            """,
            select=("REP006",),
        )
        assert findings == []


class TestEngineBasics:
    def test_syntax_error_yields_synthetic_finding(self):
        findings = run("def broken(:\n")
        assert rule_ids(findings) == ["SYNTAX"]

    def test_findings_are_sorted_by_location(self):
        findings = run(
            """
            import random
            import math

            def f(x):
                return math.exp(x)
            """,
        )
        assert findings == sorted(findings)

    def test_select_restricts_rules(self):
        source = """
        import random
        import math

        def f(x):
            return math.exp(x)
        """
        assert rule_ids(run(source, select=("REP001",))) == ["REP001"]
        assert rule_ids(run(source, select=("REP002",))) == ["REP002"]
        assert set(rule_ids(run(source))) == {"REP001", "REP002"}
