"""replint's self-check: the shipped tree must satisfy its own rules.

This is the pytest face of the CI gate: linting ``src/repro`` against the
committed baseline must produce no new findings *and* no stale baseline
entries.  If a fix lands without expiring its baseline entry — or a new
violation lands without a fix — this test fails before CI does.
"""

from pathlib import Path

from repro.lint import DEFAULT_BASELINE_NAME, Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"
BASELINE_FILE = REPO_ROOT / DEFAULT_BASELINE_NAME


def test_source_tree_is_clean_against_committed_baseline():
    baseline = Baseline.load(BASELINE_FILE)
    result = lint_paths([SOURCE_TREE], baseline=baseline)
    assert result.files_checked > 50  # the whole package was scanned
    new = "\n".join(
        f"  {f.location()}: {f.rule_id} {f.message}" for f in result.findings
    )
    stale = "\n".join(
        f"  {e.path}: {e.rule_id} ({e.source_line!r})" for e in result.stale_baseline
    )
    assert result.findings == [], f"new replint findings:\n{new}"
    assert result.stale_baseline == [], (
        f"stale baseline entries (violations fixed — re-run "
        f"`python -m repro.lint src --write-baseline`):\n{stale}"
    )


def test_committed_baseline_round_trips(tmp_path):
    """The committed file is byte-identical to what replint would write."""
    baseline = Baseline.load(BASELINE_FILE)
    rewritten = tmp_path / "baseline.json"
    baseline.write(rewritten)
    assert rewritten.read_text() == BASELINE_FILE.read_text()
