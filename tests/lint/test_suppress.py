"""Inline suppression directives: line scope, file scope, rule lists."""

import textwrap

from repro.lint import LintConfig, lint_source
from repro.lint.suppress import Suppressions


def run(source, module="repro.cadt.algorithm", select=None):
    return lint_source(
        textwrap.dedent(source), path="fixture.py", module=module,
        config=LintConfig(select=select),
    )


class TestLineDirectives:
    def test_disable_on_offending_line_silences_finding(self):
        findings = run("import random  # replint: disable=REP001\n")
        assert findings == []

    def test_disable_on_other_line_does_not_silence(self):
        findings = run(
            """
            # replint: disable=REP001
            import random
            """
        )
        assert [f.rule_id for f in findings] == ["REP001"]

    def test_disable_is_rule_specific(self):
        findings = run(
            "import random  # replint: disable=REP002\n", select=("REP001",)
        )
        assert [f.rule_id for f in findings] == ["REP001"]

    def test_bare_disable_silences_all_rules_on_line(self):
        source = """
        import math

        def f(p_failure):  # replint: disable
            return math.exp(p_failure)
        """
        findings = run(source)
        # The REP003 finding anchors on the def line and is suppressed;
        # the math.exp call on the next line still fires.
        assert [f.rule_id for f in findings] == ["REP002"]

    def test_comma_separated_rule_list(self):
        findings = run(
            """
            def decide(case, p_detect):  # replint: disable=REP003, REP005
                return case
            """
        )
        assert findings == []


class TestFileDirectives:
    def test_disable_file_silences_rule_everywhere(self):
        findings = run(
            """
            # replint: disable-file=REP001
            import random
            from random import choice
            """
        )
        assert findings == []

    def test_disable_file_leaves_other_rules_active(self):
        findings = run(
            """
            # replint: disable-file=REP001
            import random
            import math

            def f(x):
                return math.exp(x)
            """
        )
        assert [f.rule_id for f in findings] == ["REP002"]


class TestDirectiveParsing:
    def test_directive_inside_string_is_ignored(self):
        suppressions = Suppressions.from_source(
            'text = "# replint: disable=REP001"\nimport random\n'
        )
        assert not suppressions.file_rules
        assert not suppressions.line_rules

    def test_directive_after_code_comment_chain(self):
        source = "import random  # legacy  # replint: disable=REP001\n"
        findings = run(source)
        assert findings == []

    def test_unparseable_source_still_scans_directives(self):
        # tokenize fails on the broken line; the fallback scanner must
        # still pick up directives so a syntax error cannot un-suppress.
        suppressions = Suppressions.from_source(
            "def broken(:\nimport random  # replint: disable=REP001\n"
        )
        assert 2 in suppressions.line_rules
