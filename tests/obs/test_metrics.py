"""Unit tests for the metrics half of :mod:`repro.obs`."""

import threading

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry, NullMetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.increment(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_tracks_count_total_min_max(self):
        histogram = Histogram("h")
        for value in (0.2, 0.1, 0.4):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.7)
        assert summary["mean"] == pytest.approx(0.7 / 3)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.4)

    def test_empty_summary_is_zeroed(self):
        summary = Histogram("h").summary()
        assert summary == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
        }

    def test_quantiles_approximate_true_percentiles(self):
        histogram = Histogram("h")
        values = [i / 1000.0 for i in range(1, 1001)]
        for value in values:
            histogram.record(value)
        # Log-spaced buckets promise ~4% relative error.
        assert histogram.quantile(0.50) == pytest.approx(0.500, rel=0.05)
        assert histogram.quantile(0.90) == pytest.approx(0.900, rel=0.05)
        assert histogram.quantile(0.99) == pytest.approx(0.990, rel=0.05)
        summary = histogram.summary()
        assert summary["p50"] == pytest.approx(0.500, rel=0.05)
        assert summary["p99"] == pytest.approx(0.990, rel=0.05)

    def test_quantile_extremes_clamp_to_observed_range(self):
        histogram = Histogram("h")
        for value in (0.5, 1.0, 2.0):
            histogram.record(value)
        assert histogram.quantile(0.0) == pytest.approx(0.5, rel=0.05)
        assert histogram.quantile(1.0) == pytest.approx(2.0, rel=0.05)

    def test_quantile_handles_nonpositive_observations(self):
        histogram = Histogram("h")
        for value in (-1.0, 0.0, 1.0, 2.0):
            histogram.record(value)
        # The two non-positive observations occupy the lowest ranks and
        # resolve to the recorded minimum.
        assert histogram.quantile(0.25) == pytest.approx(-1.0)
        assert histogram.quantile(1.0) == pytest.approx(2.0, rel=0.05)

    def test_quantile_single_observation(self):
        histogram = Histogram("h")
        histogram.record(0.125)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.125, rel=0.05)

    def test_quantile_rejects_out_of_range(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError, match="quantile"):
            histogram.quantile(1.5)

    def test_quantile_empty_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0


class TestMetricsRegistry:
    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_convenience_entry_points(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 2)
        registry.set_gauge("workers", 4)
        registry.observe("wall", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3.0}
        assert snapshot["gauges"] == {"workers": 4.0}
        assert snapshot["histograms"]["wall"]["count"] == 1

    def test_merge_counters_folds_worker_deltas(self):
        registry = MetricsRegistry()
        registry.increment("chunks", 2)
        registry.merge_counters({"chunks": 3, "bytes": 128})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"bytes": 128.0, "chunks": 5.0}

    def test_snapshot_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.increment("z")
        registry.increment("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        snapshot["counters"]["a"] = 99
        assert registry.counter("a").value == 1.0

    def test_concurrent_increments_do_not_drop_counts(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.increment("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 4000.0


class TestNullMetricsRegistry:
    def test_every_call_is_a_no_op(self):
        registry = NullMetricsRegistry()
        registry.increment("hits", 10)
        registry.set_gauge("workers", 4)
        registry.observe("wall", 1.0)
        registry.merge_counters({"hits": 5})
        registry.mark("event")
        assert registry.snapshot() == {
            "schema": 2,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timeline": [],
        }
        assert registry.timeline.snapshot() == []

    def test_instruments_are_shared_inert_twins(self):
        registry = NULL_REGISTRY
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.increment(5)
        assert counter.value == 0.0
        gauge = registry.gauge("g")
        gauge.set(3)
        assert gauge.value == 0.0
        histogram = registry.histogram("h")
        histogram.record(1.0)
        assert histogram.count == 0
