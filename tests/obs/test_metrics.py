"""Unit tests for the metrics half of :mod:`repro.obs`."""

import threading

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry, NullMetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.increment(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("g")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_tracks_count_total_min_max(self):
        histogram = Histogram("h")
        for value in (0.2, 0.1, 0.4):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.7)
        assert summary["mean"] == pytest.approx(0.7 / 3)
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.4)

    def test_empty_summary_is_zeroed(self):
        summary = Histogram("h").summary()
        assert summary == {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}


class TestMetricsRegistry:
    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_convenience_entry_points(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 2)
        registry.set_gauge("workers", 4)
        registry.observe("wall", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3.0}
        assert snapshot["gauges"] == {"workers": 4.0}
        assert snapshot["histograms"]["wall"]["count"] == 1

    def test_merge_counters_folds_worker_deltas(self):
        registry = MetricsRegistry()
        registry.increment("chunks", 2)
        registry.merge_counters({"chunks": 3, "bytes": 128})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"bytes": 128.0, "chunks": 5.0}

    def test_snapshot_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.increment("z")
        registry.increment("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        snapshot["counters"]["a"] = 99
        assert registry.counter("a").value == 1.0

    def test_concurrent_increments_do_not_drop_counts(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.increment("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 4000.0


class TestNullMetricsRegistry:
    def test_every_call_is_a_no_op(self):
        registry = NullMetricsRegistry()
        registry.increment("hits", 10)
        registry.set_gauge("workers", 4)
        registry.observe("wall", 1.0)
        registry.merge_counters({"hits": 5})
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_instruments_are_shared_inert_twins(self):
        registry = NULL_REGISTRY
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.increment(5)
        assert counter.value == 0.0
        gauge = registry.gauge("g")
        gauge.set(3)
        assert gauge.value == 0.0
        histogram = registry.histogram("h")
        histogram.record(1.0)
        assert histogram.count == 0
