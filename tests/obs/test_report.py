"""Unit tests for :class:`repro.obs.RunReport` and its exports."""

import json

import pytest

from repro.obs import REPORT_SCHEMA_VERSION, Instrumentation, RunReport, build_run_report


def instrumented_run():
    obs = Instrumentation(name="demo")
    with obs.span("runtime.evaluate", system="s0"):
        with obs.span("runtime.tally"):
            pass
    with obs.span("runtime.evaluate", system="s1"):
        pass
    obs.count("runtime.workload_cache.hit")
    obs.count("runtime.degraded.no_shm", 2)
    obs.gauge("runtime.pool.workers", 4)
    obs.observe("runtime.chunk.wall_s", 0.25)
    return obs


class TestBuildRunReport:
    def test_snapshots_name_metrics_and_spans(self):
        report = build_run_report(instrumented_run())
        assert report.name == "demo"
        assert report.duration_s > 0.0
        assert report.created  # ISO timestamp, non-empty
        assert report.metrics["counters"]["runtime.workload_cache.hit"] == 1.0
        assert len(report.spans) == 3

    def test_name_override(self):
        report = build_run_report(instrumented_run(), name="simulate")
        assert report.name == "simulate"

    def test_instrumentation_report_shortcut(self):
        obs = instrumented_run()
        assert obs.report().name == "demo"
        assert obs.report(name="other").name == "other"


class TestSpanSummaries:
    def test_aggregates_per_name_sorted_by_total_time(self):
        report = RunReport(
            name="r",
            created="",
            duration_s=1.0,
            spans=[
                {"name": "slow", "duration_s": 0.6, "attrs": {}, "pid": 1},
                {"name": "fast", "duration_s": 0.1, "attrs": {}, "pid": 1},
                {"name": "slow", "duration_s": 0.4, "attrs": {}, "pid": 2},
            ],
        )
        slow, fast = report.span_summaries()
        assert (slow.name, slow.count) == ("slow", 2)
        assert slow.total_s == pytest.approx(1.0)
        assert slow.mean_s == pytest.approx(0.5)
        assert slow.max_s == pytest.approx(0.6)
        assert (fast.name, fast.count) == ("fast", 1)

    def test_empty_report_has_no_summaries(self):
        report = RunReport(name="r", created="", duration_s=0.0)
        assert report.span_summaries() == []


class TestDegradedEvents:
    def test_extracts_degraded_counters_only(self):
        report = build_run_report(instrumented_run())
        assert report.degraded_events() == {"runtime.degraded.no_shm": 2.0}

    def test_empty_when_nothing_degraded(self):
        obs = Instrumentation()
        obs.count("runtime.workload_cache.hit")
        assert build_run_report(obs).degraded_events() == {}


class TestJsonRoundTrip:
    def test_as_dict_is_schema_stamped(self):
        report = build_run_report(instrumented_run())
        body = report.as_dict()
        assert body["schema"] == REPORT_SCHEMA_VERSION
        assert json.loads(report.to_json()) == body

    def test_save_and_from_json_round_trip(self, tmp_path):
        report = build_run_report(instrumented_run())
        path = report.save(tmp_path / "run-report.json")
        loaded = RunReport.from_json(path.read_text())
        assert loaded == report


class TestTextRendering:
    def test_sections_present_for_a_full_report(self):
        text = build_run_report(instrumented_run()).to_text()
        assert "run report: demo" in text
        assert "where the time went (spans):" in text
        assert "runtime.evaluate" in text
        assert "counters:" in text
        assert "runtime.workload_cache.hit" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "degraded paths fired:" in text
        assert "runtime.degraded.no_shm" in text
        # Degraded counters live in their own section, not the counter table.
        counters_section = text.split("counters:")[1].split("gauges:")[0]
        assert "degraded" not in counters_section

    def test_clean_run_says_none_degraded(self):
        obs = Instrumentation()
        with obs.span("region"):
            pass
        assert "degraded paths fired: none" in build_run_report(obs).to_text()
