"""Unit tests for spans, the collector, and the ambient instrumentation."""

import os

import pytest

from repro.obs import (
    NULL_INSTRUMENTATION,
    NULL_SPAN_COLLECTOR,
    Instrumentation,
    NullInstrumentation,
    SpanCollector,
    SpanRecord,
    get_instrumentation,
    use_instrumentation,
)


class TestSpanCollector:
    def test_span_records_name_attrs_duration_pid(self):
        collector = SpanCollector()
        with collector.span("region", chunk=3):
            pass
        (record,) = collector.records()
        assert record.name == "region"
        assert record.attrs == {"chunk": 3}
        assert record.duration_s >= 0.0
        assert record.pid == os.getpid()

    def test_set_attaches_attributes_mid_span(self):
        collector = SpanCollector()
        with collector.span("region") as span:
            span.set(chunks=12, chunk_size=512)
        (record,) = collector.records()
        assert record.attrs == {"chunks": 12, "chunk_size": 512}

    def test_exception_is_recorded_and_propagates(self):
        collector = SpanCollector()
        with pytest.raises(RuntimeError):
            with collector.span("region"):
                raise RuntimeError("boom")
        (record,) = collector.records()
        assert record.attrs["error"] == "RuntimeError"

    def test_ingest_round_trips_payload_tuples(self):
        source = SpanCollector()
        with source.span("worker.chunk", start=0, stop=64):
            pass
        payload = [record.as_payload() for record in source.records()]
        parent = SpanCollector()
        parent.ingest(payload)
        (record,) = parent.records()
        assert record.name == "worker.chunk"
        assert record.attrs == {"start": 0, "stop": 64}
        assert record.pid == os.getpid()

    def test_clear_and_len(self):
        collector = SpanCollector()
        with collector.span("a"):
            pass
        assert len(collector) == 1
        collector.clear()
        assert len(collector) == 0
        assert collector.records() == ()

    def test_record_as_dict_is_json_simple(self):
        record = SpanRecord(name="r", duration_s=0.5, attrs={"k": 1}, pid=7)
        assert record.as_dict() == {
            "name": "r",
            "duration_s": 0.5,
            "attrs": {"k": 1},
            "pid": 7,
        }


class TestNullSpanCollector:
    def test_shared_no_op_span(self):
        span_a = NULL_SPAN_COLLECTOR.span("a", x=1)
        span_b = NULL_SPAN_COLLECTOR.span("b")
        assert span_a is span_b
        with span_a as span:
            span.set(y=2)
        assert NULL_SPAN_COLLECTOR.records() == ()
        assert len(NULL_SPAN_COLLECTOR) == 0


class TestInstrumentation:
    def test_facade_routes_to_backends(self):
        obs = Instrumentation(name="test")
        obs.count("events", 2)
        obs.gauge("level", 3)
        obs.observe("wall", 0.25)
        with obs.span("region", k=1):
            pass
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"] == {"events": 2.0}
        assert snapshot["gauges"] == {"level": 3.0}
        assert [record.name for record in obs.spans.records()] == ["region"]
        assert obs.elapsed() > 0.0

    def test_ingest_spans_accepts_empty_payload(self):
        obs = Instrumentation()
        obs.ingest_spans([])
        assert obs.spans.records() == ()

    def test_null_instrumentation_is_disabled_and_inert(self):
        assert NULL_INSTRUMENTATION.enabled is False
        assert Instrumentation().enabled is True
        obs = NullInstrumentation()
        obs.count("events")
        obs.gauge("level", 1)
        obs.observe("wall", 1.0)
        obs.ingest_spans([("r", {}, 0.1, 1)])
        obs.mark("event", 7)
        assert obs.metrics.snapshot() == {
            "schema": 2,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timeline": [],
        }
        assert obs.spans.records() == ()
        assert obs.elapsed() == 0.0


class TestAmbientInstrumentation:
    def test_default_is_the_null_singleton(self):
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_use_instrumentation_sets_and_restores(self):
        obs = Instrumentation(name="scoped")
        with use_instrumentation(obs) as active:
            assert active is obs
            assert get_instrumentation() is obs
        assert get_instrumentation() is NULL_INSTRUMENTATION

    def test_none_leaves_ambient_unchanged(self):
        outer = Instrumentation(name="outer")
        with use_instrumentation(outer):
            with use_instrumentation(None) as active:
                assert active is outer
                assert get_instrumentation() is outer
            assert get_instrumentation() is outer

    def test_restores_on_exception(self):
        obs = Instrumentation()
        with pytest.raises(ValueError):
            with use_instrumentation(obs):
                raise ValueError("boom")
        assert get_instrumentation() is NULL_INSTRUMENTATION
