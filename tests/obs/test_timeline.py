"""The ring-buffered timeline and the Prometheus text exposition."""

import pytest

from repro.obs import (
    METRICS_SCHEMA_VERSION,
    NULL_TIMELINE,
    Instrumentation,
    MetricsRegistry,
    MetricsTimeline,
    prometheus_text,
)


class TestMetricsTimeline:
    def test_marks_are_ordered_and_numbered(self):
        timeline = MetricsTimeline(capacity=8)
        timeline.mark("a")
        timeline.mark("b", 2.5)
        events = timeline.events()
        assert [e.name for e in events] == ["a", "b"]
        assert [e.seq for e in events] == [1, 2]
        assert events[1].value == 2.5
        assert events[0].time_s > 0.0

    def test_ring_buffer_evicts_oldest(self):
        timeline = MetricsTimeline(capacity=3)
        for i in range(5):
            timeline.mark(f"e{i}")
        events = timeline.events()
        assert [e.name for e in events] == ["e2", "e3", "e4"]
        # Sequence numbers survive eviction: they keep counting.
        assert [e.seq for e in events] == [3, 4, 5]
        assert timeline.last_seq == 5
        assert len(timeline) == 3

    def test_incremental_polling_by_sequence(self):
        timeline = MetricsTimeline()
        timeline.mark("a")
        cursor = timeline.last_seq
        timeline.mark("b")
        timeline.mark("c")
        fresh = timeline.events(since_seq=cursor)
        assert [e.name for e in fresh] == ["b", "c"]

    def test_snapshot_is_json_ready(self):
        timeline = MetricsTimeline()
        timeline.mark("a", 3)
        (payload,) = timeline.snapshot()
        assert payload["name"] == "a"
        assert payload["value"] == 3.0
        assert payload["seq"] == 1
        assert payload["time_s"] > 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            MetricsTimeline(capacity=0)

    def test_null_timeline_is_inert(self):
        event = NULL_TIMELINE.mark("a")
        assert event.seq == 0
        assert NULL_TIMELINE.events() == ()
        assert NULL_TIMELINE.snapshot() == []
        assert len(NULL_TIMELINE) == 0


class TestRegistryTimeline:
    def test_registry_mark_lands_in_snapshot(self):
        registry = MetricsRegistry()
        registry.mark("sweep.shard.completed", 4)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA_VERSION
        assert snapshot["timeline"][0]["name"] == "sweep.shard.completed"
        assert snapshot["timeline"][0]["value"] == 4.0

    def test_instrumentation_mark_delegates(self):
        obs = Instrumentation("t")
        obs.mark("checkpoint", 128)
        events = obs.metrics.timeline.events()
        assert [e.name for e in events] == ["checkpoint"]


class TestPrometheusText:
    def test_renders_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.increment("service.requests", 3)
        registry.set_gauge("monitor.alarms.tripped", 1)
        registry.observe("service.latency_s", 0.25)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE service_requests counter" in text
        assert "service_requests 3" in text
        assert "# TYPE monitor_alarms_tripped gauge" in text
        assert "monitor_alarms_tripped 1" in text
        assert "# TYPE service_latency_s summary" in text
        assert 'service_latency_s{quantile="0.5"}' in text
        assert "service_latency_s_count 1" in text
        assert text.endswith("\n")

    def test_sanitises_monitor_style_names(self):
        text = prometheus_text({"gauges": {"easy/PHf|Mf": 0.5}})
        assert "easy_PHf_Mf 0.5" in text

    def test_prefix_and_empty_snapshot(self):
        assert prometheus_text({}) == ""
        text = prometheus_text({"counters": {"hits": 1}}, prefix="repro_")
        assert "repro_hits 1" in text

    def test_leading_digit_is_escaped(self):
        text = prometheus_text({"counters": {"9lives": 1}})
        assert "_9lives 1" in text
