"""Tests for repro.rbd.blocks (exact RBD evaluation)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ProbabilityError, StructureError
from repro.rbd import Component, KOutOfN, Parallel, Series

unit_floats = st.floats(min_value=0.0, max_value=1.0)


class TestComponent:
    def test_failure_probability_is_own(self):
        block = Component("a")
        assert block.failure_probability({"a": 0.3}) == pytest.approx(0.3)

    def test_works_follows_state(self):
        block = Component("a")
        assert block.works({"a": True})
        assert not block.works({"a": False})

    def test_missing_state_raises(self):
        with pytest.raises(StructureError):
            Component("a").works({})

    def test_missing_probability_raises(self):
        with pytest.raises(StructureError):
            Component("a").failure_probability({})

    def test_invalid_probability_raises(self):
        with pytest.raises(ProbabilityError):
            Component("a").failure_probability({"a": 1.5})

    def test_empty_name_rejected(self):
        with pytest.raises(StructureError):
            Component("")


class TestSeries:
    def test_fails_if_any_fails(self):
        block = Series([Component("a"), Component("b")])
        assert block.failure_probability({"a": 0.1, "b": 0.2}) == pytest.approx(
            1 - 0.9 * 0.8
        )

    def test_works_requires_all(self):
        block = Series([Component("a"), Component("b")])
        assert block.works({"a": True, "b": True})
        assert not block.works({"a": True, "b": False})

    def test_empty_rejected(self):
        with pytest.raises(StructureError):
            Series([])

    def test_rshift_sugar(self):
        block = Component("a") >> Component("b")
        assert isinstance(block, Series)
        assert block.component_names() == {"a", "b"}


class TestParallel:
    def test_fails_only_if_all_fail(self):
        block = Parallel([Component("a"), Component("b")])
        assert block.failure_probability({"a": 0.1, "b": 0.2}) == pytest.approx(0.02)

    def test_works_if_any_works(self):
        block = Parallel([Component("a"), Component("b")])
        assert block.works({"a": False, "b": True})
        assert not block.works({"a": False, "b": False})

    def test_or_sugar(self):
        block = Component("a") | Component("b")
        assert isinstance(block, Parallel)

    def test_non_block_child_rejected(self):
        with pytest.raises(StructureError):
            Parallel([Component("a"), "b"])  # type: ignore[list-item]


class TestKOutOfN:
    def test_two_of_three(self):
        block = KOutOfN(2, [Component("a"), Component("b"), Component("c")])
        p = {"a": 0.1, "b": 0.1, "c": 0.1}
        # Works iff >= 2 of 3 work: 3*(0.9^2*0.1) + 0.9^3
        expected_success = 3 * 0.81 * 0.1 + 0.729
        assert block.failure_probability(p) == pytest.approx(1 - expected_success)

    def test_one_of_n_equals_parallel(self):
        children = [Component("a"), Component("b"), Component("c")]
        k_block = KOutOfN(1, children)
        p_block = Parallel(children)
        probs = {"a": 0.2, "b": 0.5, "c": 0.7}
        assert k_block.failure_probability(probs) == pytest.approx(
            p_block.failure_probability(probs)
        )

    def test_n_of_n_equals_series(self):
        children = [Component("a"), Component("b")]
        k_block = KOutOfN(2, children)
        s_block = Series(children)
        probs = {"a": 0.2, "b": 0.5}
        assert k_block.failure_probability(probs) == pytest.approx(
            s_block.failure_probability(probs)
        )

    def test_works_counting(self):
        block = KOutOfN(2, [Component("a"), Component("b"), Component("c")])
        assert block.works({"a": True, "b": True, "c": False})
        assert not block.works({"a": True, "b": False, "c": False})

    def test_invalid_k_rejected(self):
        with pytest.raises(StructureError):
            KOutOfN(0, [Component("a")])
        with pytest.raises(StructureError):
            KOutOfN(3, [Component("a"), Component("b")])


class TestRepeatedComponents:
    def test_repeated_component_factored_exactly(self):
        """(a||b) >> (a||c): 'a' shared; naive per-subtree product is wrong."""
        shared = Parallel([Component("a"), Component("b")]) >> Parallel(
            [Component("a"), Component("c")]
        )
        probs = {"a": 0.5, "b": 0.5, "c": 0.5}
        # Exact by conditioning on a: a works (p .5) -> system works iff True
        # (both parallels contain a); a fails -> need b AND c: 0.25.
        expected_success = 0.5 * 1.0 + 0.5 * 0.25
        assert shared.success_probability(probs) == pytest.approx(expected_success)

    def test_repeated_equals_truth_table(self):
        shared = Parallel([Component("a"), Component("b")]) >> Parallel(
            [Component("a"), Component("c")]
        )
        probs = {"a": 0.3, "b": 0.6, "c": 0.8}
        total = 0.0
        for states in itertools.product([True, False], repeat=3):
            state = dict(zip("abc", states))
            weight = 1.0
            for name, up in state.items():
                weight *= (1 - probs[name]) if up else probs[name]
            if shared.works(state):
                total += weight
        assert shared.success_probability(probs) == pytest.approx(total)

    def test_component_in_series_with_itself(self):
        block = Component("a") >> Component("a")
        assert block.failure_probability({"a": 0.3}) == pytest.approx(0.3)

    def test_component_in_parallel_with_itself(self):
        block = Component("a") | Component("a")
        # Not 0.09: the same component cannot fail "twice independently".
        assert block.failure_probability({"a": 0.3}) == pytest.approx(0.3)


class TestAgainstTruthTable:
    @given(
        st.lists(unit_floats, min_size=3, max_size=3),
    )
    def test_fig2_structure_matches_enumeration(self, probs):
        names = ["machine", "human_detect", "human_classify"]
        block = (Component("machine") | Component("human_detect")) >> Component(
            "human_classify"
        )
        probabilities = dict(zip(names, probs))
        total = 0.0
        for states in itertools.product([True, False], repeat=3):
            state = dict(zip(names, states))
            weight = 1.0
            for name, up in state.items():
                weight *= (1 - probabilities[name]) if up else probabilities[name]
            if block.works(state):
                total += weight
        assert block.success_probability(probabilities) == pytest.approx(total, abs=1e-9)

    @given(st.lists(unit_floats, min_size=4, max_size=4), st.integers(1, 4))
    def test_k_of_n_matches_enumeration(self, probs, k):
        names = [f"c{i}" for i in range(4)]
        block = KOutOfN(k, [Component(n) for n in names])
        probabilities = dict(zip(names, probs))
        total = 0.0
        for states in itertools.product([True, False], repeat=4):
            state = dict(zip(names, states))
            weight = 1.0
            for name, up in state.items():
                weight *= (1 - probabilities[name]) if up else probabilities[name]
            if block.works(state):
                total += weight
        assert block.success_probability(probabilities) == pytest.approx(total, abs=1e-9)
