"""Tests for repro.rbd.builders (the paper's diagrams as structures)."""

import pytest

from repro.core import ParallelClassParameters
from repro.rbd import (
    HUMAN_CLASSIFIES,
    HUMAN_DETECTS,
    MACHINE_DETECTS,
    double_reading_diagram,
    parallel_detection_diagram,
    two_readers_with_cadt_diagram,
)


class TestParallelDetectionDiagram:
    def test_components(self):
        diagram = parallel_detection_diagram()
        assert diagram.component_names() == {
            MACHINE_DETECTS,
            HUMAN_DETECTS,
            HUMAN_CLASSIFIES,
        }

    def test_matches_equation_1(self):
        """The RBD evaluates to equation (1)/(2) at independence."""
        diagram = parallel_detection_diagram()
        params = ParallelClassParameters(
            p_machine_miss=0.07, p_human_miss=0.2, p_human_misclassify=0.14
        )
        rbd_failure = diagram.failure_probability(
            {
                MACHINE_DETECTS: params.p_machine_miss,
                HUMAN_DETECTS: params.p_human_miss,
                HUMAN_CLASSIFIES: params.p_human_misclassify,
            }
        )
        assert rbd_failure == pytest.approx(params.p_system_failure_independent)

    def test_detection_redundancy(self):
        """A failed machine alone does not fail the system."""
        diagram = parallel_detection_diagram()
        assert diagram.works(
            {MACHINE_DETECTS: False, HUMAN_DETECTS: True, HUMAN_CLASSIFIES: True}
        )
        assert not diagram.works(
            {MACHINE_DETECTS: False, HUMAN_DETECTS: False, HUMAN_CLASSIFIES: True}
        )

    def test_classification_is_serial(self):
        diagram = parallel_detection_diagram()
        assert not diagram.works(
            {MACHINE_DETECTS: True, HUMAN_DETECTS: True, HUMAN_CLASSIFIES: False}
        )


class TestDoubleReadingDiagram:
    def test_recall_if_either(self):
        diagram = double_reading_diagram()
        assert diagram.works({"reader_1": True, "reader_2": False})
        assert not diagram.works({"reader_1": False, "reader_2": False})

    def test_failure_probability_is_product(self):
        diagram = double_reading_diagram()
        assert diagram.failure_probability(
            {"reader_1": 0.2, "reader_2": 0.3}
        ) == pytest.approx(0.06)

    def test_custom_names(self):
        diagram = double_reading_diagram("alice", "bob")
        assert diagram.component_names() == {"alice", "bob"}


class TestTwoReadersWithCadt:
    def test_machine_is_shared(self):
        diagram = two_readers_with_cadt_diagram()
        occurrences = diagram._component_occurrences()
        assert occurrences.count(MACHINE_DETECTS) == 2
        assert len(diagram.component_names()) == 5

    def test_shared_machine_not_double_counted(self):
        """With both readers blind, the system succeeds iff the machine
        prompts AND at least one reader classifies: conditioning on the
        shared machine must not square its failure probability."""
        diagram = two_readers_with_cadt_diagram()
        probs = {
            MACHINE_DETECTS: 0.4,
            "reader_1_detects": 1.0,
            "reader_2_detects": 1.0,
            "reader_1_classifies": 0.0,
            "reader_2_classifies": 0.0,
        }
        assert diagram.failure_probability(probs) == pytest.approx(0.4)

    def test_better_than_single_assisted_reader(self):
        """Two assisted readers strictly beat one on the same probabilities."""
        single = parallel_detection_diagram()
        double = two_readers_with_cadt_diagram()
        single_probs = {
            MACHINE_DETECTS: 0.2,
            HUMAN_DETECTS: 0.3,
            HUMAN_CLASSIFIES: 0.1,
        }
        double_probs = {
            MACHINE_DETECTS: 0.2,
            "reader_1_detects": 0.3,
            "reader_2_detects": 0.3,
            "reader_1_classifies": 0.1,
            "reader_2_classifies": 0.1,
        }
        assert double.failure_probability(double_probs) < single.failure_probability(
            single_probs
        )
