"""Tests for repro.rbd.paths and repro.rbd.importance."""

import pytest

from repro.exceptions import StructureError
from repro.rbd import (
    Component,
    KOutOfN,
    Parallel,
    Series,
    birnbaum_importance,
    birnbaum_importances,
    fussell_vesely_importance,
    improvement_potential,
    minimal_cut_sets,
    minimal_path_sets,
    parallel_detection_diagram,
)


@pytest.fixture
def fig2():
    return parallel_detection_diagram()


@pytest.fixture
def fig2_probs():
    return {"machine_detects": 0.07, "human_detects": 0.2, "human_classifies": 0.14}


class TestPathSets:
    def test_series_single_path(self):
        block = Component("a") >> Component("b")
        assert minimal_path_sets(block) == (frozenset({"a", "b"}),)

    def test_parallel_two_paths(self):
        block = Component("a") | Component("b")
        assert set(minimal_path_sets(block)) == {frozenset({"a"}), frozenset({"b"})}

    def test_fig2_paths(self, fig2):
        paths = set(minimal_path_sets(fig2))
        assert paths == {
            frozenset({"machine_detects", "human_classifies"}),
            frozenset({"human_detects", "human_classifies"}),
        }

    def test_k_of_n_paths(self):
        block = KOutOfN(2, [Component("a"), Component("b"), Component("c")])
        assert set(minimal_path_sets(block)) == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }


class TestCutSets:
    def test_series_cuts_are_singletons(self):
        block = Component("a") >> Component("b")
        assert set(minimal_cut_sets(block)) == {frozenset({"a"}), frozenset({"b"})}

    def test_parallel_single_cut(self):
        block = Component("a") | Component("b")
        assert minimal_cut_sets(block) == (frozenset({"a", "b"}),)

    def test_fig2_cuts(self, fig2):
        cuts = set(minimal_cut_sets(fig2))
        # The classifier alone is a single point of failure; the two
        # detectors only fail the system together.
        assert cuts == {
            frozenset({"human_classifies"}),
            frozenset({"machine_detects", "human_detects"}),
        }

    def test_human_is_single_point_of_failure(self, fig2):
        """The paper's floor result, structurally: a cut set containing only
        the human classification step exists, so no machine improvement can
        eliminate system failures."""
        singleton_cuts = [c for c in minimal_cut_sets(fig2) if len(c) == 1]
        assert frozenset({"human_classifies"}) in singleton_cuts
        assert all("machine" not in next(iter(c)) for c in singleton_cuts)

    def test_enumeration_guard(self):
        block = Series([Component(f"c{i}") for i in range(25)])
        with pytest.raises(StructureError):
            minimal_path_sets(block)


class TestBirnbaumImportance:
    def test_series_importance_formula(self):
        block = Component("a") >> Component("b")
        probs = {"a": 0.2, "b": 0.4}
        # dP(success)/dp_a_success = success prob of rest = 0.6
        assert birnbaum_importance(block, probs, "a") == pytest.approx(0.6)

    def test_parallel_importance_formula(self):
        block = Component("a") | Component("b")
        probs = {"a": 0.2, "b": 0.4}
        # Matters only when the other fails.
        assert birnbaum_importance(block, probs, "a") == pytest.approx(0.4)

    def test_fig2_classifier_most_important(self, fig2, fig2_probs):
        importances = birnbaum_importances(fig2, fig2_probs)
        assert importances["human_classifies"] == max(importances.values())

    def test_importance_via_finite_difference(self, fig2, fig2_probs):
        component = "machine_detects"
        h = 1e-6
        up = dict(fig2_probs)
        up[component] += h
        down = dict(fig2_probs)
        down[component] -= h
        derivative = (
            fig2.failure_probability(up) - fig2.failure_probability(down)
        ) / (2 * h)
        assert birnbaum_importance(fig2, fig2_probs, component) == pytest.approx(
            derivative, abs=1e-5
        )

    def test_unknown_component_rejected(self, fig2, fig2_probs):
        with pytest.raises(StructureError):
            birnbaum_importance(fig2, fig2_probs, "nonexistent")


class TestImprovementPotential:
    def test_matches_direct_computation(self, fig2, fig2_probs):
        perfect = dict(fig2_probs, machine_detects=0.0)
        expected = fig2.failure_probability(fig2_probs) - fig2.failure_probability(
            perfect
        )
        assert improvement_potential(fig2, fig2_probs, "machine_detects") == pytest.approx(
            expected
        )

    def test_perfecting_machine_leaves_classifier_floor(self, fig2, fig2_probs):
        """RBD analogue of Section 6.1's bound: with a perfect machine the
        system still fails at the misclassification rate."""
        gain = improvement_potential(fig2, fig2_probs, "machine_detects")
        residual = fig2.failure_probability(fig2_probs) - gain
        assert residual >= fig2_probs["human_classifies"] * 0.99


class TestFussellVesely:
    def test_zero_when_system_cannot_fail(self):
        block = Component("a") | Component("b")
        assert fussell_vesely_importance(block, {"a": 0.0, "b": 0.5}, "b") == 0.0

    def test_series_component_fv(self):
        block = Component("a") >> Component("b")
        probs = {"a": 0.2, "b": 0.1}
        system_failure = 1 - 0.8 * 0.9
        assert fussell_vesely_importance(block, probs, "a") == pytest.approx(
            0.2 / system_failure
        )

    def test_bounded_by_one(self, fig2, fig2_probs):
        for name in fig2.component_names():
            fv = fussell_vesely_importance(fig2, fig2_probs, name)
            assert 0.0 <= fv <= 1.0
