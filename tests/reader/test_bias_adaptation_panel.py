"""Tests for repro.reader.bias, .adaptation and .panel."""

import numpy as np
import pytest

from repro.cadt import Cadt, CadtOutput, DetectionAlgorithm
from repro.exceptions import ParameterError
from repro.reader import (
    MILD_BIAS,
    NO_BIAS,
    STRONG_BIAS,
    AdaptiveReader,
    AdaptiveTrust,
    AutomationBiasProfile,
    QualificationLevel,
    ReaderModel,
    ReaderPanel,
    simulate_trust_trajectory,
)
from tests.screening.test_case_and_population import make_cancer_case


class TestAutomationBiasProfile:
    def test_presets_ordered(self):
        assert NO_BIAS.complacency_shift == 0.0
        assert MILD_BIAS.complacency_shift < STRONG_BIAS.complacency_shift
        assert MILD_BIAS.prompt_persuasion < STRONG_BIAS.prompt_persuasion

    def test_scaled(self):
        doubled = MILD_BIAS.scaled(2.0)
        assert doubled.complacency_shift == pytest.approx(
            2 * MILD_BIAS.complacency_shift
        )
        zeroed = MILD_BIAS.scaled(0.0)
        assert zeroed.complacency_shift == 0.0

    def test_negative_effect_rejected(self):
        with pytest.raises(ParameterError):
            AutomationBiasProfile(complacency_shift=-0.5)

    def test_negative_scale_rejected(self):
        with pytest.raises(ParameterError):
            MILD_BIAS.scaled(-1.0)


class TestAdaptiveTrust:
    def test_successes_grow_trust_toward_max(self):
        trust = AdaptiveTrust(initial_trust=1.0, growth_rate=0.1, max_trust=2.0)
        for _ in range(100):
            trust.observe_success()
        assert 1.9 < trust.trust <= 2.0

    def test_caught_failure_cuts_trust(self):
        trust = AdaptiveTrust(initial_trust=1.0, failure_penalty=0.5)
        trust.observe_caught_failure()
        assert trust.trust == pytest.approx(0.5)
        assert trust.caught_failures == 1

    def test_asymmetry(self):
        """One caught failure outweighs many successes — the paper's point
        that failures are informative but rarely seen."""
        trust = AdaptiveTrust(growth_rate=0.01, failure_penalty=0.5)
        for _ in range(20):
            trust.observe_success()
        grown = trust.trust
        trust.observe_caught_failure()
        assert trust.trust < 1.0 < grown

    def test_validation(self):
        with pytest.raises(ParameterError):
            AdaptiveTrust(initial_trust=5.0, max_trust=2.0)
        with pytest.raises(ParameterError):
            AdaptiveTrust(max_trust=-1.0)


class TestAdaptiveReader:
    def test_trust_rises_without_caught_failures(self):
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        adaptive = AdaptiveReader(base, AdaptiveTrust(growth_rate=0.05), seed=2)
        case = make_cancer_case(human_detection_difficulty=0.05)
        output = CadtOutput(case_id=1, prompted_relevant=True, num_false_prompts=0)
        for _ in range(50):
            adaptive.decide(case, output)
        assert adaptive.trust.trust > 1.0

    def test_current_bias_scales_with_trust(self):
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        adaptive = AdaptiveReader(base, AdaptiveTrust(initial_trust=2.0, max_trust=2.0))
        assert adaptive.current_bias().complacency_shift == pytest.approx(
            2 * MILD_BIAS.complacency_shift
        )

    def test_caught_failure_reduces_trust(self):
        base = ReaderModel(
            bias=MILD_BIAS,
            # A sharp-eyed reader: will notice the missed cancer.
            skill=None,
            name="r",
            seed=1,
        )
        adaptive = AdaptiveReader(base, AdaptiveTrust(failure_penalty=0.3), seed=3)
        obvious_cancer = make_cancer_case(
            human_detection_difficulty=0.001, human_classification_difficulty=0.001
        )
        missed = CadtOutput(case_id=1, prompted_relevant=False, num_false_prompts=0)
        # Reader almost surely notices and recalls -> catches the failure.
        adaptive.decide(obvious_cancer, missed)
        assert adaptive.trust.trust < 1.0

    def test_unaided_decisions_do_not_update_trust(self):
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        adaptive = AdaptiveReader(base, seed=3)
        adaptive.decide(make_cancer_case(), None)
        assert adaptive.trust.observed_successes == 0
        assert adaptive.trust.caught_failures == 0

    def test_trajectory_length(self):
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        adaptive = AdaptiveReader(base, seed=4)
        cases = [make_cancer_case() for _ in range(10)]
        cadt = Cadt(DetectionAlgorithm(), seed=5)
        trajectory = simulate_trust_trajectory(adaptive, cases, cadt)
        assert len(trajectory) == 10
        assert all(t >= 0 for t in trajectory)


class TestReaderPanel:
    def test_sample_sizes_and_names(self):
        panel = ReaderPanel.sample(5, seed=1)
        assert len(panel) == 5
        assert len({r.name for r in panel}) == 5

    def test_reproducible(self):
        first = ReaderPanel.sample(3, seed=9)
        second = ReaderPanel.sample(3, seed=9)
        assert [r.skill.detection for r in first] == [r.skill.detection for r in second]

    def test_qualification_ordering(self):
        experts = ReaderPanel.sample(40, QualificationLevel.EXPERT, seed=2)
        trainees = ReaderPanel.sample(40, QualificationLevel.TRAINEE, seed=2)
        assert np.mean([r.skill.detection for r in experts]) > np.mean(
            [r.skill.detection for r in trainees]
        )

    def test_mixed_panel(self):
        panel = ReaderPanel.sample_mixed(
            {QualificationLevel.EXPERT: 2, QualificationLevel.TRAINEE: 3}, seed=3
        )
        assert len(panel) == 5
        names = {r.name for r in panel}
        assert any(n.startswith("expert") for n in names)
        assert any(n.startswith("trainee") for n in names)

    def test_indexing(self):
        panel = ReaderPanel.sample(3, seed=1)
        assert panel[0] is panel.readers[0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            ReaderPanel([])
        with pytest.raises(ParameterError):
            ReaderPanel.sample(0)
        reader = ReaderModel(name="twin")
        with pytest.raises(ParameterError):
            ReaderPanel([reader, ReaderModel(name="twin")])
        with pytest.raises(ParameterError):
            ReaderPanel.sample_mixed({QualificationLevel.EXPERT: -1})
