"""Tests for repro.reader.fatigue (vigilance decrement)."""

import pytest

from repro.exceptions import ParameterError
from repro.reader import FatigueModel, FatiguedReader, MILD_BIAS, ReaderModel
from repro.screening import routine_screening_population, trial_workload
from tests.cadt.test_algorithm import make_healthy_case
from tests.screening.test_case_and_population import make_cancer_case


class TestFatigueModel:
    def test_decrement_saturates(self):
        fatigue = FatigueModel(rate=0.1, max_decrement=0.8)
        for _ in range(200):
            fatigue.advance()
        assert fatigue.decrement == pytest.approx(0.8, abs=1e-6)

    def test_rest_resets(self):
        fatigue = FatigueModel(rate=0.1)
        for _ in range(10):
            fatigue.advance()
        assert fatigue.decrement > 0
        fatigue.rest()
        assert fatigue.decrement == 0.0
        assert fatigue.cases_this_session == 0

    def test_zero_rate_never_tires(self):
        fatigue = FatigueModel(rate=0.0)
        for _ in range(100):
            fatigue.advance()
        assert fatigue.decrement == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FatigueModel(rate=1.5)
        with pytest.raises(ParameterError):
            FatigueModel(max_decrement=-1.0)
        with pytest.raises(ParameterError):
            FatigueModel(cases_per_session=0)


class TestCasesPerSession:
    """Automatic session breaks: the schedule is counted in *cases*.

    The contract (previously latent, now pinned down): the N-th case of
    a session is decided at the pre-break decrement, and the rest
    applies once ``advance()`` registers it — so after exactly
    ``cases_per_session`` cases the model is already rested, whether or
    not a chunk boundary happens to land there.
    """

    def test_auto_rest_after_session_length(self):
        fatigue = FatigueModel(rate=0.1, cases_per_session=5)
        for _ in range(4):
            fatigue.advance()
        assert fatigue.decrement > 0.0
        assert fatigue.cases_this_session == 4
        fatigue.advance()  # the 5th case triggers the break after it
        assert fatigue.decrement == 0.0
        assert fatigue.cases_this_session == 0

    def test_nth_case_is_decided_tired(self):
        """The session's last case is read at the pre-break decrement;
        only the *next* case benefits from the rest."""
        base = ReaderModel(bias=MILD_BIAS, name="r", seed=1)
        reader = FatiguedReader(
            base, FatigueModel(rate=0.2, cases_per_session=3), seed=2
        )
        reader.decide(make_healthy_case(), None)
        reader.decide(make_healthy_case(), None)
        tired = reader.current_reader()  # in force for case 3
        assert tired.skill.detection < base.skill.detection
        reader.decide(make_healthy_case(), None)  # case 3: break after it
        assert reader.current_reader() is base

    def test_schedule_resumes_identically_after_manual_break(self):
        fatigue = FatigueModel(rate=0.1, cases_per_session=10)
        for _ in range(7):
            fatigue.advance()
        fatigue.rest()  # manual break mid-session restarts the count
        for _ in range(9):
            fatigue.advance()
        assert fatigue.cases_this_session == 9  # not yet at the limit
        fatigue.advance()
        assert fatigue.cases_this_session == 0

    def test_chunk_boundary_on_break_is_invisible(self):
        """Splitting the stream exactly at a session break carries the
        already-rested state — bit-identical to an unaligned split and
        to no split at all (the satellite-4 regression)."""
        session = 25
        workload = trial_workload(
            routine_screening_population(seed=11), 100, cancer_fraction=0.3, name="w"
        )
        arrays = workload.to_arrays()

        def run(boundaries):
            reader = FatiguedReader(
                ReaderModel(bias=MILD_BIAS, name="r", seed=1),
                FatigueModel(rate=0.1, cases_per_session=session),
                seed=2,
            )
            state = reader.stream_state()
            recalls = []
            for start, stop in boundaries:
                recall, state = reader.advance_stream(
                    arrays.chunk(start, stop), None, state
                )
                recalls.extend(recall.tolist())
            reader.commit_state(state)
            return recalls, reader.fatigue.decrement, reader.fatigue.cases_this_session

        whole = run([(0, 100)])
        aligned = run([(0, 25), (25, 50), (50, 75), (75, 100)])  # on breaks
        offset = run([(0, 40), (40, 100)])  # mid-session
        assert aligned == whole
        assert offset == whole


class TestFatiguedReader:
    @pytest.fixture
    def reader(self):
        base = ReaderModel(bias=MILD_BIAS, name="tired", seed=1)
        return FatiguedReader(base, FatigueModel(rate=0.05, max_decrement=1.0), seed=2)

    def test_fresh_reader_matches_base(self, reader):
        assert reader.current_reader() is reader.base_reader

    def test_fatigue_raises_miss_probability(self, reader):
        case = make_cancer_case(human_detection_difficulty=0.3)
        fresh_miss = reader.current_reader().p_miss_unaided(case)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired_miss = reader.current_reader().p_miss_unaided(case)
        assert tired_miss > fresh_miss

    def test_fatigue_raises_false_positives_too(self, reader):
        case = make_healthy_case(human_classification_difficulty=0.2)
        fresh = reader.current_reader().p_false_positive(case, None)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired = reader.current_reader().p_false_positive(case, None)
        assert tired > fresh

    def test_classification_skill_untouched(self, reader):
        case = make_cancer_case(human_classification_difficulty=0.3)
        fresh = reader.current_reader().p_misclassify(case, False, aided=False)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired = reader.current_reader().p_misclassify(case, False, aided=False)
        assert tired == pytest.approx(fresh)

    def test_break_restores_performance(self, reader):
        case = make_cancer_case(human_detection_difficulty=0.3)
        fresh_miss = reader.current_reader().p_miss_unaided(case)
        for _ in range(50):
            reader.decide(make_healthy_case(), None)
        reader.take_break()
        assert reader.current_reader().p_miss_unaided(case) == pytest.approx(fresh_miss)

    def test_decisions_advance_fatigue(self, reader):
        assert reader.fatigue.cases_this_session == 0
        reader.decide(make_healthy_case(), None)
        reader.decide(make_cancer_case(), None)
        assert reader.fatigue.cases_this_session == 2

    def test_repr(self, reader):
        assert "session=0" in repr(reader)
