"""Tests for repro.reader.fatigue (vigilance decrement)."""

import pytest

from repro.exceptions import ParameterError
from repro.reader import FatigueModel, FatiguedReader, MILD_BIAS, ReaderModel
from tests.cadt.test_algorithm import make_healthy_case
from tests.screening.test_case_and_population import make_cancer_case


class TestFatigueModel:
    def test_decrement_saturates(self):
        fatigue = FatigueModel(rate=0.1, max_decrement=0.8)
        for _ in range(200):
            fatigue.advance()
        assert fatigue.decrement == pytest.approx(0.8, abs=1e-6)

    def test_rest_resets(self):
        fatigue = FatigueModel(rate=0.1)
        for _ in range(10):
            fatigue.advance()
        assert fatigue.decrement > 0
        fatigue.rest()
        assert fatigue.decrement == 0.0
        assert fatigue.cases_this_session == 0

    def test_zero_rate_never_tires(self):
        fatigue = FatigueModel(rate=0.0)
        for _ in range(100):
            fatigue.advance()
        assert fatigue.decrement == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            FatigueModel(rate=1.5)
        with pytest.raises(ParameterError):
            FatigueModel(max_decrement=-1.0)


class TestFatiguedReader:
    @pytest.fixture
    def reader(self):
        base = ReaderModel(bias=MILD_BIAS, name="tired", seed=1)
        return FatiguedReader(base, FatigueModel(rate=0.05, max_decrement=1.0), seed=2)

    def test_fresh_reader_matches_base(self, reader):
        assert reader.current_reader() is reader.base_reader

    def test_fatigue_raises_miss_probability(self, reader):
        case = make_cancer_case(human_detection_difficulty=0.3)
        fresh_miss = reader.current_reader().p_miss_unaided(case)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired_miss = reader.current_reader().p_miss_unaided(case)
        assert tired_miss > fresh_miss

    def test_fatigue_raises_false_positives_too(self, reader):
        case = make_healthy_case(human_classification_difficulty=0.2)
        fresh = reader.current_reader().p_false_positive(case, None)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired = reader.current_reader().p_false_positive(case, None)
        assert tired > fresh

    def test_classification_skill_untouched(self, reader):
        case = make_cancer_case(human_classification_difficulty=0.3)
        fresh = reader.current_reader().p_misclassify(case, False, aided=False)
        for _ in range(100):
            reader.decide(make_healthy_case(), None)
        tired = reader.current_reader().p_misclassify(case, False, aided=False)
        assert tired == pytest.approx(fresh)

    def test_break_restores_performance(self, reader):
        case = make_cancer_case(human_detection_difficulty=0.3)
        fresh_miss = reader.current_reader().p_miss_unaided(case)
        for _ in range(50):
            reader.decide(make_healthy_case(), None)
        reader.take_break()
        assert reader.current_reader().p_miss_unaided(case) == pytest.approx(fresh_miss)

    def test_decisions_advance_fatigue(self, reader):
        assert reader.fatigue.cases_this_session == 0
        reader.decide(make_healthy_case(), None)
        reader.decide(make_cancer_case(), None)
        assert reader.fatigue.cases_this_session == 2

    def test_repr(self, reader):
        assert "session=0" in repr(reader)
