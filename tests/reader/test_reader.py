"""Tests for repro.reader.reader (the stochastic reader model)."""

import numpy as np
import pytest

from repro.cadt import CadtOutput
from repro.exceptions import ParameterError, SimulationError
from repro.reader import (
    MILD_BIAS,
    NO_BIAS,
    STRONG_BIAS,
    ReaderModel,
    ReaderSkill,
    ReadingProcedure,
)
from tests.cadt.test_algorithm import make_healthy_case
from tests.screening.test_case_and_population import make_cancer_case


def success_output(case_id=1):
    return CadtOutput(case_id=case_id, prompted_relevant=True, num_false_prompts=0)


def failure_output(case_id=1):
    return CadtOutput(case_id=case_id, prompted_relevant=False, num_false_prompts=0)


class TestReaderSkill:
    def test_defaults(self):
        skill = ReaderSkill()
        assert skill.detection == 0.0
        assert skill.lapse_rate == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ReaderSkill(detection=float("nan"))
        with pytest.raises(Exception):
            ReaderSkill(lapse_rate=1.5)


class TestAnalyticDetection:
    def test_unaided_miss_reflects_difficulty(self):
        reader = ReaderModel(name="r")
        easy = make_cancer_case(human_detection_difficulty=0.05)
        hard = make_cancer_case(human_detection_difficulty=0.6)
        assert reader.p_miss_unaided(hard) > reader.p_miss_unaided(easy)

    def test_skill_reduces_miss(self):
        case = make_cancer_case(human_detection_difficulty=0.3)
        expert = ReaderModel(skill=ReaderSkill(detection=1.0), name="e")
        novice = ReaderModel(skill=ReaderSkill(detection=-1.0), name="n")
        assert expert.p_miss_unaided(case) < novice.p_miss_unaided(case)

    def test_lapse_rate_floors_miss(self):
        reader = ReaderModel(skill=ReaderSkill(lapse_rate=0.1), name="r")
        trivial = make_cancer_case(human_detection_difficulty=0.0)
        assert reader.p_miss_unaided(trivial) >= 0.1 * 0.999

    def test_prompt_cuts_miss_dramatically(self):
        reader = ReaderModel(prompt_effectiveness=0.9, name="r")
        case = make_cancer_case(human_detection_difficulty=0.4)
        aided = reader.p_miss_aided(case, machine_prompted_relevant=True)
        unaided = reader.p_miss_unaided(case)
        assert aided == pytest.approx(0.1 * unaided)

    def test_complacency_raises_miss_on_machine_failure(self):
        case = make_cancer_case(human_detection_difficulty=0.3)
        vigilant = ReaderModel(bias=NO_BIAS, name="v")
        complacent = ReaderModel(bias=STRONG_BIAS, name="c")
        assert complacent.p_miss_aided(case, False) > vigilant.p_miss_aided(case, False)

    def test_no_bias_machine_failure_equals_unaided(self):
        """Without bias, an unprompted film is read exactly like unaided film."""
        reader = ReaderModel(bias=NO_BIAS, name="r")
        case = make_cancer_case(human_detection_difficulty=0.3)
        assert reader.p_miss_aided(case, False) == pytest.approx(
            reader.p_miss_unaided(case)
        )

    def test_parallel_procedure_disables_bias(self):
        case = make_cancer_case(human_detection_difficulty=0.3)
        sequential = ReaderModel(
            bias=STRONG_BIAS, procedure=ReadingProcedure.SEQUENTIAL, name="s"
        )
        parallel = ReaderModel(
            bias=STRONG_BIAS, procedure=ReadingProcedure.PARALLEL, name="p"
        )
        assert parallel.p_miss_aided(case, False) == pytest.approx(
            parallel.p_miss_unaided(case)
        )
        assert sequential.p_miss_aided(case, False) > parallel.p_miss_aided(case, False)

    def test_detection_methods_reject_healthy_cases(self):
        reader = ReaderModel(name="r")
        with pytest.raises(SimulationError):
            reader.p_miss_unaided(make_healthy_case())
        with pytest.raises(SimulationError):
            reader.p_miss_aided(make_healthy_case(), True)


class TestAnalyticFalseNegative:
    def test_conditional_ordering(self):
        """PHf|Mf > PHf|Ms: machine failures must hurt (t > 0)."""
        reader = ReaderModel(bias=MILD_BIAS, name="r")
        case = make_cancer_case(
            human_detection_difficulty=0.3, human_classification_difficulty=0.15
        )
        assert reader.p_false_negative(case, False) > reader.p_false_negative(case, True)

    def test_aided_success_beats_unaided(self):
        reader = ReaderModel(bias=MILD_BIAS, name="r")
        case = make_cancer_case(human_detection_difficulty=0.3)
        assert reader.p_false_negative(case, True) < reader.p_false_negative(case, None)

    def test_composition_formula(self):
        reader = ReaderModel(bias=MILD_BIAS, name="r")
        case = make_cancer_case()
        p_miss = reader.p_miss_aided(case, False)
        p_misclass = reader.p_misclassify(case, feature_prompted=False, aided=True)
        assert reader.p_false_negative(case, False) == pytest.approx(
            p_miss + (1 - p_miss) * p_misclass
        )

    def test_persuasion_reduces_misclassification(self):
        reader = ReaderModel(bias=STRONG_BIAS, name="r")
        case = make_cancer_case(human_classification_difficulty=0.3)
        prompted = reader.p_misclassify(case, feature_prompted=True, aided=True)
        unprompted = reader.p_misclassify(case, feature_prompted=False, aided=True)
        assert prompted < unprompted


class TestAnalyticFalsePositive:
    def test_false_prompts_raise_recall_probability(self):
        reader = ReaderModel(bias=MILD_BIAS, name="r")
        case = make_healthy_case(human_classification_difficulty=0.15)
        assert reader.p_false_positive(case, 3) > reader.p_false_positive(case, 0)

    def test_no_bias_ignores_false_prompts(self):
        reader = ReaderModel(bias=NO_BIAS, name="r")
        case = make_healthy_case()
        assert reader.p_false_positive(case, 5) == pytest.approx(
            reader.p_false_positive(case, 0)
        )

    def test_specificity_skill_reduces_recalls(self):
        case = make_healthy_case(human_classification_difficulty=0.3)
        cautious = ReaderModel(skill=ReaderSkill(specificity=1.5), name="c")
        trigger_happy = ReaderModel(skill=ReaderSkill(specificity=-1.5), name="t")
        assert cautious.p_false_positive(case, None) < trigger_happy.p_false_positive(
            case, None
        )

    def test_rejects_cancer_case(self):
        reader = ReaderModel(name="r")
        with pytest.raises(SimulationError):
            reader.p_false_positive(make_cancer_case(), None)

    def test_rejects_negative_prompt_count(self):
        reader = ReaderModel(name="r")
        with pytest.raises(SimulationError):
            reader.p_false_positive(make_healthy_case(), -1)


class TestSampledDecisions:
    def test_decision_matches_analytic_probability_machine_failed(self, rng):
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=0)
        case = make_cancer_case(
            human_detection_difficulty=0.3, human_classification_difficulty=0.2
        )
        n = 8000
        failures = sum(
            not reader.decide(case, failure_output(), rng).recall for _ in range(n)
        )
        assert failures / n == pytest.approx(
            reader.p_false_negative(case, False), abs=0.02
        )

    def test_decision_matches_analytic_probability_machine_succeeded(self, rng):
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=0)
        case = make_cancer_case(
            human_detection_difficulty=0.3, human_classification_difficulty=0.2
        )
        n = 8000
        failures = sum(
            not reader.decide(case, success_output(), rng).recall for _ in range(n)
        )
        assert failures / n == pytest.approx(
            reader.p_false_negative(case, True), abs=0.02
        )

    def test_decision_matches_analytic_unaided(self, rng):
        reader = ReaderModel(name="r", seed=0)
        case = make_cancer_case(human_detection_difficulty=0.4)
        n = 8000
        failures = sum(not reader.decide(case, None, rng).recall for _ in range(n))
        assert failures / n == pytest.approx(
            reader.p_false_negative(case, None), abs=0.02
        )

    def test_healthy_decision_matches_analytic(self, rng):
        reader = ReaderModel(bias=MILD_BIAS, name="r", seed=0)
        case = make_healthy_case(human_classification_difficulty=0.2)
        output = CadtOutput(case_id=2, prompted_relevant=False, num_false_prompts=2)
        n = 8000
        recalls = sum(reader.decide(case, output, rng).recall for _ in range(n))
        assert recalls / n == pytest.approx(reader.p_false_positive(case, 2), abs=0.02)

    def test_decision_annotations(self, rng):
        reader = ReaderModel(name="r", seed=0)
        healthy_decision = reader.decide(make_healthy_case(), None, rng)
        assert healthy_decision.noticed_relevant is None
        cancer_decision = reader.decide(make_cancer_case(), None, rng)
        assert cancer_decision.noticed_relevant in (True, False)

    def test_mismatched_output_rejected(self, rng):
        reader = ReaderModel(name="r")
        with pytest.raises(SimulationError):
            reader.decide(make_cancer_case(), success_output(case_id=99), rng)

    def test_private_rng_reproducible(self):
        case = make_cancer_case()
        first = ReaderModel(name="r", seed=42)
        second = ReaderModel(name="r", seed=42)
        decisions_first = [first.decide(case, None).recall for _ in range(20)]
        decisions_second = [second.decide(case, None).recall for _ in range(20)]
        assert decisions_first == decisions_second


class TestVariants:
    def test_with_bias(self):
        reader = ReaderModel(bias=NO_BIAS, name="r")
        biased = reader.with_bias(STRONG_BIAS)
        assert biased.bias is STRONG_BIAS
        assert biased.name == reader.name
        assert reader.bias is NO_BIAS

    def test_with_procedure(self):
        reader = ReaderModel(name="r")
        parallel = reader.with_procedure(ReadingProcedure.PARALLEL)
        assert parallel.procedure is ReadingProcedure.PARALLEL

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            ReaderModel(bias="strong", name="r")  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            ReaderModel(name="")
