"""Property tests for the temporal reader state algebra.

Hypothesis-driven invariants for :class:`AdaptiveTrust` and
:class:`FatigueModel`, checked against *both* implementations: the
scalar per-case state machines and the array-backed path kernels in
:mod:`repro.reader.dynamics`.  The kernels are required to agree with
the scalar recurrences to the last bit — that is what makes the
vectorized stream path a pure performance substrate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError, SimulationError
from repro.reader import (
    STATE_FIELDS,
    AdaptiveTrust,
    FatigueModel,
    ReaderStateVector,
    fatigue_decrement_path,
    trust_growth_path,
)

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
penalties = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
max_trusts = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
max_decrements = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
step_counts = st.integers(min_value=0, max_value=300)


class TestReaderStateVector:
    def test_fresh_defaults(self):
        state = ReaderStateVector.fresh()
        assert len(state) == 1
        assert state.trust[0] == 1.0
        assert state.decrement[0] == 0.0
        assert state.cases_this_session[0] == 0

    def test_columns_are_contiguous_and_typed(self):
        state = ReaderStateVector.fresh(3)
        for name in STATE_FIELDS:
            column = getattr(state, name)
            assert column.flags["C_CONTIGUOUS"]
            assert len(column) == 3

    def test_replace_returns_new_value(self):
        state = ReaderStateVector.fresh()
        bumped = state.replace(trust=np.array([1.5]))
        assert state.trust[0] == 1.0
        assert bumped.trust[0] == 1.5
        assert bumped.decrement is state.decrement

    def test_replace_rejects_unknown_column(self):
        with pytest.raises(SimulationError):
            ReaderStateVector.fresh().replace(bogus=np.array([1.0]))

    def test_clone_is_independent(self):
        state = ReaderStateVector.fresh()
        copy = state.clone()
        copy.trust[0] = 9.0
        assert state.trust[0] == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            ReaderStateVector(
                trust=np.ones(2),
                observed_successes=np.zeros(1, dtype=np.int64),
                caught_failures=np.zeros(2, dtype=np.int64),
                decrement=np.zeros(2),
                cases_this_session=np.zeros(2, dtype=np.int64),
            )

    def test_zero_readers_rejected(self):
        with pytest.raises(ParameterError):
            ReaderStateVector.fresh(0)


class TestTrustProperties:
    @given(growth=rates, penalty=penalties, max_trust=max_trusts, n=step_counts)
    @settings(max_examples=60, deadline=None)
    def test_trust_stays_in_bounds(self, growth, penalty, max_trust, n):
        """Trust never escapes [0, max_trust] under any event sequence."""
        trust = AdaptiveTrust(
            initial_trust=min(1.0, max_trust),
            growth_rate=growth,
            failure_penalty=penalty,
            max_trust=max_trust,
        )
        rng = np.random.default_rng(n)
        for _ in range(n):
            if rng.random() < 0.2:
                trust.observe_caught_failure()
            else:
                trust.observe_success()
            assert 0.0 <= trust.trust <= max_trust

    @given(growth=rates, max_trust=max_trusts, n=step_counts)
    @settings(max_examples=60, deadline=None)
    def test_growth_path_matches_scalar_bitwise(self, growth, max_trust, n):
        """The vectorized success path is the scalar recurrence, bit for bit."""
        initial = min(1.0, max_trust)
        trust = AdaptiveTrust(
            initial_trust=initial, growth_rate=growth, max_trust=max_trust
        )
        path = trust_growth_path(initial, growth, max_trust, n)
        assert path[0] == initial
        for i in range(n):
            assert path[i] == trust.trust  # pre-update value, exact
            trust.observe_success()
        assert path[n] == trust.trust

    @given(growth=st.floats(min_value=1e-6, max_value=1.0), n=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_success_growth_is_monotone(self, growth, n):
        """The paper's asymmetry, growth side: successes only raise trust."""
        path = trust_growth_path(0.5, growth, 2.0, n)
        assert np.all(np.diff(path) >= 0)
        assert np.all(path <= 2.0)

    @given(penalty=st.floats(min_value=0.0, max_value=1.0), t=st.floats(0.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_caught_failure_penalty_order_independent(self, penalty, t):
        """Two catches in a row commute bit-exactly (float multiplication
        is commutative), so within-case bookkeeping order cannot matter."""
        first = AdaptiveTrust(
            initial_trust=t, failure_penalty=penalty, max_trust=2.0
        )
        first.observe_caught_failure()
        first.observe_caught_failure()
        direct = (t * penalty) * penalty
        swapped = (t * penalty) * penalty  # same product either way round
        assert first.trust == direct == swapped

    @given(growth=st.floats(1e-4, 0.5), penalty=st.floats(0.0, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_asymmetry_one_catch_undoes_many_successes(self, growth, penalty):
        trust = AdaptiveTrust(
            growth_rate=growth, failure_penalty=penalty, max_trust=2.0
        )
        for _ in range(50):
            trust.observe_success()
        grown = trust.trust
        trust.observe_caught_failure()
        assert trust.trust == grown * penalty
        assert trust.trust <= grown

    def test_restore_round_trips(self):
        trust = AdaptiveTrust(growth_rate=0.05)
        for _ in range(7):
            trust.observe_success()
        trust.observe_caught_failure()
        twin = AdaptiveTrust(growth_rate=0.05)
        twin._restore(trust.trust, trust.observed_successes, trust.caught_failures)
        assert twin.trust == trust.trust
        assert twin.observed_successes == 7
        assert twin.caught_failures == 1


class TestFatigueProperties:
    @given(rate=rates, max_decrement=max_decrements, n=step_counts)
    @settings(max_examples=60, deadline=None)
    def test_decrement_saturates_at_max(self, rate, max_decrement, n):
        fatigue = FatigueModel(rate=rate, max_decrement=max_decrement)
        for _ in range(n):
            fatigue.advance()
            assert 0.0 <= fatigue.decrement <= max_decrement

    @given(rate=rates, max_decrement=max_decrements, n=step_counts)
    @settings(max_examples=60, deadline=None)
    def test_break_resets_to_zero(self, rate, max_decrement, n):
        fatigue = FatigueModel(rate=rate, max_decrement=max_decrement)
        for _ in range(n):
            fatigue.advance()
        fatigue.rest()
        assert fatigue.decrement == 0.0
        assert fatigue.cases_this_session == 0

    @given(
        rate=rates,
        max_decrement=max_decrements,
        n=step_counts,
        session=st.one_of(st.none(), st.integers(1, 50)),
    )
    @settings(max_examples=80, deadline=None)
    def test_decrement_path_matches_scalar_bitwise(
        self, rate, max_decrement, n, session
    ):
        """The vectorized decrement path replicates advance() — including
        automatic session breaks — bit for bit."""
        fatigue = FatigueModel(
            rate=rate, max_decrement=max_decrement, cases_per_session=session
        )
        path, final_decrement, final_count = fatigue_decrement_path(
            0.0, 0, rate, max_decrement, session, n
        )
        for i in range(n):
            assert path[i] == fatigue.decrement  # pre-advance value, exact
            fatigue.advance()
        assert final_decrement == fatigue.decrement
        assert final_count == fatigue.cases_this_session

    @given(rate=rates, max_decrement=max_decrements, session=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_session_count_never_reaches_limit(self, rate, max_decrement, session):
        fatigue = FatigueModel(
            rate=rate, max_decrement=max_decrement, cases_per_session=session
        )
        for _ in range(3 * session + 1):
            fatigue.advance()
            assert fatigue.cases_this_session < session

    def test_restore_round_trips(self):
        fatigue = FatigueModel(rate=0.1)
        for _ in range(9):
            fatigue.advance()
        twin = FatigueModel(rate=0.1)
        twin._restore(fatigue.decrement, fatigue.cases_this_session)
        assert twin.decrement == fatigue.decrement
        assert twin.cases_this_session == 9

    def test_cases_per_session_validation(self):
        with pytest.raises(ParameterError):
            FatigueModel(cases_per_session=0)
        with pytest.raises(ParameterError):
            FatigueModel(cases_per_session=2.5)


class TestPathValidation:
    def test_negative_lengths_rejected(self):
        with pytest.raises(SimulationError):
            trust_growth_path(1.0, 0.01, 2.0, -1)
        with pytest.raises(SimulationError):
            fatigue_decrement_path(0.0, 0, 0.01, 0.8, None, -1)

    def test_zero_length_paths(self):
        path = trust_growth_path(1.25, 0.01, 2.0, 0)
        assert path.shape == (1,) and path[0] == 1.25
        d_path, d, count = fatigue_decrement_path(0.5, 3, 0.01, 0.8, None, 0)
        assert d_path.shape == (0,) and d == 0.5 and count == 3
