"""Tests for repro.screening.case and repro.screening.population."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.screening import (
    DEFAULT_LESION_PROFILES,
    Case,
    LesionProfile,
    LesionType,
    PopulationModel,
)
from repro.screening.population import _sigmoid


def make_cancer_case(**overrides) -> Case:
    defaults = dict(
        case_id=1,
        has_cancer=True,
        lesion_type=LesionType.MASS,
        breast_density=0.5,
        subtlety=0.4,
        machine_difficulty=0.1,
        human_detection_difficulty=0.2,
        human_classification_difficulty=0.1,
        distractor_level=0.3,
    )
    defaults.update(overrides)
    return Case(**defaults)


class TestCase:
    def test_valid_cancer_case(self):
        case = make_cancer_case()
        assert case.has_cancer
        assert case.lesion_type is LesionType.MASS

    def test_cancer_requires_lesion_type(self):
        with pytest.raises(ValueError):
            make_cancer_case(lesion_type=None)

    def test_healthy_must_not_have_lesion_type(self):
        with pytest.raises(ValueError):
            make_cancer_case(has_cancer=False)

    def test_probability_fields_validated(self):
        with pytest.raises(Exception):
            make_cancer_case(machine_difficulty=1.5)
        with pytest.raises(Exception):
            make_cancer_case(breast_density=-0.1)

    def test_overall_difficulty_is_mean(self):
        case = make_cancer_case(
            machine_difficulty=0.3,
            human_detection_difficulty=0.6,
            human_classification_difficulty=0.9,
        )
        assert case.overall_difficulty == pytest.approx(0.6)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_cancer_case().subtlety = 0.9  # type: ignore[misc]


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(0.0) == pytest.approx(0.5)

    def test_symmetry(self):
        assert _sigmoid(2.0) == pytest.approx(1.0 - _sigmoid(-2.0))

    def test_extremes_stay_finite(self):
        assert 0.0 < _sigmoid(-500.0) < 1e-100 or _sigmoid(-500.0) == 0.0
        assert _sigmoid(500.0) == pytest.approx(1.0)


class TestLesionProfile:
    def test_negative_frequency_rejected(self):
        with pytest.raises(SimulationError):
            LesionProfile(LesionType.MASS, -0.1, 0.0, 0.0, 0.0)

    def test_defaults_cover_all_types(self):
        assert {p.lesion_type for p in DEFAULT_LESION_PROFILES} == set(LesionType)


class TestPopulationModel:
    def test_reproducible_with_seed(self):
        first = PopulationModel(seed=5).generate(50)
        second = PopulationModel(seed=5).generate(50)
        assert [c.machine_difficulty for c in first] == [
            c.machine_difficulty for c in second
        ]

    def test_different_seeds_differ(self):
        first = PopulationModel(seed=1).generate(50)
        second = PopulationModel(seed=2).generate(50)
        assert [c.case_id for c in first] == [c.case_id for c in second]
        assert [c.breast_density for c in first] != [c.breast_density for c in second]

    def test_case_ids_unique_and_sequential(self):
        population = PopulationModel(seed=0)
        cases = population.generate(20) + population.generate_cancers(5)
        ids = [c.case_id for c in cases]
        assert ids == list(range(25))

    def test_prevalence_respected(self):
        population = PopulationModel(prevalence=0.3, seed=9)
        cases = population.generate(3000)
        fraction = sum(c.has_cancer for c in cases) / len(cases)
        assert fraction == pytest.approx(0.3, abs=0.03)

    def test_default_prevalence_below_one_percent(self):
        population = PopulationModel(seed=3)
        cases = population.generate(20_000)
        fraction = sum(c.has_cancer for c in cases) / len(cases)
        assert fraction < 0.01

    def test_generate_cancers_all_cancer(self):
        cases = PopulationModel(seed=4).generate_cancers(100)
        assert all(c.has_cancer for c in cases)
        assert all(c.lesion_type is not None for c in cases)

    def test_generate_healthy_all_healthy(self):
        cases = PopulationModel(seed=4).generate_healthy(100)
        assert all(not c.has_cancer for c in cases)
        assert all(c.machine_difficulty == 0.0 for c in cases)
        assert all(c.subtlety == 0.0 for c in cases)

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            PopulationModel(seed=0).generate(-1)

    def test_stream_yields_cases(self):
        stream = PopulationModel(seed=0).stream()
        cases = [next(stream) for _ in range(10)]
        assert len({c.case_id for c in cases}) == 10

    def test_lesion_mix_follows_frequencies(self):
        population = PopulationModel(seed=6)
        cancers = population.generate_cancers(4000)
        mass_fraction = sum(
            c.lesion_type is LesionType.MASS for c in cancers
        ) / len(cancers)
        assert mass_fraction == pytest.approx(0.45, abs=0.04)

    def test_subtlety_raises_difficulty(self):
        """Subtle cancers must be harder for both components (covariate effect)."""
        population = PopulationModel(seed=8, noise_scale=0.0)
        cancers = population.generate_cancers(2000)
        subtle = [c for c in cancers if c.subtlety > 0.6]
        frank = [c for c in cancers if c.subtlety < 0.3]
        assert np.mean([c.machine_difficulty for c in subtle]) > np.mean(
            [c.machine_difficulty for c in frank]
        )
        assert np.mean([c.human_detection_difficulty for c in subtle]) > np.mean(
            [c.human_detection_difficulty for c in frank]
        )

    def test_difficulty_correlation_knob(self):
        """Higher correlation setting must produce higher realised
        correlation between machine and human difficulty residuals."""

        def realised_correlation(rho: float) -> float:
            population = PopulationModel(
                seed=10, difficulty_correlation=rho, noise_scale=2.0
            )
            cancers = population.generate_cancers(3000)
            machine = [c.machine_difficulty for c in cancers]
            human = [c.human_detection_difficulty for c in cancers]
            return float(np.corrcoef(machine, human)[0, 1])

        assert realised_correlation(0.95) > realised_correlation(0.0) + 0.2

    def test_microcalcifications_easiest_for_machine(self):
        population = PopulationModel(seed=11, noise_scale=0.0)
        cancers = population.generate_cancers(3000)

        def mean_difficulty(lesion: LesionType) -> float:
            subset = [c for c in cancers if c.lesion_type is lesion]
            return float(np.mean([c.machine_difficulty for c in subset]))

        assert mean_difficulty(LesionType.MICROCALCIFICATION) < mean_difficulty(
            LesionType.MASS
        )
        assert mean_difficulty(LesionType.MASS) < mean_difficulty(
            LesionType.ARCHITECTURAL_DISTORTION
        )

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            PopulationModel(lesion_profiles=[])
        with pytest.raises(SimulationError):
            PopulationModel(noise_scale=-1.0)


class TestNumericSeamSharing:
    """The REP002 refactor: sampling modules share repro._numeric kernels.

    Case generation must use the exact numpy-backed kernels the batch
    engine uses, not a module-local math.* variant — otherwise the two
    paths drift by ulps and scalar/batch bit-equality breaks.
    """

    def test_population_uses_shared_sigmoid_and_sqrt(self):
        from repro import _numeric
        from repro.screening import population as population_module

        assert population_module._sigmoid is _numeric.sigmoid
        assert population_module._sqrt is _numeric.sqrt

    def test_generation_is_seed_deterministic_through_the_seam(self):
        first = PopulationModel(seed=123).generate(64)
        second = PopulationModel(seed=123).generate(64)
        for a, b in zip(first, second):
            assert a.machine_difficulty == b.machine_difficulty
            assert a.human_detection_difficulty == b.human_detection_difficulty
