"""Tests for repro.screening.classifier and repro.screening.workload."""

import pytest

from repro.core import CaseClass, DIFFICULT, EASY
from repro.exceptions import ParameterError, SimulationError
from repro.screening import (
    CompositeClassifier,
    DensityBandClassifier,
    FunctionClassifier,
    LesionTypeClassifier,
    PopulationModel,
    SingleClassClassifier,
    SubtletyClassifier,
    Workload,
    empirical_profile,
    field_workload,
    trial_workload,
)


@pytest.fixture
def cancers(population):
    return population.generate_cancers(200)


class TestSingleClassClassifier:
    def test_everything_one_class(self, cancers):
        classifier = SingleClassClassifier()
        assert {classifier.classify(c).name for c in cancers} == {"all"}
        assert classifier.classes == (CaseClass("all"),)


class TestSubtletyClassifier:
    def test_emits_only_declared_classes(self, cancers):
        classifier = SubtletyClassifier()
        emitted = {classifier.classify(c) for c in cancers}
        assert emitted <= {EASY, DIFFICULT}

    def test_threshold_moves_boundary(self, cancers):
        lenient = SubtletyClassifier(threshold=1.2)
        strict = SubtletyClassifier(threshold=0.2)
        lenient_difficult = sum(
            lenient.classify(c) == DIFFICULT for c in cancers
        )
        strict_difficult = sum(strict.classify(c) == DIFFICULT for c in cancers)
        assert strict_difficult > lenient_difficult

    def test_difficult_cases_really_harder(self, population):
        """The observable criterion must correlate with latent difficulty."""
        import numpy as np

        cancers = population.generate_cancers(2000)
        classifier = SubtletyClassifier()
        easy = [c for c in cancers if classifier.classify(c) == EASY]
        difficult = [c for c in cancers if classifier.classify(c) == DIFFICULT]
        assert np.mean([c.human_detection_difficulty for c in difficult]) > np.mean(
            [c.human_detection_difficulty for c in easy]
        )

    def test_healthy_cases_classified_by_distractors(self, population):
        classifier = SubtletyClassifier()
        healthy = population.generate_healthy(50)
        for case in healthy:
            assert classifier.classify(case) in (EASY, DIFFICULT)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            SubtletyClassifier(threshold=0.0)
        with pytest.raises(ParameterError):
            SubtletyClassifier(density_weight=-1.0)


class TestDensityBandClassifier:
    def test_bands(self, cancers):
        classifier = DensityBandClassifier((0.35, 0.65))
        assert len(classifier.classes) == 3
        for case in cancers:
            band = classifier.classify(case)
            index = int(band.name.split("_")[1])
            if index == 0:
                assert case.breast_density <= 0.35
            elif index == 2:
                assert case.breast_density > 0.65

    def test_invalid_boundaries(self):
        with pytest.raises(ParameterError):
            DensityBandClassifier(())
        with pytest.raises(ParameterError):
            DensityBandClassifier((0.5, 0.3))
        with pytest.raises(ParameterError):
            DensityBandClassifier((0.0,))


class TestLesionTypeClassifier:
    def test_cancers_by_type(self, cancers):
        classifier = LesionTypeClassifier()
        for case in cancers:
            assert classifier.classify(case).name == case.lesion_type.value

    def test_healthy_is_normal(self, population):
        classifier = LesionTypeClassifier()
        healthy = population.generate_healthy(5)
        assert all(classifier.classify(c).name == "normal" for c in healthy)

    def test_five_classes(self):
        assert len(LesionTypeClassifier().classes) == 5


class TestCompositeClassifier:
    def test_product_classes(self):
        composite = CompositeClassifier(
            SubtletyClassifier(), DensityBandClassifier((0.5,))
        )
        assert len(composite.classes) == 4

    def test_classification_combines_names(self, cancers):
        composite = CompositeClassifier(
            SubtletyClassifier(), DensityBandClassifier((0.5,))
        )
        for case in cancers[:20]:
            name = composite.classify(case).name
            left, right = name.split("/")
            assert left in ("easy", "difficult")
            assert right.startswith("density_")


class TestFunctionClassifier:
    def test_wraps_function(self, cancers):
        odd = CaseClass("odd")
        even = CaseClass("even")
        classifier = FunctionClassifier(
            lambda c: odd if c.case_id % 2 else even, [odd, even]
        )
        assert classifier.classify(cancers[0]) in (odd, even)

    def test_undeclared_class_rejected(self, cancers):
        classifier = FunctionClassifier(
            lambda c: CaseClass("surprise"), [CaseClass("expected")]
        )
        with pytest.raises(ParameterError):
            classifier.classify(cancers[0])

    def test_empty_classes_rejected(self):
        with pytest.raises(ParameterError):
            FunctionClassifier(lambda c: CaseClass("x"), [])


class TestWorkload:
    def test_split_by_truth(self, population):
        workload = trial_workload(population, 100, cancer_fraction=0.4)
        cancers, healthy = workload.split_by_truth()
        assert len(cancers) + len(healthy) == 100
        assert all(c.has_cancer for c in cancers)
        assert all(not c.has_cancer for c in healthy)

    def test_trial_workload_enrichment(self, population):
        workload = trial_workload(population, 200, cancer_fraction=0.5)
        assert workload.cancer_fraction == pytest.approx(0.5, abs=0.01)

    def test_trial_workload_interleaves(self, population):
        """Cancers must not be bunched at one end of the ordering."""
        workload = trial_workload(population, 100, cancer_fraction=0.5)
        first_half = sum(c.has_cancer for c in workload.cases[:50])
        assert 15 <= first_half <= 35

    def test_subtlety_enrichment_tilts_mix(self, classifier):
        import numpy as np

        population_plain = PopulationModel(seed=77)
        population_enriched = PopulationModel(seed=77)
        plain = trial_workload(population_plain, 400, cancer_fraction=1.0)
        enriched = trial_workload(
            population_enriched,
            400,
            cancer_fraction=1.0,
            subtlety_enrichment=2.0,
            selection_seed=1,
        )
        assert np.mean([c.subtlety for c in enriched.cases]) > np.mean(
            [c.subtlety for c in plain.cases]
        )
        plain_difficult = empirical_profile(plain, classifier)["difficult"]
        enriched_difficult = empirical_profile(enriched, classifier)["difficult"]
        assert enriched_difficult > plain_difficult

    def test_negative_enrichment_rejected(self, population):
        with pytest.raises(SimulationError):
            trial_workload(population, 10, subtlety_enrichment=-1.0)

    def test_field_workload_prevalence(self):
        population = PopulationModel(prevalence=0.05, seed=21)
        workload = field_workload(population, 2000)
        assert workload.cancer_fraction == pytest.approx(0.05, abs=0.02)

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            Workload("", ())

    def test_len_and_iter(self, population):
        workload = field_workload(population, 10)
        assert len(workload) == 10
        assert len(list(workload)) == 10


class TestEmpiricalProfile:
    def test_profile_over_cancers(self, population, classifier):
        workload = trial_workload(population, 300, cancer_fraction=0.5)
        profile = empirical_profile(workload, classifier)
        assert sum(p for _, p in profile.items()) == pytest.approx(1.0)
        # Both classes should appear in a decent sample.
        assert profile["easy"] > 0 and profile["difficult"] > 0

    def test_profile_counts_match(self, population, classifier):
        cancers = population.generate_cancers(100)
        profile = empirical_profile(cancers, classifier)
        difficult_count = sum(
            classifier.classify(c).name == "difficult" for c in cancers
        )
        assert profile["difficult"] == pytest.approx(difficult_count / 100)

    def test_healthy_side(self, population, classifier):
        healthy = population.generate_healthy(100)
        profile = empirical_profile(healthy, classifier, cancers_only=False)
        assert sum(p for _, p in profile.items()) == pytest.approx(1.0)

    def test_no_matching_cases_rejected(self, population, classifier):
        healthy = population.generate_healthy(10)
        with pytest.raises(SimulationError):
            empirical_profile(healthy, classifier, cancers_only=True)


class TestOracleDifficultyClassifier:
    def test_bands_by_latent_difficulty(self, cancers):
        from repro.screening import OracleDifficultyClassifier

        classifier = OracleDifficultyClassifier((0.25,))
        for case in cancers:
            band = classifier.classify(case).name
            if case.overall_difficulty > 0.25:
                assert band == "oracle_1"
            else:
                assert band == "oracle_0"

    def test_oracle_separates_difficulty_better_than_observable(self, population):
        """The oracle's classes are more homogeneous in latent difficulty
        than the observable subtlety classifier's — its reason to exist."""
        import numpy as np

        from repro.screening import OracleDifficultyClassifier

        cancers = population.generate_cancers(2000)

        def within_class_variance(classifier):
            groups = {}
            for case in cancers:
                groups.setdefault(classifier.classify(case).name, []).append(
                    case.overall_difficulty
                )
            total = len(cancers)
            return sum(
                len(values) / total * float(np.var(values))
                for values in groups.values()
            )

        observable = SubtletyClassifier()
        oracle = OracleDifficultyClassifier((0.25,))
        assert within_class_variance(oracle) < within_class_variance(observable)

    def test_invalid_boundaries(self):
        from repro.screening import OracleDifficultyClassifier

        with pytest.raises(ParameterError):
            OracleDifficultyClassifier(())
        with pytest.raises(ParameterError):
            OracleDifficultyClassifier((0.8, 0.2))
        with pytest.raises(ParameterError):
            OracleDifficultyClassifier((1.0,))
