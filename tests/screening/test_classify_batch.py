"""classify_batch: vectorized labels identical to the per-case protocol."""

import numpy as np
import pytest

from repro.engine import cancer_class_labels
from repro.screening import (
    CompositeClassifier,
    DensityBandClassifier,
    FunctionClassifier,
    LesionTypeClassifier,
    OracleDifficultyClassifier,
    SingleClassClassifier,
    SubtletyClassifier,
    routine_screening_population,
    trial_workload,
)


@pytest.fixture(scope="module")
def workload():
    return trial_workload(
        routine_screening_population(seed=17), 800, cancer_fraction=0.4, name="cb"
    )


BATCH_CLASSIFIERS = [
    SingleClassClassifier(),
    SubtletyClassifier(),
    SubtletyClassifier(threshold=0.4, density_weight=0.0),
    DensityBandClassifier(),
    DensityBandClassifier(boundaries=(0.2, 0.5, 0.8)),
    LesionTypeClassifier(),
    OracleDifficultyClassifier(),
    OracleDifficultyClassifier(boundaries=(0.1, 0.3, 0.6)),
    CompositeClassifier(SubtletyClassifier(), DensityBandClassifier()),
    CompositeClassifier(LesionTypeClassifier(), SubtletyClassifier()),
]


@pytest.mark.parametrize(
    "classifier", BATCH_CLASSIFIERS, ids=lambda c: type(c).__name__
)
class TestBatchMatchesScalar:
    def test_every_case_gets_the_same_class(self, classifier, workload):
        arrays = workload.to_arrays()
        codes = classifier.classify_batch(arrays)
        assert codes.shape == (len(workload),)
        assert codes.dtype == np.int64
        classes = classifier.classes
        for case, code in zip(workload, codes):
            assert classes[int(code)] == classifier.classify(case)

    def test_codes_index_declared_classes(self, classifier, workload):
        codes = classifier.classify_batch(workload.to_arrays())
        assert codes.min() >= 0
        assert codes.max() < len(classifier.classes)


class TestFallbacks:
    def test_function_classifier_has_no_batch_form(self, workload):
        classifier = SubtletyClassifier()
        wrapped = FunctionClassifier(classifier.classify, classifier.classes)
        assert not hasattr(wrapped, "classify_batch")
        positions, labels = cancer_class_labels(workload, wrapped)
        batch_positions, batch_labels = cancer_class_labels(workload, classifier)
        assert np.array_equal(positions, batch_positions)
        assert labels == batch_labels

    def test_composite_of_unbatchable_parts_falls_back(self, workload):
        inner = SubtletyClassifier()
        wrapped = FunctionClassifier(inner.classify, inner.classes)
        composite = CompositeClassifier(wrapped, DensityBandClassifier())
        with pytest.raises(NotImplementedError):
            composite.classify_batch(workload.to_arrays())
        # cancer_class_labels swallows the NotImplementedError and takes
        # the per-case path, matching a fully-batchable equivalent.
        reference = CompositeClassifier(inner, DensityBandClassifier())
        _, labels = cancer_class_labels(workload, composite)
        _, expected = cancer_class_labels(workload, reference)
        assert labels == expected

    def test_cancer_labels_positions_are_the_cancer_indices(self, workload):
        positions, labels = cancer_class_labels(workload, SubtletyClassifier())
        expected = [i for i, case in enumerate(workload) if case.has_cancer]
        assert positions.tolist() == expected
        assert len(labels) == len(expected)


class TestWorkloadColumnisationCache:
    def test_to_arrays_returns_the_same_object(self, workload):
        assert workload.to_arrays() is workload.to_arrays()

    def test_fingerprint_is_content_based(self):
        a = trial_workload(
            routine_screening_population(seed=3), 60, cancer_fraction=0.5, name="w"
        )
        b = trial_workload(
            routine_screening_population(seed=3), 60, cancer_fraction=0.5, name="w"
        )
        assert a.fingerprint() == b.fingerprint()
        c = trial_workload(
            routine_screening_population(seed=4), 60, cancer_fraction=0.5, name="w"
        )
        assert a.fingerprint() != c.fingerprint()

    def test_cache_invalidated_when_cases_change(self, workload):
        small = trial_workload(
            routine_screening_population(seed=5), 40, cancer_fraction=0.5, name="w"
        )
        first = small.to_arrays()
        # Out-of-band mutation (never done by repro code, but guarded).
        object.__setattr__(small, "cases", small.cases[:-1])
        second = small.to_arrays()
        assert second is not first
        assert len(second) == len(first) - 1
