"""Tests for repro.screening.presets."""

import numpy as np
import pytest

from repro.screening import (
    low_correlation_population,
    routine_screening_population,
    symptomatic_clinic_population,
    young_cohort_population,
)


class TestPrevalences:
    def test_routine_screening_rare_cancers(self):
        population = routine_screening_population(seed=1)
        cases = population.generate(20_000)
        fraction = sum(c.has_cancer for c in cases) / len(cases)
        assert fraction < 0.01

    def test_young_cohort_rarer_still(self):
        assert (
            young_cohort_population(seed=1).prevalence
            < routine_screening_population(seed=1).prevalence
        )

    def test_symptomatic_clinic_much_higher(self):
        population = symptomatic_clinic_population(seed=2)
        cases = population.generate(4000)
        fraction = sum(c.has_cancer for c in cases) / len(cases)
        assert fraction > 0.08


class TestDifficultyStructure:
    @staticmethod
    def realised_correlation(population) -> float:
        cancers = population.generate_cancers(3000)
        machine = [c.machine_difficulty for c in cancers]
        human = [c.human_detection_difficulty for c in cancers]
        return float(np.corrcoef(machine, human)[0, 1])

    def test_young_cohort_common_mode(self):
        young = self.realised_correlation(young_cohort_population(seed=3))
        diverse = self.realised_correlation(low_correlation_population(seed=3))
        assert young > diverse + 0.1

    def test_symptomatic_cases_easier(self):
        routine = routine_screening_population(seed=4).generate_cancers(2000)
        symptomatic = symptomatic_clinic_population(seed=4).generate_cancers(2000)
        assert np.mean(
            [c.human_detection_difficulty for c in symptomatic]
        ) < np.mean([c.human_detection_difficulty for c in routine])
        assert np.mean([c.machine_difficulty for c in symptomatic]) < np.mean(
            [c.machine_difficulty for c in routine]
        )


class TestIndependence:
    def test_presets_return_fresh_models(self):
        first = routine_screening_population(seed=5)
        second = routine_screening_population(seed=5)
        assert first is not second
        # Same seed -> same stream; models do not share RNG state.
        assert [c.breast_density for c in first.generate(10)] == [
            c.breast_density for c in second.generate(10)
        ]
