"""Service-level behaviour: admission control, drain, HTTP endpoints."""

import asyncio
import json

import pytest

from repro.exceptions import SimulationError
from repro.obs import Instrumentation
from repro.service import (
    QuotaExceededError,
    ScreeningService,
    ServiceConfig,
    ServiceUnavailableError,
    WorkloadCache,
    serve,
)
from repro.sweep.grid import SystemSpec, WorkloadSpec

WORKLOAD = WorkloadSpec(population="routine", num_cases=120)
SYSTEM = SystemSpec()
CONFIG = ServiceConfig(workers=1, linger_ms=1.0, chunk_size=128)


class TestAdmissionControl:
    def test_quota_rejection_carries_retry_after(self):
        async def main():
            config = ServiceConfig(
                workers=1,
                linger_ms=1.0,
                chunk_size=128,
                quota_rps=1.0,
                quota_burst=1.0,
            )
            async with ScreeningService(config) as service:
                await service.evaluate(WORKLOAD, SYSTEM, seed=1, tenant="a")
                with pytest.raises(QuotaExceededError) as excinfo:
                    await service.evaluate(WORKLOAD, SYSTEM, seed=2, tenant="a")
                assert excinfo.value.retry_after > 0.0
                assert excinfo.value.status == 429
                # Tenant isolation: b's bucket is untouched.
                await service.evaluate(WORKLOAD, SYSTEM, seed=3, tenant="b")

        asyncio.run(main())

    def test_queue_depth_backpressure(self):
        async def main():
            config = ServiceConfig(
                workers=1,
                linger_ms=50.0,
                max_batch=64,
                chunk_size=128,
                max_queue_depth=2,
            )
            service = ScreeningService(config)
            try:
                first = asyncio.ensure_future(
                    service.evaluate(WORKLOAD, SYSTEM, seed=1)
                )
                second = asyncio.ensure_future(
                    service.evaluate(WORKLOAD, SYSTEM, seed=2)
                )
                await asyncio.sleep(0)  # both admitted and lingering
                with pytest.raises(ServiceUnavailableError) as excinfo:
                    await service.evaluate(WORKLOAD, SYSTEM, seed=3)
                assert excinfo.value.status == 503
                assert excinfo.value.retry_after > 0.0
                await asyncio.gather(first, second)
            finally:
                await service.drain()

        asyncio.run(main())

    def test_draining_service_rejects_new_requests(self):
        async def main():
            service = ScreeningService(CONFIG)
            await service.drain()
            with pytest.raises(ServiceUnavailableError, match="draining"):
                await service.evaluate(WORKLOAD, SYSTEM, seed=1)

        asyncio.run(main())

    def test_drain_is_idempotent_and_completes_queued_work(self):
        async def main():
            service = ScreeningService(
                ServiceConfig(workers=1, linger_ms=500.0, chunk_size=128)
            )
            future = asyncio.ensure_future(
                service.evaluate(WORKLOAD, SYSTEM, seed=5)
            )
            await asyncio.sleep(0)
            # Drain fires the lingering batch instead of waiting 500ms.
            await asyncio.wait_for(service.drain(), timeout=30.0)
            evaluation = await future
            assert evaluation.false_negative is not None
            await service.drain()  # second drain is a no-op

        asyncio.run(main())


class TestUncertaintyEndpoint:
    def test_seeded_interval_is_reproducible(self):
        async def main():
            async with ScreeningService(CONFIG) as service:
                first = await service.uncertainty(
                    profile="trial", trials=500, draws=2000, seed=11
                )
                second = await service.uncertainty(
                    profile="trial", trials=500, draws=2000, seed=11
                )
                other = await service.uncertainty(
                    profile="field", trials=500, draws=2000, seed=11
                )
                return first, second, other

        first, second, other = asyncio.run(main())
        assert first == second
        assert first != other
        assert 0.0 <= first.lower <= first.mean <= first.upper <= 1.0


class TestWorkloadCache:
    def test_lru_eviction_and_hit_metrics(self):
        obs = Instrumentation("cache-test")
        cache = WorkloadCache(capacity=1, obs=obs)
        a = WorkloadSpec(population="routine", num_cases=50)
        b = WorkloadSpec(population="young", num_cases=50)
        entry_a = cache.get(a)
        assert cache.get(a) is entry_a  # hit
        cache.get(b)  # evicts a
        assert len(cache) == 1
        entry_a_again = cache.get(a)  # rebuild
        counters = obs.metrics.snapshot()["counters"]
        assert counters["service.workload_cache.hit"] == 1
        assert counters["service.workload_cache.miss"] == 3
        assert counters["service.workload_cache.evicted"] == 2
        # Rebuilt entries are bit-identical: specs build deterministically.
        assert entry_a_again.key == entry_a.key
        assert (entry_a_again.positions == entry_a.positions).all()
        assert (entry_a_again.codes == entry_a.codes).all()

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError, match="capacity"):
            WorkloadCache(capacity=0)


async def http_request(port, method, path, body=None, headers=(), raw=False):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    lines = [f"{method} {path} HTTP/1.1", f"Content-Length: {len(payload)}"]
    lines += [f"{name}: {value}" for name, value in headers]
    request = ("\r\n".join(lines) + "\r\n\r\n").encode() + payload
    writer.write(request)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    writer.close()
    if raw:
        return status, response_headers, data.decode()
    return status, response_headers, json.loads(data) if data else None


class TestHttpLayer:
    def run_with_server(self, config, scenario, obs=None):
        async def main():
            service = ScreeningService(config, obs=obs)
            ready = asyncio.Event()
            port = 8750 + (hash(scenario.__name__) % 200)
            task = asyncio.create_task(serve(service, port=port, ready=ready))
            await asyncio.wait_for(ready.wait(), timeout=10.0)
            try:
                return await scenario(port)
            finally:
                task.cancel()
                await task

        return asyncio.run(main())

    def test_evaluate_endpoint_round_trip(self):
        async def scenario(port):
            return await http_request(
                port,
                "POST",
                "/v1/evaluate",
                body={
                    "workload": {"population": "routine", "num_cases": 100},
                    "system": {"kind": "assisted"},
                    "seed": 7,
                    "report": True,
                },
            )

        status, _, data = self.run_with_server(CONFIG, scenario)
        assert status == 200
        assert data["evaluation"]["false_negative"]["trials"] == 50
        assert data["report"]["name"] == "service.evaluate"
        assert "service.latency_s" in data["report"]["metrics"]["histograms"]

    def test_compare_endpoint_returns_one_evaluation_per_system(self):
        async def scenario(port):
            return await http_request(
                port,
                "POST",
                "/v1/compare",
                body={
                    "workload": {"population": "routine", "num_cases": 100},
                    "systems": [{"kind": "unaided"}, {"kind": "assisted"}],
                    "seed": 3,
                },
            )

        status, _, data = self.run_with_server(CONFIG, scenario)
        assert status == 200
        assert len(data["evaluations"]) == 2

    def test_uncertainty_endpoint(self):
        async def scenario(port):
            return await http_request(
                port,
                "POST",
                "/v1/uncertainty",
                body={"profile": "trial", "trials": 200, "draws": 500, "seed": 1},
            )

        status, _, data = self.run_with_server(CONFIG, scenario)
        assert status == 200
        assert 0.0 <= data["interval"]["lower"] <= data["interval"]["upper"] <= 1.0

    def test_malformed_request_is_400_with_reason(self):
        async def scenario(port):
            return await http_request(
                port,
                "POST",
                "/v1/evaluate",
                body={"workload": {"population": "routine"}, "system": {}},
            )

        status, _, data = self.run_with_server(CONFIG, scenario)
        assert status == 400
        assert "seed" in data["error"]

    def test_quota_rejection_is_429_with_retry_after_header(self):
        config = ServiceConfig(
            workers=1,
            linger_ms=1.0,
            chunk_size=128,
            quota_rps=0.5,
            quota_burst=1.0,
        )

        async def scenario(port):
            body = {
                "workload": {"population": "routine", "num_cases": 100},
                "system": {},
                "seed": 1,
            }
            first = await http_request(
                port, "POST", "/v1/evaluate", body, headers=[("X-Tenant", "t")]
            )
            second = await http_request(
                port, "POST", "/v1/evaluate", body, headers=[("X-Tenant", "t")]
            )
            return first, second

        (status1, _, _), (status2, headers2, data2) = self.run_with_server(
            config, scenario
        )
        assert status1 == 200
        assert status2 == 429
        assert float(headers2["retry-after"]) > 0.0
        assert data2["retry_after"] > 0.0

    def test_unknown_path_and_wrong_method(self):
        async def scenario(port):
            missing = await http_request(port, "GET", "/v1/nope")
            wrong = await http_request(port, "GET", "/v1/evaluate")
            return missing, wrong

        (status_missing, _, _), (status_wrong, _, _) = self.run_with_server(
            CONFIG, scenario
        )
        assert status_missing == 404
        assert status_wrong == 405

    def test_healthz_and_metrics(self):
        async def scenario(port):
            health = await http_request(port, "GET", "/healthz")
            await http_request(
                port,
                "POST",
                "/v1/evaluate",
                body={
                    "workload": {"population": "routine", "num_cases": 100},
                    "system": {},
                    "seed": 2,
                },
            )
            metrics = await http_request(port, "GET", "/v1/metrics")
            return health, metrics

        (health_status, _, health), (metrics_status, _, metrics) = (
            self.run_with_server(CONFIG, scenario)
        )
        assert health_status == 200
        assert health == {"status": "ok", "draining": False, "alarms": 0}
        assert metrics_status == 200
        # The default service runs null instrumentation; the endpoint
        # still answers with the (empty) snapshot shape.
        assert set(metrics) == {
            "schema",
            "counters",
            "gauges",
            "histograms",
            "timeline",
        }


def field_entry(case_id, name="easy", machine_failed=False, recalled=True):
    """A JSON record entry as a monitoring client would send it."""
    return {
        "case_id": case_id,
        "reader_name": "field",
        "case_class": name,
        "has_cancer": True,
        "aided": True,
        "machine_failed": machine_failed,
        "machine_false_prompts": 1,
        "recalled": recalled,
    }


class TestMonitoringPlane(TestHttpLayer):
    """The live monitoring endpoints: /v1/ingest, /v1/monitor, /healthz."""

    def test_healthz_payload_schema(self):
        async def scenario_healthz(port):
            return await http_request(port, "GET", "/healthz")

        status, _, health = self.run_with_server(CONFIG, scenario_healthz)
        assert status == 200
        assert set(health) == {"status", "draining", "alarms"}
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert isinstance(health["alarms"], int)

    def test_ingest_then_monitor_round_trip(self):
        entries = [field_entry(i) for i in range(18)]
        entries += [field_entry(18 + i, name="difficult", machine_failed=True)
                    for i in range(2)]

        async def scenario_ingest(port):
            ingest = await http_request(
                port, "POST", "/v1/ingest", body={"records": entries}
            )
            monitor = await http_request(port, "GET", "/v1/monitor")
            return ingest, monitor

        (ingest_status, _, ingested), (monitor_status, _, monitor) = (
            self.run_with_server(CONFIG, scenario_ingest)
        )
        assert ingest_status == 200
        assert ingested["received"] == 20
        assert ingested["used"] == 20
        assert set(ingested["alarms"]) == {"tripped", "fired"}
        assert monitor_status == 200
        snapshot = monitor["monitor"]
        assert snapshot["records"] == {"seen": 20, "used": 20}
        assert set(snapshot["estimates"]) == {"easy", "difficult"}
        assert snapshot["estimates"]["easy"]["records"] == 18
        report = monitor["report"]
        assert report is not None
        assert report["tests"][0]["name"] == "profile"
        assert all(0.0 <= test["p_value"] <= 1.0 for test in report["tests"])

    def test_monitor_report_is_null_before_any_ingest(self):
        async def scenario_empty_monitor(port):
            return await http_request(port, "GET", "/v1/monitor")

        status, _, data = self.run_with_server(CONFIG, scenario_empty_monitor)
        assert status == 200
        assert data["report"] is None
        assert data["monitor"]["records"] == {"seen": 0, "used": 0}

    def test_unknown_class_is_tolerated_live_but_blocks_the_report(self):
        async def scenario_unknown_class(port):
            ingest = await http_request(
                port,
                "POST",
                "/v1/ingest",
                body={"records": [field_entry(1, name="novel")]},
            )
            monitor = await http_request(port, "GET", "/v1/monitor")
            return ingest, monitor

        (ingest_status, _, ingested), (_, _, monitor) = self.run_with_server(
            CONFIG, scenario_unknown_class
        )
        assert ingest_status == 200
        assert ingested["used"] == 1
        assert monitor["report"] is None

    def test_malformed_ingest_is_400_with_index(self):
        async def scenario_bad_ingest(port):
            missing = await http_request(
                port,
                "POST",
                "/v1/ingest",
                body={"records": [{"case_id": "nope"}]},
            )
            empty = await http_request(
                port, "POST", "/v1/ingest", body={"records": []}
            )
            return missing, empty

        (bad_status, _, bad), (empty_status, _, _) = self.run_with_server(
            CONFIG, scenario_bad_ingest
        )
        assert bad_status == 400
        assert "records[0]" in bad["error"]
        assert empty_status == 400

    def test_prometheus_exposition_format(self):
        from repro.obs import Instrumentation as Obs

        async def scenario_prometheus(port):
            await http_request(
                port,
                "POST",
                "/v1/ingest",
                body={"records": [field_entry(i) for i in range(5)]},
            )
            text = await http_request(
                port, "GET", "/v1/metrics?format=prometheus", raw=True
            )
            bogus = await http_request(port, "GET", "/v1/metrics?format=bogus")
            return text, bogus

        (text_status, text_headers, text), (bogus_status, _, _) = (
            self.run_with_server(CONFIG, scenario_prometheus, obs=Obs("svc"))
        )
        assert text_status == 200
        assert text_headers["content-type"].startswith("text/plain")
        assert "# TYPE service_requests counter" in text
        assert "monitor_records_used 5" in text
        assert bogus_status == 400
