"""Micro-batcher semantics: grouping, linger, max-batch, failure, flush."""

import asyncio

import pytest

from repro.exceptions import SimulationError
from repro.service import MicroBatcher


class Recorder:
    """A dispatch double recording every batch it receives."""

    def __init__(self, fail_on=None, delay_s=0.0):
        self.batches = []
        self.fail_on = fail_on
        self.delay_s = delay_s

    async def __call__(self, key, items):
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        self.batches.append((key, list(items)))
        if self.fail_on is not None and key == self.fail_on:
            raise SimulationError(f"dispatch for {key!r} failed")
        return [item * 10 for item in items]


def test_same_key_coalesces_into_one_dispatch():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=0.005, max_batch=8)
        results = await asyncio.gather(
            batcher.submit("w", 1), batcher.submit("w", 2), batcher.submit("w", 3)
        )
        return recorder.batches, results

    batches, results = asyncio.run(main())
    assert batches == [("w", [1, 2, 3])]
    assert results == [(10, 3), (20, 3), (30, 3)]


def test_distinct_keys_dispatch_separately():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=0.005, max_batch=8)
        await asyncio.gather(batcher.submit("a", 1), batcher.submit("b", 2))
        return recorder.batches

    batches = asyncio.run(main())
    assert sorted(batches) == [("a", [1]), ("b", [2])]


def test_full_batch_fires_before_linger_expires():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=60.0, max_batch=2)
        results = await asyncio.wait_for(
            asyncio.gather(batcher.submit("w", 1), batcher.submit("w", 2)),
            timeout=5.0,
        )
        return recorder.batches, results

    batches, results = asyncio.run(main())
    assert batches == [("w", [1, 2])]
    assert results == [(10, 2), (20, 2)]


def test_max_batch_splits_oversized_bursts():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=0.005, max_batch=2)
        results = await asyncio.gather(*(batcher.submit("w", n) for n in range(5)))
        return recorder.batches, results

    batches, results = asyncio.run(main())
    assert [len(items) for _, items in batches] == [2, 2, 1]
    assert [size for _, size in results] == [2, 2, 2, 2, 1]


def test_dispatch_failure_fails_every_future_in_the_batch():
    async def main():
        recorder = Recorder(fail_on="w")
        batcher = MicroBatcher(recorder, linger_s=0.001, max_batch=8)
        futures = [batcher.submit("w", n) for n in (1, 2)]
        return await asyncio.gather(*futures, return_exceptions=True)

    outcomes = asyncio.run(main())
    assert all(isinstance(outcome, SimulationError) for outcome in outcomes)


def test_result_count_mismatch_is_an_error():
    async def main():
        async def bad_dispatch(key, items):
            return [1]  # one result for two items

        batcher = MicroBatcher(bad_dispatch, linger_s=0.001, max_batch=8)
        futures = [batcher.submit("w", n) for n in (1, 2)]
        return await asyncio.gather(*futures, return_exceptions=True)

    outcomes = asyncio.run(main())
    assert all(isinstance(outcome, SimulationError) for outcome in outcomes)


def test_flush_fires_lingering_groups_immediately():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=60.0, max_batch=8)
        future = batcher.submit("w", 1)
        assert batcher.queued == 1
        await batcher.flush()
        assert batcher.queued == 0
        assert batcher.inflight == 0
        return await future

    assert asyncio.run(main()) == (10, 1)


def test_zero_linger_still_coalesces_one_tick():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, linger_s=0.0, max_batch=8)
        results = await asyncio.gather(
            batcher.submit("w", 1), batcher.submit("w", 2)
        )
        return recorder.batches, results

    batches, results = asyncio.run(main())
    assert batches == [("w", [1, 2])]
    assert [size for _, size in results] == [2, 2]


def test_rejects_invalid_configuration():
    async def dispatch(key, items):
        return list(items)

    with pytest.raises(SimulationError, match="linger_s"):
        MicroBatcher(dispatch, linger_s=-1.0)
    with pytest.raises(SimulationError, match="max_batch"):
        MicroBatcher(dispatch, max_batch=0)
