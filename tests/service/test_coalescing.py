"""The tentpole invariant: coalescing is invisible in the results.

A randomized swarm of concurrent clients — distinct seeds, mixed
workloads and systems — gets bit-identical responses whether requests
coalesce into fused dispatches (generous linger) or run one-per-dispatch
(``max_batch=1``), and both match standalone
:func:`~repro.engine.executor.evaluate_system_batch` runs of the same
``(seed, chunk_size)``.
"""

import asyncio

import numpy as np

from repro.engine.executor import evaluate_system_batch
from repro.service import ScreeningService, ServiceConfig
from repro.sweep.grid import SystemSpec, WorkloadSpec

CHUNK_SIZE = 128

WORKLOADS = [
    WorkloadSpec(population="routine", num_cases=160),
    WorkloadSpec(population="young", num_cases=160),
]
SYSTEMS = [
    SystemSpec(kind="assisted", bias="mild"),
    SystemSpec(kind="unaided", bias="none"),
    SystemSpec(kind="assisted", bias="strong", dynamics="fatigue"),
]


def random_requests(count, rng):
    return [
        (
            WORKLOADS[rng.integers(len(WORKLOADS))],
            SYSTEMS[rng.integers(len(SYSTEMS))],
            int(rng.integers(1, 2**31)),
        )
        for _ in range(count)
    ]


def run_service(requests, *, linger_ms, max_batch, workers=1):
    async def main():
        config = ServiceConfig(
            workers=workers,
            linger_ms=linger_ms,
            max_batch=max_batch,
            chunk_size=CHUNK_SIZE,
        )
        async with ScreeningService(config) as service:
            return await asyncio.gather(
                *(
                    service.evaluate(workload, system, seed=seed)
                    for workload, system, seed in requests
                )
            )

    return asyncio.run(main())


def standalone(requests):
    built = {}
    results = []
    for workload, system, seed in requests:
        if workload.key() not in built:
            built[workload.key()] = workload.build()
        results.append(
            evaluate_system_batch(
                system.build(seed),
                built[workload.key()],
                seed=seed,
                chunk_size=CHUNK_SIZE,
            )
        )
    return results


class TestCoalescingBitIdentity:
    def test_randomized_concurrent_clients_match_standalone(self):
        rng = np.random.default_rng(20260808)
        requests = random_requests(24, rng)
        coalesced = run_service(requests, linger_ms=20.0, max_batch=16)
        serial = run_service(requests, linger_ms=0.0, max_batch=1)
        reference = standalone(requests)
        for got, alone, ref in zip(coalesced, serial, reference):
            # SystemEvaluation is a frozen dataclass of counts and
            # Wilson intervals: equality here is bit-identity.
            assert got == alone
            assert got.false_negative == ref.false_negative
            assert got.false_positive == ref.false_positive
            assert got.per_class_false_negative == ref.per_class_false_negative

    def test_duplicate_seeds_on_one_workload_still_split_correctly(self):
        workload = WORKLOADS[0]
        requests = [(workload, SYSTEMS[0], 42), (workload, SYSTEMS[1], 42)]
        first, second = run_service(requests, linger_ms=20.0, max_batch=8)
        ref_first, ref_second = standalone(requests)
        assert first.false_negative == ref_first.false_negative
        assert second.false_negative == ref_second.false_negative

    def test_pooled_workers_match_standalone(self):
        rng = np.random.default_rng(7)
        requests = random_requests(8, rng)
        coalesced = run_service(requests, linger_ms=20.0, max_batch=8, workers=2)
        for got, ref in zip(coalesced, standalone(requests)):
            assert got.false_negative == ref.false_negative
            assert got.false_positive == ref.false_positive


class TestCoalescingObservables:
    def test_batches_and_metrics_reflect_coalescing(self):
        from repro.obs import Instrumentation

        obs = Instrumentation("service-test")
        requests = [(WORKLOADS[0], SYSTEMS[0], seed) for seed in range(6)]

        async def main():
            config = ServiceConfig(
                workers=1, linger_ms=50.0, max_batch=16, chunk_size=CHUNK_SIZE
            )
            async with ScreeningService(config, obs=obs) as service:
                return await asyncio.gather(
                    *(
                        service.evaluate(workload, system, seed=seed)
                        for workload, system, seed in requests
                    )
                )

        asyncio.run(main())
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["service.requests"] == 6
        assert snapshot["counters"]["service.dispatches"] == 1
        assert snapshot["counters"]["service.coalesced"] == 6
        assert snapshot["histograms"]["service.batch_size"]["max"] == 6
        assert snapshot["histograms"]["service.latency_s"]["count"] == 6
        assert "p99" in snapshot["histograms"]["service.latency_s"]

    def test_compare_is_one_dispatch_and_shares_the_seed(self):
        from repro.obs import Instrumentation

        obs = Instrumentation("service-test")
        workload = WORKLOADS[0]

        async def main():
            config = ServiceConfig(
                workers=1, linger_ms=10.0, max_batch=16, chunk_size=CHUNK_SIZE
            )
            async with ScreeningService(config, obs=obs) as service:
                return await service.compare(
                    workload, SYSTEMS, seed=99, level=0.95
                )

        evaluations = asyncio.run(main())
        references = standalone([(workload, system, 99) for system in SYSTEMS])
        for got, ref in zip(evaluations, references):
            assert got.false_negative == ref.false_negative
        assert obs.metrics.snapshot()["counters"]["service.dispatches"] == 1
