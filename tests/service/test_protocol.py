"""Request parsing: strict keys, explicit seeds, JSON-ready responses."""

import pytest

from repro.service import (
    ProtocolError,
    evaluation_payload,
    parse_compare_request,
    parse_evaluate_request,
    parse_uncertainty_request,
)
from repro.sweep.grid import SystemSpec, WorkloadSpec
from repro.engine.executor import evaluate_system_batch


def evaluate_body(**overrides):
    body = {
        "workload": {"population": "routine", "num_cases": 100},
        "system": {"kind": "assisted", "bias": "mild"},
        "seed": 7,
    }
    body.update(overrides)
    return body


class TestEvaluateParsing:
    def test_parses_specs_and_seed(self):
        request = parse_evaluate_request(evaluate_body())
        assert request.workload == WorkloadSpec(population="routine", num_cases=100)
        assert request.system == SystemSpec(kind="assisted", bias="mild")
        assert request.seed == 7
        assert request.level == 0.95
        assert request.report is False

    def test_rejects_unknown_top_level_keys(self):
        with pytest.raises(ProtocolError, match="unknown evaluate request keys"):
            parse_evaluate_request(evaluate_body(sede=1))

    def test_rejects_unknown_workload_keys(self):
        body = evaluate_body()
        body["workload"]["casez"] = 10
        with pytest.raises(ProtocolError, match="unknown workload keys"):
            parse_evaluate_request(body)

    def test_rejects_unknown_system_keys(self):
        body = evaluate_body()
        body["system"]["biaz"] = "mild"
        with pytest.raises(ProtocolError, match="unknown system keys"):
            parse_evaluate_request(body)

    def test_rejects_missing_seed(self):
        body = evaluate_body()
        del body["seed"]
        with pytest.raises(ProtocolError, match="seed"):
            parse_evaluate_request(body)

    @pytest.mark.parametrize("seed", [None, -1, 1.5, "7", True])
    def test_rejects_non_integer_seeds(self, seed):
        with pytest.raises(ProtocolError, match="seed"):
            parse_evaluate_request(evaluate_body(seed=seed))

    def test_rejects_unknown_population(self):
        body = evaluate_body()
        body["workload"]["population"] = "marsian"
        with pytest.raises(ProtocolError, match="population"):
            parse_evaluate_request(body)

    def test_rejects_bad_level(self):
        with pytest.raises(ProtocolError, match="level"):
            parse_evaluate_request(evaluate_body(level=1.5))

    def test_rejects_non_object_body(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_evaluate_request([1, 2, 3])


class TestCompareParsing:
    def test_parses_system_list(self):
        body = evaluate_body()
        del body["system"]
        body["systems"] = [{"kind": "unaided"}, {"kind": "assisted"}]
        request = parse_compare_request(body)
        assert [system.kind for system in request.systems] == ["unaided", "assisted"]
        assert request.seed == 7

    def test_rejects_empty_system_list(self):
        body = evaluate_body()
        del body["system"]
        body["systems"] = []
        with pytest.raises(ProtocolError, match="at least one system"):
            parse_compare_request(body)

    def test_names_offending_list_entry(self):
        body = evaluate_body()
        del body["system"]
        body["systems"] = [{"kind": "assisted"}, "oops"]
        with pytest.raises(ProtocolError, match=r"systems\[1\]"):
            parse_compare_request(body)


class TestUncertaintyParsing:
    def test_defaults(self):
        request = parse_uncertainty_request({"seed": 3})
        assert request.profile == "trial"
        assert request.trials == 1000
        assert request.draws == 10_000
        assert request.seed == 3

    def test_rejects_unknown_profile(self):
        with pytest.raises(ProtocolError, match="profile"):
            parse_uncertainty_request({"seed": 0, "profile": "bench"})

    @pytest.mark.parametrize("field", ["trials", "draws"])
    def test_rejects_non_positive_counts(self, field):
        with pytest.raises(ProtocolError, match=field):
            parse_uncertainty_request({"seed": 0, field: 0})


class TestEvaluationPayload:
    def test_round_trips_rates_and_classes(self):
        workload = WorkloadSpec(population="routine", num_cases=80).build()
        system = SystemSpec().build(5)
        evaluation = evaluate_system_batch(system, workload, seed=5, chunk_size=64)
        payload = evaluation_payload(evaluation)
        assert payload["system"] == evaluation.system_name
        assert payload["false_negative"]["failures"] == (
            evaluation.false_negative.failures
        )
        assert payload["false_negative"]["trials"] == evaluation.false_negative.trials
        assert payload["false_negative"]["lower"] == pytest.approx(
            evaluation.false_negative.interval.lower
        )
        assert set(payload["per_class_false_negative"]) == {
            cls.name for cls in evaluation.per_class_false_negative
        }
