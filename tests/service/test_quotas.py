"""Token-bucket quotas under an injected clock."""

import pytest

from repro.exceptions import SimulationError
from repro.service import QuotaManager, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.acquire()
        assert retry == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.acquire() == 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0

    def test_retry_after_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1, clock=clock)
        bucket.acquire()
        assert bucket.acquire() == pytest.approx(2.0)
        clock.advance(1.0)
        assert bucket.acquire() == pytest.approx(1.0)

    def test_rejects_invalid_configuration(self):
        with pytest.raises(SimulationError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(SimulationError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestQuotaManager:
    def test_none_rate_admits_everything(self):
        manager = QuotaManager(rate=None)
        assert all(manager.admit("t") == 0.0 for _ in range(1000))

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        manager = QuotaManager(rate=1.0, burst=1, clock=clock)
        assert manager.admit("a") == 0.0
        assert manager.admit("a") > 0.0
        # Tenant b has its own untouched bucket.
        assert manager.admit("b") == 0.0

    def test_denied_tenant_recovers_after_refill(self):
        clock = FakeClock()
        manager = QuotaManager(rate=2.0, burst=1, clock=clock)
        manager.admit("a")
        retry = manager.admit("a")
        assert retry > 0.0
        clock.advance(retry)
        assert manager.admit("a") == 0.0
