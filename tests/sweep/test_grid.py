"""Tests for the declarative scenario-grid layer (repro.sweep.grid)."""

import pytest

from repro.exceptions import SimulationError
from repro.sweep import ScenarioGrid, SystemSpec, WorkloadSpec


class TestWorkloadSpec:
    def test_build_is_deterministic(self):
        spec = WorkloadSpec(population="routine", num_cases=200)
        first, second = spec.build(), spec.build()
        assert [case.has_cancer for case in first.cases] == [
            case.has_cancer for case in second.cases
        ]
        assert first.name == second.name == spec.key()

    def test_key_distinguishes_every_field(self):
        base = WorkloadSpec(population="routine")
        variants = [
            WorkloadSpec(population="young"),
            WorkloadSpec(population="routine", profile="field"),
            WorkloadSpec(population="routine", num_cases=999),
            WorkloadSpec(population="routine", cancer_fraction=0.25),
            WorkloadSpec(population="routine", population_seed=7),
        ]
        keys = {spec.key() for spec in variants}
        assert base.key() not in keys and len(keys) == len(variants)

    def test_field_profile_builds_field_workload(self):
        workload = WorkloadSpec(population="routine", profile="field", num_cases=300).build()
        assert len(workload) == 300

    def test_unknown_population_rejected(self):
        with pytest.raises(SimulationError, match="unknown population"):
            WorkloadSpec(population="martian")

    def test_unknown_profile_rejected(self):
        with pytest.raises(SimulationError, match="unknown profile"):
            WorkloadSpec(population="routine", profile="hospital")


class TestSystemSpec:
    def test_label_includes_operating_point_only_when_assisted(self):
        assisted = SystemSpec(kind="assisted", operating_point=0.2)
        unaided = SystemSpec(kind="unaided", operating_point=0.2)
        assert "op=+0.2" in assisted.label()
        assert "op" not in unaided.label()

    def test_build_same_seed_same_decisions(self):
        import numpy as np

        spec = SystemSpec(kind="assisted", bias="mild", dynamics="none")
        workload = WorkloadSpec(population="routine", num_cases=120).build()
        arrays = workload.to_arrays()
        decisions = []
        for _ in range(2):
            system = spec.build(77)
            rng = np.random.default_rng(5)
            decisions.append(
                np.asarray(system.decide_batch(arrays, rng=rng).failures(arrays.has_cancer))
            )
        assert (decisions[0] == decisions[1]).all()

    def test_dynamics_build_stream_wrappers(self):
        for dynamics in ("adaptive", "fatigue"):
            system = SystemSpec(kind="assisted", dynamics=dynamics).build(3)
            assert system.supports_stream
            assert not system.supports_batch

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(SimulationError, match="unknown system kind"):
            SystemSpec(kind="cyborg")
        with pytest.raises(SimulationError, match="unknown bias"):
            SystemSpec(bias="extreme")
        with pytest.raises(SimulationError, match="unknown dynamics"):
            SystemSpec(dynamics="chaotic")


class TestScenarioGrid:
    def test_len_matches_cells(self):
        grid = ScenarioGrid(
            name="g",
            populations=("routine", "young"),
            systems=("unaided", "assisted"),
            biases=("none", "mild"),
            operating_points=(0.0, 0.1, 0.2),
            replicates=2,
        )
        assert len(list(grid.cells())) == len(grid)

    def test_unaided_cells_do_not_multiply_across_operating_points(self):
        grid = ScenarioGrid(
            name="g", systems=("unaided",), operating_points=(0.0, 0.1, 0.2)
        )
        cells = list(grid.cells())
        assert len(cells) == 1
        assert len(grid) == 1

    def test_cell_ids_unique_across_mixed_grid(self):
        grid = ScenarioGrid(
            name="g",
            systems=("unaided", "assisted"),
            biases=("none", "mild"),
            dynamics=("none", "adaptive"),
            operating_points=(0.0, 0.2),
            replicates=2,
        )
        ids = [cell.cell_id for cell in grid.cells()]
        assert len(set(ids)) == len(ids) == len(grid)

    def test_empty_axis_rejected(self):
        with pytest.raises(SimulationError, match="must be non-empty"):
            ScenarioGrid(name="g", biases=())

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            ScenarioGrid(name="g", populations=("routine", "routine"))

    def test_invalid_axis_value_rejected_eagerly(self):
        with pytest.raises(SimulationError, match="unknown bias"):
            ScenarioGrid(name="g", biases=("mild", "extreme"))

    def test_canonical_order_is_stable(self):
        grid = ScenarioGrid(
            name="g", systems=("unaided", "assisted"), replicates=2
        )
        first = [cell.cell_id for cell in grid.cells()]
        second = [cell.cell_id for cell in grid.cells()]
        assert first == second


class TestGridSerialisation:
    def test_round_trip_through_dict(self):
        grid = ScenarioGrid(
            name="round",
            populations=("routine", "symptomatic"),
            profiles=("trial", "field"),
            num_cases=500,
            cancer_fraction=0.4,
            population_seed=3,
            systems=("unaided", "assisted"),
            biases=("none", "strong"),
            dynamics=("none", "fatigue"),
            operating_points=(-0.1, 0.3),
            replicates=3,
        )
        assert ScenarioGrid.from_dict(grid.to_dict()) == grid

    def test_round_trip_through_file(self, tmp_path):
        grid = ScenarioGrid(name="file", operating_points=(0.0, 0.25))
        path = tmp_path / "grid.json"
        grid.to_file(path)
        assert ScenarioGrid.from_file(path) == grid

    def test_minimal_file_uses_defaults(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text('{"name": "tiny"}')
        grid = ScenarioGrid.from_file(path)
        assert grid == ScenarioGrid(name="tiny")

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SimulationError, match="unknown grid keys"):
            ScenarioGrid.from_dict({"name": "g", "cels": {}})

    def test_unknown_axis_key_rejected(self):
        with pytest.raises(SimulationError, match="unknown axes"):
            ScenarioGrid.from_dict({"name": "g", "axes": {"populatoins": ["routine"]}})

    def test_unsupported_schema_rejected(self):
        with pytest.raises(SimulationError, match="unsupported grid schema"):
            ScenarioGrid.from_dict({"name": "g", "schema": 99})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SimulationError, match="invalid JSON"):
            ScenarioGrid.from_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read grid file"):
            ScenarioGrid.from_file(tmp_path / "absent.json")
