"""Kill a sweep mid-run with SIGKILL; resume must pick up the journal.

This is the acceptance test for crash-safe checkpointing: a real CLI
process (``python -m repro sweep``) is hard-killed while shards are
streaming into its journal, then the same grid is resumed.  Every
journalled cell must be restored without recomputation (asserted through
the ``sweep.cells.skipped`` counter) and the final results must be
bit-identical to a run that was never interrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import Instrumentation
from repro.screening import SubtletyClassifier
from repro.sweep import ScenarioGrid, resume_sweep, run_sweep
from repro.trial.storage import load_journal_entries

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Large enough that the process is reliably mid-run when killed: the
#: adaptive-dynamics cells stream chunk by chunk, stretching the window.
GRID = ScenarioGrid(
    name="kill",
    populations=("routine",),
    num_cases=400,
    systems=("unaided", "assisted"),
    biases=("none", "mild", "strong"),
    dynamics=("none", "adaptive"),
    operating_points=(0.0,),
    replicates=100,
)
SEED = 23
SHARD_SIZE = 8


def _journalled_cells(journal: Path) -> int:
    try:
        text = journal.read_text()
    except OSError:
        return 0
    count = 0
    for line in text.splitlines():
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # torn final line mid-append
        if entry.get("kind") == "cell":
            count += 1
    return count


def test_sigkill_mid_sweep_then_resume_recomputes_nothing(tmp_path):
    grid_file = tmp_path / "grid.json"
    GRID.to_file(grid_file)
    journal = tmp_path / "sweep.jsonl"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "--grid",
            str(grid_file),
            "--seed",
            str(SEED),
            "--shard-size",
            str(SHARD_SIZE),
            "--journal",
            str(journal),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until at least two shards have been checkpointed, then
        # kill without any chance to clean up.
        deadline = time.monotonic() + 120
        while _journalled_cells(journal) < 2 * SHARD_SIZE:
            if process.poll() is not None:
                pytest.fail(
                    "sweep process exited before it could be killed; "
                    "grid too small for this environment"
                )
            if time.monotonic() > deadline:
                pytest.fail("journal never reached two shards")
            time.sleep(0.01)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    assert process.returncode != 0

    journalled = sum(
        1 for e in load_journal_entries(journal) if e.get("kind") == "cell"
    )
    assert journalled >= 2 * SHARD_SIZE

    classifier = SubtletyClassifier()
    obs = Instrumentation(name="test")
    resumed = resume_sweep(
        GRID,
        seed=SEED,
        classifier=classifier,
        shard_size=SHARD_SIZE,
        journal=journal,
        obs=obs,
    )
    assert resumed.complete

    # Zero recomputed cells: everything the killed process journalled
    # was restored, not re-executed.
    assert obs.metrics.counter("sweep.cells.skipped").value == journalled
    assert resumed.skipped == journalled
    assert resumed.executed == len(GRID) - journalled

    uninterrupted = run_sweep(
        GRID, seed=SEED, classifier=classifier, shard_size=SHARD_SIZE
    )
    assert resumed.evaluations() == uninterrupted.evaluations()
