"""Tests for the sweep compiler (repro.sweep.plan)."""

import pytest

from repro.exceptions import SimulationError
from repro.obs import Instrumentation, use_instrumentation
from repro.sweep import ScenarioGrid, compile_grid


def small_grid(**overrides):
    defaults = dict(
        name="plan",
        populations=("routine", "symptomatic"),
        num_cases=50,
        systems=("unaided", "assisted"),
        biases=("none", "mild"),
        operating_points=(0.0, 0.2),
        replicates=2,
    )
    defaults.update(overrides)
    return ScenarioGrid(**defaults)


class TestCompileGrid:
    def test_plan_covers_every_cell_exactly_once(self):
        grid = small_grid()
        plan = compile_grid(grid, seed=11)
        planned_ids = [cell.cell_id for cell in plan.cells()]
        grid_ids = [cell.cell_id for cell in grid.cells()]
        assert planned_ids == grid_ids
        assert len(plan) == len(grid)

    def test_workloads_deduplicated_by_key(self):
        plan = compile_grid(small_grid(), seed=11)
        # Two populations, one profile/size/fraction => two workloads
        # shared by all system variants and replicates.
        assert len(plan.workloads) == 2
        for batch in (b for shard in plan.shards for b in shard.batches):
            assert all(c.workload_key == batch.workload_key for c in batch.cells)

    def test_fusion_respects_fuse_limit(self):
        plan = compile_grid(small_grid(), seed=11, fuse_limit=4)
        sizes = [len(b.cells) for shard in plan.shards for b in shard.batches]
        assert max(sizes) <= 4
        assert plan.fused_dispatches == len(sizes)

    def test_sharding_respects_shard_size(self):
        plan = compile_grid(small_grid(), seed=11, shard_size=5, fuse_limit=3)
        assert all(len(shard) <= 5 for shard in plan.shards)
        assert sum(len(shard) for shard in plan.shards) == len(plan)

    def test_fuse_limit_clamped_to_shard_size(self):
        # A dispatch must never span a checkpoint boundary.
        plan = compile_grid(small_grid(), seed=11, shard_size=3, fuse_limit=64)
        sizes = [len(b.cells) for shard in plan.shards for b in shard.batches]
        assert max(sizes) <= 3
        assert all(len(shard) <= 3 for shard in plan.shards)

    def test_seeds_are_unique_and_stable(self):
        first = compile_grid(small_grid(), seed=42)
        second = compile_grid(small_grid(), seed=42)
        seeds = [cell.seed for cell in first.cells()]
        assert seeds == [cell.seed for cell in second.cells()]
        assert len(set(seeds)) == len(seeds)

    def test_seeds_do_not_depend_on_scheduling(self):
        # Fusion and sharding are scheduling decisions only: the seed a
        # cell records must not change with shard/fuse geometry.
        wide = compile_grid(small_grid(), seed=42, shard_size=64, fuse_limit=32)
        narrow = compile_grid(small_grid(), seed=42, shard_size=2, fuse_limit=2)
        assert {c.cell_id: c.seed for c in wide.cells()} == {
            c.cell_id: c.seed for c in narrow.cells()
        }

    def test_master_seed_changes_cell_seeds(self):
        a = compile_grid(small_grid(), seed=1)
        b = compile_grid(small_grid(), seed=2)
        assert [c.seed for c in a.cells()] != [c.seed for c in b.cells()]

    def test_invalid_sizes_rejected(self):
        for kwargs in (
            {"chunk_size": 0},
            {"shard_size": 0},
            {"fuse_limit": -1},
        ):
            with pytest.raises(SimulationError, match="must be >= 1"):
                compile_grid(small_grid(), seed=1, **kwargs)

    def test_compile_emits_plan_gauges(self):
        obs = Instrumentation(name="test")
        with use_instrumentation(obs):
            plan = compile_grid(small_grid(), seed=7, shard_size=8)
        metrics = obs.metrics
        assert metrics.gauge("sweep.plan.cells").value == len(plan)
        assert metrics.gauge("sweep.plan.workloads").value == len(plan.workloads)
        assert metrics.gauge("sweep.plan.shards").value == len(plan.shards)


class TestSweepPlan:
    def test_cell_by_id_round_trip(self):
        plan = compile_grid(small_grid(), seed=9)
        for cell in plan.cells():
            assert plan.cell_by_id(cell.cell_id) is cell

    def test_cell_by_id_unknown_raises(self):
        plan = compile_grid(small_grid(), seed=9)
        with pytest.raises(SimulationError, match="not in this plan"):
            plan.cell_by_id("not-a-cell")

    def test_fingerprint_stable_for_same_inputs(self):
        a = compile_grid(small_grid(), seed=9)
        b = compile_grid(small_grid(), seed=9)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_sensitive_to_grid_seed_and_chunking(self):
        base = compile_grid(small_grid(), seed=9)
        variants = [
            compile_grid(small_grid(replicates=3), seed=9),
            compile_grid(small_grid(), seed=10),
            compile_grid(small_grid(), seed=9, chunk_size=8),
            compile_grid(small_grid(), seed=9, shard_size=4),
        ]
        prints = {plan.fingerprint for plan in variants}
        assert base.fingerprint not in prints
        assert len(prints) == len(variants)
