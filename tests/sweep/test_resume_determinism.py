"""Resume determinism: interrupted + resumed == uninterrupted, bit for bit.

The contract (docs/sweeps.md): interrupting a sweep after any number of
shards and resuming it from the journal yields per-cell results
bit-identical to the uninterrupted run — and therefore an identical
consolidated analysis report — at every worker count.
"""

import pytest

from repro.analysis import render_sweep_summary
from repro.obs import Instrumentation
from repro.screening import SubtletyClassifier
from repro.sweep import ScenarioGrid, resume_sweep, run_sweep

GRID = ScenarioGrid(
    name="resume",
    populations=("routine", "symptomatic"),
    num_cases=60,
    systems=("unaided", "assisted"),
    biases=("none", "strong"),
    dynamics=("none", "adaptive"),
    operating_points=(0.0,),
    replicates=1,
)
SEED = 17
SHARD_SIZE = 3


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_interrupted_plus_resumed_matches_uninterrupted(tmp_path, workers):
    classifier = SubtletyClassifier()
    common = dict(
        seed=SEED, classifier=classifier, shard_size=SHARD_SIZE, workers=workers
    )

    uninterrupted = run_sweep(GRID, **common)
    assert uninterrupted.complete

    journal = tmp_path / f"sweep-{workers}.jsonl"
    interrupted = run_sweep(GRID, journal=journal, max_shards=2, **common)
    assert not interrupted.complete
    assert interrupted.executed == 2 * SHARD_SIZE

    obs = Instrumentation(name="test")
    resumed = resume_sweep(GRID, journal=journal, obs=obs, **common)
    assert resumed.complete

    # Nothing journalled was recomputed; everything else was.
    assert obs.metrics.counter("sweep.cells.skipped").value == interrupted.executed
    assert resumed.skipped == interrupted.executed
    assert resumed.executed == len(GRID) - interrupted.executed

    # Per-cell results are bit-identical...
    assert resumed.evaluations() == uninterrupted.evaluations()
    # ...and so is the consolidated analysis report built from them.
    group_by = ("population", "system", "bias")
    assert render_sweep_summary(resumed.rows(), group_by) == render_sweep_summary(
        uninterrupted.rows(), group_by
    )


def test_repeated_interruptions_still_converge(tmp_path):
    # Stop-and-go in one-shard steps: the pathological interruption
    # pattern must still reproduce the uninterrupted run exactly.
    classifier = SubtletyClassifier()
    common = dict(seed=SEED, classifier=classifier, shard_size=SHARD_SIZE)
    uninterrupted = run_sweep(GRID, **common)

    journal = tmp_path / "stop-and-go.jsonl"
    result = run_sweep(GRID, journal=journal, max_shards=1, **common)
    while not result.complete:
        result = resume_sweep(GRID, journal=journal, max_shards=1, **common)
    assert result.evaluations() == uninterrupted.evaluations()
