"""Tests for the sweep runner (repro.sweep.runner).

The determinism contract under test: a cell's result depends only on its
recorded ``(seed, chunk_size)`` — never on fusion geometry, worker
count, journalling, or which other cells ran alongside it.
"""

import pytest

from repro.exceptions import SimulationError
from repro.obs import Instrumentation
from repro.screening import SubtletyClassifier
from repro.sweep import (
    CellResult,
    ScenarioGrid,
    ShardStreamState,
    compile_grid,
    reproduce_cell,
    resume_sweep,
    run_sweep,
)


def small_grid(**overrides):
    defaults = dict(
        name="runner",
        populations=("routine", "symptomatic"),
        num_cases=40,
        systems=("unaided", "assisted"),
        biases=("none", "mild"),
        dynamics=("none", "adaptive"),
        operating_points=(0.0,),
        replicates=1,
    )
    defaults.update(overrides)
    return ScenarioGrid(**defaults)


class TestRunSweep:
    def test_complete_sweep_covers_every_cell(self):
        grid = small_grid()
        result = run_sweep(grid, seed=5)
        assert result.complete
        assert result.executed == len(grid)
        assert result.skipped == 0
        assert set(result.evaluations()) == {c.cell_id for c in grid.cells()}

    def test_fused_matches_standalone_reproduction(self):
        # Every cell — batch and adaptive-stream alike — must be
        # bit-identical to its standalone evaluate_system_batch replay.
        classifier = SubtletyClassifier()
        result = run_sweep(small_grid(), seed=5, classifier=classifier)
        evaluations = result.evaluations()
        for cell_id, evaluation in evaluations.items():
            assert evaluation == reproduce_cell(
                result.plan, cell_id, classifier=classifier
            ), f"fused result for {cell_id} differs from standalone replay"

    def test_results_independent_of_fusion_geometry(self):
        grid = small_grid()
        wide = run_sweep(grid, seed=5, shard_size=64, fuse_limit=32)
        narrow = run_sweep(grid, seed=5, shard_size=2, fuse_limit=1)
        assert wide.evaluations() == narrow.evaluations()

    def test_serial_matches_parallel_workers(self):
        grid = small_grid()
        serial = run_sweep(grid, seed=5, workers=1)
        parallel = run_sweep(grid, seed=5, workers=2)
        assert serial.evaluations() == parallel.evaluations()

    def test_classifier_produces_per_class_breakdown(self):
        result = run_sweep(small_grid(), seed=5, classifier=SubtletyClassifier())
        evaluation = next(iter(result.evaluations().values()))
        assert evaluation.per_class_false_negative

    def test_rows_expose_grid_coordinates_and_counts(self):
        grid = small_grid()
        result = run_sweep(grid, seed=5)
        rows = result.rows()
        assert len(rows) == len(grid)
        row = rows[0]
        for column in (
            "cell_id",
            "seed",
            "population",
            "system",
            "bias",
            "dynamics",
            "replicate",
            "fn_failures",
            "fn_trials",
            "fp_failures",
            "fp_trials",
        ):
            assert column in row
        assert row["fn_trials"] + row["fp_trials"] == grid.num_cases

    def test_counters_track_completed_cells_and_dispatches(self):
        obs = Instrumentation(name="test")
        grid = small_grid()
        result = run_sweep(grid, seed=5, fuse_limit=4, obs=obs)
        metrics = obs.metrics
        assert metrics.counter("sweep.cells.completed").value == len(grid)
        assert metrics.counter("sweep.cells.skipped").value == 0
        assert metrics.counter("sweep.dispatches").value == result.plan.fused_dispatches
        assert metrics.counter("sweep.workloads.built").value == len(
            result.plan.workloads
        )

    def test_invalid_arguments_rejected(self):
        grid = small_grid()
        with pytest.raises(SimulationError, match="workers"):
            run_sweep(grid, seed=5, workers=0)
        with pytest.raises(SimulationError, match="max_shards"):
            run_sweep(grid, seed=5, max_shards=-1)
        with pytest.raises(SimulationError, match="requires a journal"):
            run_sweep(grid, seed=5, resume=True)


class TestJournalling:
    def test_max_shards_returns_partial_result(self, tmp_path):
        grid = small_grid()
        journal = tmp_path / "sweep.jsonl"
        partial = run_sweep(
            grid, seed=5, journal=journal, shard_size=3, max_shards=2
        )
        assert not partial.complete
        assert partial.executed == 6
        assert journal.exists()

    def test_existing_journal_without_resume_refused(self, tmp_path):
        grid = small_grid()
        journal = tmp_path / "sweep.jsonl"
        run_sweep(grid, seed=5, journal=journal, shard_size=3, max_shards=1)
        with pytest.raises(SimulationError, match="already exists"):
            run_sweep(grid, seed=5, journal=journal)

    def test_resume_skips_journalled_cells(self, tmp_path):
        grid = small_grid()
        journal = tmp_path / "sweep.jsonl"
        partial = run_sweep(
            grid, seed=5, journal=journal, shard_size=3, max_shards=2
        )
        obs = Instrumentation(name="test")
        resumed = resume_sweep(grid, seed=5, journal=journal, shard_size=3, obs=obs)
        assert resumed.complete
        assert resumed.skipped == partial.executed == 6
        assert resumed.executed == len(grid) - 6
        assert obs.metrics.counter("sweep.cells.skipped").value == 6
        assert obs.metrics.counter("sweep.cells.completed").value == len(grid) - 6

    def test_resume_rejects_journal_from_different_plan(self, tmp_path):
        grid = small_grid()
        journal = tmp_path / "sweep.jsonl"
        run_sweep(grid, seed=5, journal=journal, shard_size=3, max_shards=1)
        with pytest.raises(SimulationError, match="different plan"):
            resume_sweep(grid, seed=6, journal=journal, shard_size=3)
        with pytest.raises(SimulationError, match="different plan"):
            resume_sweep(
                small_grid(replicates=2), seed=5, journal=journal, shard_size=3
            )

    def test_resume_with_fresh_journal_runs_everything(self, tmp_path):
        grid = small_grid()
        result = resume_sweep(grid, seed=5, journal=tmp_path / "new.jsonl")
        assert result.complete and result.skipped == 0


class TestShardStreamStates:
    def test_one_state_per_shard_and_totals_match_rows(self):
        grid = small_grid()
        result = run_sweep(grid, seed=5, shard_size=3)
        assert len(result.shard_states) == len(result.plan.shards)
        assert [s.shard for s in result.shard_states] == sorted(
            s.shard for s in result.shard_states
        )
        merged = result.stream_state()
        rows = result.rows()
        assert merged.cells == len(rows)
        assert merged.fn_failures == sum(r["fn_failures"] for r in rows)
        assert merged.fn_trials == sum(r["fn_trials"] for r in rows)
        assert merged.fp_failures == sum(r["fp_failures"] for r in rows)
        assert merged.fp_trials == sum(r["fp_trials"] for r in rows)

    def test_merged_totals_invariant_to_shard_partition(self):
        grid = small_grid()
        wide = run_sweep(grid, seed=5, shard_size=64).stream_state()
        narrow = run_sweep(grid, seed=5, shard_size=2).stream_state()
        for field in (
            "cells",
            "fn_failures",
            "fn_trials",
            "fp_failures",
            "fp_trials",
        ):
            assert getattr(wide, field) == getattr(narrow, field)
        # Per-cell moments see the same multiset of rates either way.
        assert wide.fn_rate.count == narrow.fn_rate.count
        assert wide.fn_rate.mean == pytest.approx(narrow.fn_rate.mean)

    def test_streaming_summary_shape(self):
        result = run_sweep(small_grid(), seed=5, shard_size=4)
        summary = result.streaming_summary()
        assert "shard" not in summary
        assert summary["shards"] == len(result.plan.shards)
        assert summary["cells"] == len(result.plan)
        for key in (
            "fn_failures",
            "fn_trials",
            "fp_failures",
            "fp_trials",
            "fn_rate",
            "fp_rate",
            "fn_rate_per_cell",
            "fp_rate_per_cell",
        ):
            assert key in summary

    def test_journal_entry_round_trip(self):
        result = run_sweep(small_grid(), seed=5, shard_size=3)
        for state in result.shard_states:
            restored = ShardStreamState.from_entry(state.to_entry())
            assert restored.shard == state.shard
            assert restored.cells == state.cells
            assert restored.fn_failures == state.fn_failures
            assert restored.fn_trials == state.fn_trials
            assert restored.fp_failures == state.fp_failures
            assert restored.fp_trials == state.fp_trials
            assert restored.fn_rate.state() == state.fn_rate.state()
            assert restored.fp_rate.state() == state.fp_rate.state()

    def test_malformed_entry_rejected(self):
        with pytest.raises(SimulationError, match="schema"):
            ShardStreamState.from_entry({"kind": "shard_state", "schema": 99})
        entry = ShardStreamState().to_entry()
        del entry["fn_rate"]
        with pytest.raises(SimulationError, match="malformed shard state entry"):
            ShardStreamState.from_entry(entry)
        with pytest.raises(SimulationError, match="cannot merge"):
            ShardStreamState().merge({"cells": 1})

    def test_resume_restores_shard_states(self, tmp_path):
        grid = small_grid()
        journal = tmp_path / "sweep.jsonl"
        run_sweep(grid, seed=5, journal=journal, shard_size=3, max_shards=2)
        resumed = resume_sweep(grid, seed=5, journal=journal, shard_size=3)
        assert resumed.complete
        assert len(resumed.shard_states) == len(resumed.plan.shards)
        fresh = run_sweep(grid, seed=5, shard_size=3)
        merged, baseline = resumed.stream_state(), fresh.stream_state()
        assert merged.cells == baseline.cells
        assert merged.fn_failures == baseline.fn_failures
        assert merged.fp_failures == baseline.fp_failures
        assert merged.fn_rate.count == baseline.fn_rate.count

    def test_progress_events_emitted(self):
        obs = Instrumentation(name="test")
        result = run_sweep(small_grid(), seed=5, shard_size=3, obs=obs)
        metrics = obs.metrics
        shards = len(result.plan.shards)
        assert metrics.counter("sweep.shards.completed").value == shards
        assert metrics.gauge("sweep.progress").value == 1.0
        marks = [
            event
            for event in metrics.timeline.events()
            if event.name == "sweep.shard.completed"
        ]
        assert [m.value for m in marks] == list(range(shards))


class TestCellResult:
    def test_journal_entry_round_trip(self):
        result = run_sweep(small_grid(), seed=5, classifier=SubtletyClassifier())
        for cell in result.results:
            restored = CellResult.from_entry(cell.to_entry(shard=0))
            assert restored == cell
            assert restored.evaluation() == cell.evaluation()

    def test_malformed_entry_rejected(self):
        with pytest.raises(SimulationError, match="malformed journal cell entry"):
            CellResult.from_entry({"kind": "cell", "cell_id": "x"})
