"""Tests for repro.system.analytic (exact model derivation)."""

import numpy as np
import pytest

from repro.cadt import DetectionAlgorithm
from repro.exceptions import SimulationError
from repro.reader import MILD_BIAS, ReaderModel
from repro.screening import PopulationModel, SubtletyClassifier
from repro.system import (
    derive_class_parameters,
    derive_false_positive_class_parameters,
    derive_model,
    derive_operating_point,
    derive_two_sided_model,
)


@pytest.fixture(scope="module")
def world():
    population = PopulationModel(seed=1101)
    cancers = population.generate_cancers(300)
    healthy = population.generate_healthy(300)
    reader = ReaderModel(bias=MILD_BIAS, name="r")
    return cancers, healthy, reader, DetectionAlgorithm()


class TestDeriveClassParameters:
    def test_machine_failure_is_mean_miss(self, world):
        cancers, _, reader, algorithm = world
        params = derive_class_parameters(reader, algorithm, cancers)
        expected = float(np.mean([algorithm.miss_probability(c) for c in cancers]))
        assert params.p_machine_failure == pytest.approx(expected)

    def test_single_case_class_matches_per_case_conditionals(self, world):
        cancers, _, reader, algorithm = world
        case = cancers[0]
        params = derive_class_parameters(reader, algorithm, [case])
        assert params.p_human_failure_given_machine_failure == pytest.approx(
            reader.p_false_negative(case, False)
        )
        assert params.p_human_failure_given_machine_success == pytest.approx(
            reader.p_false_negative(case, True)
        )

    def test_importance_positive_for_biased_reader(self, world):
        cancers, _, reader, algorithm = world
        params = derive_class_parameters(reader, algorithm, cancers)
        assert params.importance_index > 0

    def test_rejects_empty_and_healthy(self, world):
        _, healthy, reader, algorithm = world
        with pytest.raises(SimulationError):
            derive_class_parameters(reader, algorithm, [])
        with pytest.raises(SimulationError):
            derive_class_parameters(reader, algorithm, healthy[:3])


class TestDeriveModel:
    def test_prediction_equals_per_case_average(self, world):
        """The class-level model must reproduce the exact per-case mixture:
        the conditional weighting in derive_class_parameters is what makes
        this identity hold despite within-class heterogeneity."""
        cancers, _, reader, algorithm = world
        model, profile = derive_model(
            reader, algorithm, cancers, SubtletyClassifier()
        )
        predicted = model.system_failure_probability(profile)
        per_case = np.mean(
            [
                algorithm.miss_probability(c) * reader.p_false_negative(c, False)
                + (1 - algorithm.miss_probability(c)) * reader.p_false_negative(c, True)
                for c in cancers
            ]
        )
        assert predicted == pytest.approx(float(per_case), abs=1e-12)

    def test_profile_matches_class_counts(self, world):
        cancers, _, reader, algorithm = world
        classifier = SubtletyClassifier()
        _, profile = derive_model(reader, algorithm, cancers, classifier)
        difficult_count = sum(
            classifier.classify(c).name == "difficult" for c in cancers
        )
        assert profile["difficult"] == pytest.approx(difficult_count / len(cancers))

    def test_default_single_class(self, world):
        cancers, _, reader, algorithm = world
        model, profile = derive_model(reader, algorithm, cancers)
        assert len(profile) == 1

    def test_rejects_healthy_cases(self, world):
        _, healthy, reader, algorithm = world
        with pytest.raises(SimulationError):
            derive_model(reader, algorithm, healthy[:5])


class TestDeriveFalsePositiveSide:
    def test_machine_failure_is_false_prompt_probability(self, world):
        _, healthy, reader, algorithm = world
        params = derive_false_positive_class_parameters(reader, algorithm, healthy)
        expected = float(
            np.mean([algorithm.false_positive_probability(c) for c in healthy])
        )
        assert params.p_machine_failure == pytest.approx(expected)

    def test_false_prompts_raise_recall_conditional(self, world):
        """PHf|Mf (recall given prompts) must exceed PHf|Ms (clean film)
        for a persuadable reader."""
        _, healthy, reader, algorithm = world
        params = derive_false_positive_class_parameters(reader, algorithm, healthy)
        assert (
            params.p_human_failure_given_machine_failure
            > params.p_human_failure_given_machine_success
        )

    def test_empirical_agreement(self, world, rng):
        """The analytic FP probability matches sampled reading."""
        _, healthy, reader, algorithm = world
        params = derive_false_positive_class_parameters(reader, algorithm, healthy)
        analytic = params.p_system_failure
        recalls = 0
        trials = 0
        for case in healthy:
            for _ in range(30):
                output = algorithm.process(case, rng)
                recalls += int(reader.decide(case, output, rng).recall)
                trials += 1
        assert recalls / trials == pytest.approx(analytic, abs=0.01)

    def test_rejects_cancers(self, world):
        cancers, _, reader, algorithm = world
        with pytest.raises(SimulationError):
            derive_false_positive_class_parameters(reader, algorithm, cancers[:5])


class TestTwoSidedDerivation:
    def test_operating_point_consistency(self, world):
        cancers, healthy, reader, algorithm = world
        model = derive_two_sided_model(reader, algorithm, cancers, healthy)
        point = derive_operating_point("nominal", reader, algorithm, cancers, healthy)
        assert point.p_false_negative == pytest.approx(model.p_false_negative())
        assert point.p_false_positive == pytest.approx(model.p_false_positive())

    def test_threshold_sweep_monotone_at_system_level(self, world):
        cancers, healthy, reader, _ = world
        base = DetectionAlgorithm()
        points = [
            derive_operating_point(
                f"{shift:+.1f}",
                reader,
                base.with_threshold_shift(shift),
                cancers,
                healthy,
            )
            for shift in (-1.0, 0.0, 1.0)
        ]
        assert (
            points[0].p_false_negative
            < points[1].p_false_negative
            < points[2].p_false_negative
        )
        assert (
            points[0].p_false_positive
            > points[1].p_false_positive
            > points[2].p_false_positive
        )
