"""Seeded comparisons: common random numbers for stochastic systems.

Regression suite for the ``seed`` parameter of ``evaluate_system`` /
``compare_systems``.  Without it, every comparison consumed the
components' private generators, whose state depends on whatever ran
before — so "comparing" two systems could silently measure stale
generator state.  With ``seed``, each system is evaluated under a fresh
``default_rng(seed)``, making comparisons reproducible and genuinely
common-random-number.
"""

from repro.cadt import Cadt
from repro.reader import MILD_BIAS, ReaderModel, ReaderSkill
from repro.screening import routine_screening_population, trial_workload
from repro.system import (
    AssistedReading,
    UnaidedReading,
    compare_systems,
    evaluate_system,
)


def make_workload(n=400):
    return trial_workload(
        routine_screening_population(seed=51), n, cancer_fraction=0.3, name="crn"
    )


def make_system(component_seed, name="s"):
    reader = ReaderModel(
        skill=ReaderSkill(), bias=MILD_BIAS, name=name, seed=component_seed
    )
    return AssistedReading(reader, Cadt(seed=component_seed + 1000), name=name)


def counts(evaluation):
    return (
        evaluation.false_negative.failures,
        evaluation.false_negative.trials,
        evaluation.false_positive.failures,
        evaluation.false_positive.trials,
    )


class TestSeededEvaluation:
    def test_seed_overrides_private_generator_state(self):
        # Identical parameters, different component seeds: with an
        # evaluation seed the results must be identical anyway.
        workload = make_workload()
        first = evaluate_system(make_system(1), workload, seed=9)
        second = evaluate_system(make_system(2), workload, seed=9)
        assert counts(first) == counts(second)

    def test_repeated_seeded_evaluation_is_stable(self):
        # The historical hazard: a second evaluation of the *same* system
        # instance used to see advanced private generators.  With a seed
        # it must reproduce exactly.
        workload = make_workload()
        system = make_system(1)
        first = evaluate_system(system, workload, seed=9)
        second = evaluate_system(system, workload, seed=9)
        assert counts(first) == counts(second)

    def test_unseeded_repeats_differ(self):
        # Sanity check that the stability above is the seed's doing.
        workload = make_workload()
        system = make_system(1)
        first = evaluate_system(system, workload)
        second = evaluate_system(system, workload)
        assert counts(first) != counts(second)

    def test_different_seeds_differ(self):
        workload = make_workload()
        first = evaluate_system(make_system(1), workload, seed=9)
        second = evaluate_system(make_system(1), workload, seed=10)
        assert counts(first) != counts(second)


class TestSeededComparison:
    def test_identical_systems_tie_exactly_under_common_seed(self):
        # The sharpest CRN property: two systems with identical
        # parameters (but different private seeds and names) must tie
        # exactly, because both replay the same decision stream.
        workload = make_workload()
        results = compare_systems(
            [make_system(1, name="a"), make_system(2, name="b")], workload, seed=33
        )
        assert counts(results["a"]) == counts(results["b"])

    def test_comparison_is_reproducible(self):
        workload = make_workload()
        systems = [make_system(1, name="a"), make_system(2, name="b")]
        first = compare_systems(systems, workload, seed=33)
        second = compare_systems(systems, workload, seed=33)
        for name in ("a", "b"):
            assert counts(first[name]) == counts(second[name])

    def test_order_of_systems_does_not_matter_under_seed(self):
        # Each system gets its own fresh generator, so evaluation order
        # cannot leak state between systems.
        workload = make_workload()
        forward = compare_systems(
            [make_system(1, name="a"), make_system(2, name="b")], workload, seed=33
        )
        reversed_ = compare_systems(
            [make_system(2, name="b"), make_system(1, name="a")], workload, seed=33
        )
        for name in ("a", "b"):
            assert counts(forward[name]) == counts(reversed_[name])

    def test_unaided_and_assisted_share_reader_randomness(self):
        # Cross-configuration CRN: under one seed, the unaided system and
        # the assisted system see the same case stream and seeded draws,
        # isolating the CADT's effect from sampling noise.
        workload = make_workload()
        reader_kwargs = dict(skill=ReaderSkill(), bias=MILD_BIAS)
        unaided = UnaidedReading(
            ReaderModel(name="u", seed=1, **reader_kwargs), name="unaided"
        )
        assisted = AssistedReading(
            ReaderModel(name="a", seed=2, **reader_kwargs),
            Cadt(seed=3),
            name="assisted",
        )
        results = compare_systems([unaided, assisted], workload, seed=101)
        repeat = compare_systems([unaided, assisted], workload, seed=101)
        assert counts(results["unaided"]) == counts(repeat["unaided"])
        assert counts(results["assisted"]) == counts(repeat["assisted"])
