"""Tests for repro.system.economics."""

import pytest

from repro.exceptions import SimulationError
from repro.system import ConfigurationCost, CostModel, price_configuration


@pytest.fixture
def costs():
    return CostModel(
        reader_cost_per_case=1.0,
        machine_cost_per_case=0.1,
        recall_cost=20.0,
        missed_cancer_cost=2000.0,
    )


class TestCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(reader_cost_per_case=-1.0)


class TestPriceConfiguration:
    def test_operating_cost_components(self, costs):
        priced = price_configuration(
            "double+cadt",
            p_false_negative=0.1,
            p_false_positive=0.1,
            prevalence=0.006,
            cost_model=costs,
            num_readers=2,
            uses_machine=True,
        )
        assert priced.operating_cost == pytest.approx(2 * 1.0 + 0.1)

    def test_arbitration_adds_partial_reading(self, costs):
        priced = price_configuration(
            "double+arb",
            0.1,
            0.1,
            0.006,
            costs,
            num_readers=2,
            arbitration_rate=0.05,
        )
        assert priced.operating_cost == pytest.approx(2.05)

    def test_trainee_multiplier(self, costs):
        trainees = price_configuration(
            "trainees",
            0.1,
            0.1,
            0.006,
            costs,
            num_readers=2,
            reader_cost_multiplier=0.5,
        )
        assert trainees.operating_cost == pytest.approx(1.0)

    def test_failure_cost_formula(self, costs):
        priced = price_configuration(
            "single", p_false_negative=0.2, p_false_positive=0.1,
            prevalence=0.01, cost_model=costs,
        )
        recall_rate = 0.01 * 0.8 + 0.99 * 0.1
        expected = recall_rate * 20.0 + 0.01 * 0.2 * 2000.0
        assert priced.failure_cost == pytest.approx(expected)

    def test_cost_per_cancer_detected(self, costs):
        priced = price_configuration("single", 0.2, 0.1, 0.01, costs)
        assert priced.cancers_detected_per_case == pytest.approx(0.008)
        assert priced.cost_per_cancer_detected == pytest.approx(
            priced.total_cost / 0.008
        )

    def test_detecting_nothing_costs_infinite_per_cancer(self, costs):
        blind = price_configuration("blind", 1.0, 0.0, 0.01, costs)
        assert blind.cost_per_cancer_detected == float("inf")

    def test_validation(self, costs):
        with pytest.raises(SimulationError):
            price_configuration("x", 0.1, 0.1, 0.01, costs, num_readers=0)
        with pytest.raises(SimulationError):
            price_configuration(
                "x", 0.1, 0.1, 0.01, costs, reader_cost_multiplier=-1.0
            )


class TestEconomicComparisons:
    def test_cadt_pays_for_itself_when_misses_are_expensive(self, costs):
        """A single reader + cheap CADT that halves the FN rate beats the
        unaided reader on total cost at screening prevalence."""
        unaided = price_configuration("unaided", 0.30, 0.10, 0.006, costs)
        assisted = price_configuration(
            "assisted", 0.15, 0.12, 0.006, costs, uses_machine=True
        )
        assert assisted.total_cost < unaided.total_cost
        assert assisted.cost_per_cancer_detected < unaided.cost_per_cancer_detected

    def test_assisted_trainees_cheaper_than_consultant_double_reading(self, costs):
        """The paper's cost-effectiveness hypothesis, priced: two assisted
        trainees with near-equal error rates undercut consultant double
        reading on operating cost."""
        double = price_configuration(
            "double consultants", 0.10, 0.08, 0.006, costs,
            num_readers=2, reader_cost_multiplier=1.5,
        )
        trainees = price_configuration(
            "assisted trainees", 0.11, 0.10, 0.006, costs,
            num_readers=2, reader_cost_multiplier=0.5, uses_machine=True,
        )
        assert trainees.operating_cost < double.operating_cost
        assert trainees.total_cost < double.total_cost
