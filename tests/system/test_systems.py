"""Tests for repro.system (composite system simulators and evaluation)."""

import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.exceptions import SimulationError
from repro.reader import (
    MILD_BIAS,
    NO_BIAS,
    QualificationLevel,
    ReaderModel,
    ReaderPanel,
    ReaderSkill,
)
from repro.screening import PopulationModel, SubtletyClassifier, trial_workload
from repro.system import (
    AssistedDoubleReading,
    AssistedReading,
    DoubleReading,
    RecallPolicy,
    SystemDecision,
    UnaidedReading,
    compare_systems,
    evaluate_system,
)
from tests.screening.test_case_and_population import make_cancer_case


def fresh_reader(name: str, seed: int, **skill_kwargs) -> ReaderModel:
    return ReaderModel(
        skill=ReaderSkill(**skill_kwargs), bias=MILD_BIAS, name=name, seed=seed
    )


class TestSystemDecision:
    def test_is_failure(self):
        case = make_cancer_case()
        recall = SystemDecision(case_id=1, recall=True, machine_failed=False)
        miss = SystemDecision(case_id=1, recall=False, machine_failed=False)
        assert not recall.is_failure(case)
        assert miss.is_failure(case)

    def test_case_mismatch_rejected(self):
        case = make_cancer_case()
        decision = SystemDecision(case_id=99, recall=True, machine_failed=None)
        with pytest.raises(SimulationError):
            decision.is_failure(case)


class TestSingleSystems:
    def test_unaided_has_no_machine(self):
        system = UnaidedReading(fresh_reader("r", 1))
        decision = system.decide(make_cancer_case())
        assert decision.machine_failed is None

    def test_assisted_reports_machine_outcome(self):
        system = AssistedReading(fresh_reader("r", 1), Cadt(seed=2))
        decision = system.decide(make_cancer_case())
        assert isinstance(decision.machine_failed, bool)

    def test_names(self):
        reader = fresh_reader("alice", 1)
        assert UnaidedReading(reader).name == "unaided(alice)"
        assert AssistedReading(reader, Cadt(seed=1)).name == "assisted(alice)"
        assert UnaidedReading(reader, name="custom").name == "custom"


class TestDoubleReading:
    @pytest.fixture
    def readers(self):
        return [fresh_reader("r1", 1), fresh_reader("r2", 2)]

    def test_either_policy_recalls_when_any_recalls(self, readers):
        # Use an obvious cancer: both readers will essentially always recall.
        system = DoubleReading(readers, RecallPolicy.EITHER)
        case = make_cancer_case(
            human_detection_difficulty=0.001, human_classification_difficulty=0.001
        )
        decisions = [system.decide(case).recall for _ in range(50)]
        assert all(decisions)

    def test_requires_two_readers(self, readers):
        with pytest.raises(SimulationError):
            DoubleReading(readers[:1])

    def test_arbitration_requires_arbiter(self, readers):
        with pytest.raises(SimulationError):
            DoubleReading(readers, RecallPolicy.ARBITRATION)

    def test_arbitration_with_arbiter_runs(self, readers):
        system = DoubleReading(
            readers, RecallPolicy.ARBITRATION, arbiter=fresh_reader("arb", 3)
        )
        decision = system.decide(make_cancer_case())
        assert isinstance(decision.recall, bool)

    def test_policies_ordered_by_sensitivity(self):
        """EITHER must catch at least as many cancers as UNANIMOUS."""
        population = PopulationModel(seed=41)
        workload = trial_workload(population, 400, cancer_fraction=1.0)
        either = DoubleReading(
            [fresh_reader("r1", 1), fresh_reader("r2", 2)], RecallPolicy.EITHER
        )
        unanimous = DoubleReading(
            [fresh_reader("r3", 1), fresh_reader("r4", 2)], RecallPolicy.UNANIMOUS
        )
        either_eval = evaluate_system(either, workload)
        unanimous_eval = evaluate_system(unanimous, workload)
        assert (
            either_eval.false_negative.rate <= unanimous_eval.false_negative.rate
        )

    def test_unanimous_more_specific(self):
        population = PopulationModel(seed=42)
        workload = trial_workload(population, 400, cancer_fraction=0.0)
        either = DoubleReading(
            [fresh_reader("r1", 1, specificity=-1.0), fresh_reader("r2", 2, specificity=-1.0)],
            RecallPolicy.EITHER,
        )
        unanimous = DoubleReading(
            [fresh_reader("r3", 1, specificity=-1.0), fresh_reader("r4", 2, specificity=-1.0)],
            RecallPolicy.UNANIMOUS,
        )
        either_eval = evaluate_system(either, workload)
        unanimous_eval = evaluate_system(unanimous, workload)
        assert unanimous_eval.false_positive.rate <= either_eval.false_positive.rate


class TestAssistedDoubleReading:
    def test_machine_outcome_shared(self):
        system = AssistedDoubleReading(
            [fresh_reader("r1", 1), fresh_reader("r2", 2)],
            Cadt(DetectionAlgorithm(), seed=3),
        )
        decision = system.decide(make_cancer_case())
        assert isinstance(decision.machine_failed, bool)

    def test_requires_two_readers(self):
        with pytest.raises(SimulationError):
            AssistedDoubleReading([fresh_reader("r1", 1)], Cadt(seed=1))


class TestEvaluateSystem:
    def test_rates_and_breakdown(self, classifier):
        population = PopulationModel(seed=43)
        workload = trial_workload(population, 300, cancer_fraction=0.5)
        system = AssistedReading(fresh_reader("r", 5), Cadt(seed=6))
        evaluation = evaluate_system(system, workload, classifier)
        assert evaluation.false_negative is not None
        assert evaluation.false_positive is not None
        assert 0.0 <= evaluation.false_negative.rate <= 1.0
        total_class_trials = sum(
            r.trials for r in evaluation.per_class_false_negative.values()
        )
        assert total_class_trials == evaluation.false_negative.trials

    def test_cancer_only_workload_has_no_fp(self):
        population = PopulationModel(seed=44)
        workload = trial_workload(population, 50, cancer_fraction=1.0)
        system = UnaidedReading(fresh_reader("r", 5))
        evaluation = evaluate_system(system, workload)
        assert evaluation.false_positive is None
        assert evaluation.false_negative.trials == 50

    def test_empty_workload_rejected(self):
        from repro.screening import Workload

        system = UnaidedReading(fresh_reader("r", 5))
        with pytest.raises(SimulationError):
            evaluate_system(system, Workload("empty", ()))

    def test_assisted_beats_unaided_on_detection(self):
        """The headline effect: CADT assistance reduces false negatives."""
        population = PopulationModel(seed=45)
        workload = trial_workload(population, 600, cancer_fraction=1.0)
        unaided = UnaidedReading(fresh_reader("u", 7))
        assisted = AssistedReading(fresh_reader("a", 7), Cadt(seed=8))
        results = compare_systems([unaided, assisted], workload)
        assert (
            results[assisted.name].false_negative.rate
            < results[unaided.name].false_negative.rate
        )

    def test_compare_systems_duplicate_names_rejected(self):
        population = PopulationModel(seed=46)
        workload = trial_workload(population, 10, cancer_fraction=0.5)
        a = UnaidedReading(fresh_reader("same", 1), name="x")
        b = UnaidedReading(fresh_reader("other", 2), name="x")
        with pytest.raises(SimulationError):
            compare_systems([a, b], workload)
