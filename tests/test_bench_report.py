"""Tests for the shared benchmark-report writer and trajectory printer."""

import json

from benchmarks._report import (
    SCHEMA_VERSION,
    load_benchmark_reports,
    report_path,
    write_benchmark_report,
)
from benchmarks.report import main as report_main


class TestWriteBenchmarkReport:
    def test_writes_schema_stamped_payload(self, tmp_path):
        path = write_benchmark_report(
            "demo",
            speedup=4.6789,
            gate=3.0,
            metrics={"num_cases": 6000},
            root=tmp_path,
        )
        assert path == tmp_path / "BENCH_demo.json"
        body = json.loads(path.read_text())
        assert body["schema"] == SCHEMA_VERSION
        assert body["name"] == "demo"
        assert body["speedup"] == 4.679  # three decimals
        assert body["gate"] == 3.0
        assert body["metrics"] == {"num_cases": 6000}
        assert body["timestamp"]
        assert body["commit"]

    def test_report_path_naming(self, tmp_path):
        assert report_path("obs", tmp_path) == tmp_path / "BENCH_obs.json"


class TestLoadBenchmarkReports:
    def test_loads_sorted_by_name(self, tmp_path):
        write_benchmark_report("b", speedup=2, gate=1, metrics={}, root=tmp_path)
        write_benchmark_report("a", speedup=3, gate=1, metrics={}, root=tmp_path)
        names = [r["name"] for r in load_benchmark_reports(tmp_path)]
        assert names == ["a", "b"]

    def test_corrupt_report_becomes_error_entry(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_list.json").write_text("[1, 2]")
        reports = load_benchmark_reports(tmp_path)
        assert [r["name"] for r in reports] == ["bad", "list"]
        assert all("error" in r for r in reports)

    def test_empty_directory_yields_no_reports(self, tmp_path):
        assert load_benchmark_reports(tmp_path) == []


class TestReportMain:
    def test_prints_trajectory_and_passes(self, tmp_path, capsys):
        write_benchmark_report(
            "runtime", speedup=4.1, gate=3.0, metrics={}, root=tmp_path
        )
        write_benchmark_report(
            "obs", speedup=1.002, gate=0.98, metrics={}, root=tmp_path
        )
        assert report_main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out and "obs" in out
        assert "FAIL" not in out

    def test_check_fails_on_missed_gate(self, tmp_path, capsys):
        write_benchmark_report(
            "runtime", speedup=2.4, gate=3.0, metrics={}, root=tmp_path
        )
        assert report_main(["--root", str(tmp_path)]) == 0  # print-only never gates
        assert report_main(["--check", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "gate check failed for: runtime" in out

    def test_check_fails_on_corrupt_report(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        assert report_main(["--check", "--root", str(tmp_path)]) == 1

    def test_empty_root_only_fails_under_check(self, tmp_path, capsys):
        assert report_main(["--root", str(tmp_path)]) == 0
        assert report_main(["--check", "--root", str(tmp_path)]) == 1
        assert "no BENCH_*.json reports found" in capsys.readouterr().out

    def test_repo_reports_satisfy_check(self):
        # The committed BENCH_*.json set must always clear its gates —
        # this is what CI's `python -m benchmarks.report --check` runs.
        assert report_main(["--check"]) == 0


class TestTrendColumn:
    def test_first_run_report_shows_new_and_passes_check(self, tmp_path, capsys):
        # A benchmark measured for the first time has no trajectory
        # entry at HEAD; that must read as "new", never as a failure.
        write_benchmark_report(
            "fresh", speedup=7.0, gate=5.0, metrics={}, root=tmp_path
        )
        assert report_main(["--check", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "FAIL" not in out

    def test_trend_compares_against_committed_report(self, tmp_path, capsys):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "HOME": str(tmp_path),
                },
            )

        git("init", "-q")
        write_benchmark_report("demo", speedup=4.0, gate=3.0, metrics={}, root=tmp_path)
        git("add", "BENCH_demo.json")
        git("commit", "-q", "-m", "prior")
        write_benchmark_report("demo", speedup=5.0, gate=3.0, metrics={}, root=tmp_path)
        assert report_main(["--check", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "+25.0%" in out

    def test_unchanged_speedup_shows_equals(self, tmp_path, capsys):
        import subprocess

        env = {
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
        }
        subprocess.run(
            ["git", "init", "-q"], cwd=tmp_path, check=True, capture_output=True, env=env
        )
        write_benchmark_report("demo", speedup=4.0, gate=3.0, metrics={}, root=tmp_path)
        subprocess.run(
            ["git", "add", "BENCH_demo.json"],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env=env,
        )
        subprocess.run(
            ["git", "commit", "-q", "-m", "prior"],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env=env,
        )
        assert report_main(["--root", str(tmp_path)]) == 0
        row = next(
            line for line in capsys.readouterr().out.splitlines() if "demo" in line
        )
        assert " = " in f" {row} " or row.split()[3] == "="
