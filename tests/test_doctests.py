"""Run the doctest examples embedded in module docstrings.

The quickstart snippets in the package docstrings are part of the public
documentation; this keeps them executable and correct.
"""

import doctest

import pytest

import repro
import repro.core.sequential
import repro.rbd


@pytest.mark.parametrize(
    "module",
    [repro, repro.core.sequential, repro.rbd],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
