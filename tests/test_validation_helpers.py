"""Tests for the internal validation helpers (repro._validation)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro._validation import (
    PROBABILITY_ATOL,
    check_distribution,
    check_positive,
    check_probabilities,
    check_probability,
    clip_probability,
)
from repro.exceptions import ProbabilityError, ProfileError


class TestCheckProbability:
    def test_accepts_interior_values(self):
        assert check_probability(0.5) == 0.5
        assert check_probability(0) == 0.0
        assert check_probability(1) == 1.0

    def test_clips_rounding_noise(self):
        assert check_probability(1.0 + PROBABILITY_ATOL / 2) == 1.0
        assert check_probability(-PROBABILITY_ATOL / 2) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ProbabilityError):
            check_probability(1.1)
        with pytest.raises(ProbabilityError):
            check_probability(-0.1)

    def test_rejects_non_finite(self):
        with pytest.raises(ProbabilityError):
            check_probability(float("nan"))
        with pytest.raises(ProbabilityError):
            check_probability(float("inf"))

    def test_rejects_non_numbers(self):
        with pytest.raises(ProbabilityError):
            check_probability("half")  # type: ignore[arg-type]
        with pytest.raises(ProbabilityError):
            check_probability(None)  # type: ignore[arg-type]

    def test_error_message_names_the_parameter(self):
        with pytest.raises(ProbabilityError, match="my_param"):
            check_probability(2.0, "my_param")

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_idempotent(self, value):
        assert check_probability(check_probability(value)) == check_probability(value)


class TestCheckProbabilities:
    def test_validates_each_element(self):
        assert check_probabilities([0.1, 0.9]) == [0.1, 0.9]

    def test_reports_offending_index(self):
        with pytest.raises(ProbabilityError, match=r"\[1\]"):
            check_probabilities([0.1, 1.9])


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5) == 3.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ProbabilityError):
            check_positive(0.0)
        with pytest.raises(ProbabilityError):
            check_positive(-1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ProbabilityError):
            check_positive(float("inf"))


class TestCheckDistribution:
    def test_accepts_valid_distribution(self):
        validated = check_distribution({"a": 0.25, "b": 0.75})
        assert validated == {"a": 0.25, "b": 0.75}

    def test_rejects_bad_sum(self):
        with pytest.raises(ProfileError):
            check_distribution({"a": 0.3, "b": 0.3})

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            check_distribution({})

    def test_tolerance_scales_with_size(self):
        n = 100
        weights = {f"k{i}": 1.0 / n for i in range(n)}
        # fsum of 100 x 0.01 is fine; tiny per-entry noise must not trip it.
        weights["k0"] += 5 * PROBABILITY_ATOL
        weights["k1"] -= 5 * PROBABILITY_ATOL
        assert math.fsum(check_distribution(weights).values()) == pytest.approx(1.0)


class TestClipProbability:
    def test_clips_both_ends(self):
        assert clip_probability(-0.0001) == 0.0
        assert clip_probability(1.0001) == 1.0
        assert clip_probability(0.5) == 0.5
