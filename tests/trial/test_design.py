"""Tests for repro.trial.design (sample sizes, power, feasibility)."""

import math

import pytest

from repro.core import (
    ClassParameters,
    DemandProfile,
    ModelParameters,
    PAPER_TRIAL_PROFILE,
    paper_example_parameters,
)
from repro.exceptions import EstimationError
from repro.trial import (
    TrialDesign,
    sample_size_for_difference,
    sample_size_for_half_width,
)
from repro._stats import normal_quantile


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.8) == pytest.approx(0.841621, abs=1e-4)

    def test_symmetry(self):
        assert normal_quantile(0.1) == pytest.approx(-normal_quantile(0.9), abs=1e-9)

    def test_tails(self):
        assert normal_quantile(1e-6) == pytest.approx(-4.7534, abs=1e-2)

    def test_invalid(self):
        with pytest.raises(EstimationError):
            normal_quantile(0.0)
        with pytest.raises(EstimationError):
            normal_quantile(1.0)


class TestSampleSizeForHalfWidth:
    def test_classic_value(self):
        # p=0.5, h=0.05, 95%: n ~ 385.
        assert sample_size_for_half_width(0.5, 0.05) == 385

    def test_smaller_proportion_needs_fewer(self):
        assert sample_size_for_half_width(0.1, 0.05) < sample_size_for_half_width(
            0.5, 0.05
        )

    def test_tighter_width_needs_more(self):
        assert sample_size_for_half_width(0.3, 0.02) > sample_size_for_half_width(
            0.3, 0.1
        )

    def test_degenerate_proportion_uses_worst_case(self):
        assert sample_size_for_half_width(0.0, 0.05) == sample_size_for_half_width(
            0.5, 0.05
        )

    def test_invalid(self):
        with pytest.raises(EstimationError):
            sample_size_for_half_width(0.5, 0.0)
        with pytest.raises(EstimationError):
            sample_size_for_half_width(0.5, 0.1, level=1.0)


class TestSampleSizeForDifference:
    def test_textbook_value(self):
        # p1=0.2, p2=0.1, alpha=.05, power=.8: n ~ 199 per group.
        n = sample_size_for_difference(0.2, 0.1)
        assert 190 <= n <= 220

    def test_smaller_effect_needs_more(self):
        assert sample_size_for_difference(0.22, 0.18) > sample_size_for_difference(
            0.3, 0.1
        )

    def test_higher_power_needs_more(self):
        assert sample_size_for_difference(0.2, 0.1, power=0.95) > (
            sample_size_for_difference(0.2, 0.1, power=0.8)
        )

    def test_symmetric_in_arguments(self):
        assert sample_size_for_difference(0.2, 0.1) == sample_size_for_difference(
            0.1, 0.2
        )

    def test_paper_easy_class_needs_huge_trial(self):
        """Detecting the easy class's t = 0.04 (0.18 vs 0.14) takes
        thousands of readings per cell — the paper's feasibility worry made
        concrete."""
        n = sample_size_for_difference(0.18, 0.14)
        assert n > 1000

    def test_zero_difference_rejected(self):
        with pytest.raises(EstimationError):
            sample_size_for_difference(0.3, 0.3)


class TestTrialDesign:
    @pytest.fixture
    def design(self):
        return TrialDesign(num_cases=400, num_readers=4, half_width=0.1)

    def test_cancer_readings(self, design):
        assert design.cancer_readings == 200 * 4

    def test_feasibility_report_structure(self, design):
        report = design.feasibility(paper_example_parameters(), PAPER_TRIAL_PROFILE)
        assert len(report.cells) == 4  # 2 classes x 2 cells
        assert report.total_readings == 1600

    def test_machine_failure_cells_are_the_thin_ones(self, design):
        report = design.feasibility(paper_example_parameters(), PAPER_TRIAL_PROFILE)
        by_key = {(c.case_class.name, c.cell): c for c in report.cells}
        # Easy class: 800 cancer readings * 0.8 weight * PMf 0.07 = ~45 events.
        assert by_key[("easy", "machine_failure")].expected_readings == pytest.approx(
            design.cancer_readings * 0.8 * 0.07
        )
        assert (
            by_key[("easy", "machine_failure")].expected_readings
            < by_key[("easy", "machine_success")].expected_readings
        )

    def test_infeasible_cells_sorted_rarest_first(self, design):
        report = design.feasibility(paper_example_parameters(), PAPER_TRIAL_PROFILE)
        thin = report.infeasible_cells
        expected = [c.expected_readings for c in thin]
        assert expected == sorted(expected)

    def test_scaling_to_feasibility(self, design):
        parameters = paper_example_parameters()
        scaled = design.scaled_to_feasibility(parameters, PAPER_TRIAL_PROFILE)
        report = scaled.feasibility(parameters, PAPER_TRIAL_PROFILE)
        assert report.is_feasible
        assert scaled.num_cases > design.num_cases

    def test_already_feasible_design_unchanged(self):
        design = TrialDesign(num_cases=100_000, num_readers=4, half_width=0.1)
        scaled = design.scaled_to_feasibility(
            paper_example_parameters(), PAPER_TRIAL_PROFILE
        )
        assert scaled is design

    def test_infeasible_beyond_cap_raises(self):
        design = TrialDesign(num_cases=10, num_readers=1, half_width=0.01)
        rare_machine_failures = ModelParameters(
            {"only": ClassParameters(0.001, 0.9, 0.1)}
        )
        with pytest.raises(EstimationError):
            design.scaled_to_feasibility(
                rare_machine_failures, DemandProfile({"only": 1.0}), max_cases=10_000
            )

    def test_validation(self):
        with pytest.raises(EstimationError):
            TrialDesign(num_cases=0, num_readers=1)
        with pytest.raises(EstimationError):
            TrialDesign(num_cases=10, num_readers=0)
        with pytest.raises(EstimationError):
            TrialDesign(num_cases=10, num_readers=1, half_width=2.0)
