"""Tests for repro.trial.estimate and repro.trial.run."""

import numpy as np
import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.core import CaseClass
from repro.exceptions import EstimationError
from repro.reader import MILD_BIAS, QualificationLevel, ReaderModel, ReaderPanel
from repro.screening import (
    PopulationModel,
    SingleClassClassifier,
    SubtletyClassifier,
    trial_workload,
)
from repro.trial import (
    CaseRecord,
    ControlledTrial,
    TrialRecords,
    estimate_model,
    run_reading_session,
)

EASY = CaseClass("easy")


def synthetic_records(
    n_per_cell: int,
    p_failure_given_mf: float,
    p_failure_given_ms: float,
    case_class=EASY,
) -> TrialRecords:
    """Deterministic record sets with exact conditional failure fractions."""
    records = TrialRecords()
    case_id = 0
    for machine_failed, p_fail in (
        (True, p_failure_given_mf),
        (False, p_failure_given_ms),
    ):
        failures = round(n_per_cell * p_fail)
        for i in range(n_per_cell):
            records.append(
                CaseRecord(
                    case_id=case_id,
                    reader_name="r1",
                    case_class=case_class,
                    has_cancer=True,
                    aided=True,
                    machine_failed=machine_failed,
                    machine_false_prompts=0,
                    recalled=(i >= failures),
                )
            )
            case_id += 1
    return records


class TestEstimateModel:
    def test_exact_recovery_from_synthetic_records(self):
        records = synthetic_records(100, p_failure_given_mf=0.3, p_failure_given_ms=0.1)
        result = estimate_model(records)
        estimate = result[EASY]
        assert estimate.machine_failure.point == pytest.approx(0.5)
        assert estimate.human_failure_given_machine_failure.point == pytest.approx(0.3)
        assert estimate.human_failure_given_machine_success.point == pytest.approx(0.1)

    def test_profile_from_class_counts(self):
        records = synthetic_records(50, 0.2, 0.1, EASY) + synthetic_records(
            25, 0.8, 0.4, CaseClass("difficult")
        )
        result = estimate_model(records)
        assert result.profile["easy"] == pytest.approx(2 / 3)
        assert result.profile["difficult"] == pytest.approx(1 / 3)

    def test_to_sequential_model_prediction_matches_observed(self):
        records = synthetic_records(200, 0.4, 0.1)
        result = estimate_model(records)
        model = result.to_sequential_model()
        assert model.system_failure_probability(result.profile) == pytest.approx(
            records.failure_rate()
        )

    def test_intervals_attached(self):
        result = estimate_model(synthetic_records(100, 0.3, 0.1))
        estimate = result[EASY]
        assert estimate.machine_failure.interval.lower < 0.5
        assert estimate.machine_failure.interval.upper > 0.5

    def test_uncertain_model_centres_on_point(self):
        result = estimate_model(synthetic_records(500, 0.3, 0.1))
        uncertain = result.to_uncertain_model()
        mean_model = uncertain.mean_model()
        point_model = result.to_sequential_model()
        assert mean_model.system_failure_probability(
            result.profile
        ) == pytest.approx(
            point_model.system_failure_probability(result.profile), abs=0.01
        )

    def test_no_records_rejected(self):
        with pytest.raises(EstimationError):
            estimate_model(TrialRecords())

    def test_empty_cell_raises_by_default(self):
        # Machine never fails in these records -> PHf|Mf inestimable.
        records = TrialRecords(
            [
                CaseRecord(i, "r1", EASY, True, True, False, 0, True)
                for i in range(20)
            ]
        )
        with pytest.raises(EstimationError):
            estimate_model(records)

    def test_empty_cell_pooling_policy(self):
        good_class = synthetic_records(50, 0.5, 0.1, EASY)
        # "clean" class: machine never fails there.
        clean = TrialRecords(
            [
                CaseRecord(1000 + i, "r1", CaseClass("clean"), True, True, False, 0, True)
                for i in range(30)
            ]
        )
        result = estimate_model(good_class + clean, on_empty_cell="pool")
        pooled = result[CaseClass("clean")].human_failure_given_machine_failure
        assert pooled.pooled
        # The pooled rate comes from the only class with Mf events.
        assert pooled.point == pytest.approx(0.5, abs=0.02)
        assert result.pooled_cells() == ((CaseClass("clean"), "p_human_failure_given_machine_failure"),)

    def test_unknown_class_lookup_rejected(self):
        result = estimate_model(synthetic_records(10, 0.5, 0.1))
        with pytest.raises(EstimationError):
            result["mystery"]

    def test_healthy_side_estimation(self):
        """The same estimator works for the false-positive model."""
        records = TrialRecords(
            [
                CaseRecord(
                    i,
                    "r1",
                    EASY,
                    has_cancer=False,
                    aided=True,
                    machine_failed=(i % 2 == 0),  # false prompt present
                    machine_false_prompts=(1 if i % 2 == 0 else 0),
                    recalled=(i % 4 == 0),  # recall = failure on healthy
                )
                for i in range(100)
            ]
        )
        result = estimate_model(records)
        estimate = result[EASY]
        assert estimate.machine_failure.point == pytest.approx(0.5)
        # Failures among machine-failed (even ids): ids divisible by 4 -> 0.5.
        assert estimate.human_failure_given_machine_failure.point == pytest.approx(0.5)
        assert estimate.human_failure_given_machine_success.point == pytest.approx(0.0)


class TestRunReadingSession:
    def test_produces_record_per_case(self, population, classifier, cadt, reader, rng):
        workload = trial_workload(population, 60, 0.5)
        records = run_reading_session(workload, reader, classifier, cadt, rng)
        assert len(records) == 60
        assert all(r.aided for r in records)
        assert all(r.reader_name == reader.name for r in records)

    def test_unaided_session(self, population, classifier, reader, rng):
        workload = trial_workload(population, 30, 0.5)
        records = run_reading_session(workload, reader, classifier, None, rng)
        assert all(not r.aided for r in records)
        assert all(r.machine_failed is None for r in records)

    def test_machine_failure_recorded_for_cancers(
        self, population, classifier, cadt, reader, rng
    ):
        workload = trial_workload(population, 100, 1.0)
        records = run_reading_session(workload, reader, classifier, cadt, rng)
        assert all(isinstance(r.machine_failed, bool) for r in records)


class TestControlledTrial:
    @pytest.fixture
    def trial(self, population, classifier):
        panel = ReaderPanel.sample(3, QualificationLevel.STANDARD, bias=MILD_BIAS, seed=5)
        return ControlledTrial(
            population=population,
            panel=panel,
            cadt=Cadt(DetectionAlgorithm(), seed=6),
            classifier=classifier,
            num_cases=200,
            cancer_fraction=0.5,
            include_unaided_arm=True,
            on_empty_cell="pool",
            seed=7,
        )

    def test_outcome_structure(self, trial):
        outcome = trial.run()
        assert len(outcome.workload) == 200
        # 3 readers x 200 cases per arm.
        assert len(outcome.aided_records) == 600
        assert len(outcome.unaided_records) == 600
        assert len(outcome.all_records) == 1200

    def test_estimates_cover_observed_classes(self, trial):
        outcome = trial.run()
        observed = set(outcome.aided_records.cancers().case_classes)
        assert set(outcome.estimation.classes) == observed

    def test_estimated_conditionals_ordered(self, trial):
        """With biased readers, PHf|Mf must exceed PHf|Ms in a decent trial."""
        outcome = trial.run()
        for cls in outcome.estimation.classes:
            estimate = outcome.estimation[cls]
            if (
                estimate.human_failure_given_machine_failure.trials >= 30
                and estimate.human_failure_given_machine_success.trials >= 30
            ):
                assert (
                    estimate.human_failure_given_machine_failure.point
                    > estimate.human_failure_given_machine_success.point
                )

    def test_prediction_matches_observed_rate_exactly(self, trial):
        """The estimator is exactly the MLE: plugging the empirical profile
        back in reproduces the observed aided cancer failure rate."""
        outcome = trial.run()
        model = outcome.estimation.to_sequential_model()
        predicted = model.system_failure_probability(outcome.estimation.profile)
        observed = outcome.aided_records.cancers().failure_rate()
        assert predicted == pytest.approx(observed, abs=1e-9)

    def test_aided_beats_unaided_for_cancers(self, population, classifier):
        """The CADT should help detection overall (trial-level sanity)."""
        panel = ReaderPanel.sample(4, QualificationLevel.STANDARD, bias=MILD_BIAS, seed=8)
        trial = ControlledTrial(
            population=PopulationModel(seed=31),
            panel=panel,
            cadt=Cadt(DetectionAlgorithm(), seed=9),
            classifier=classifier,
            num_cases=400,
            include_unaided_arm=True,
            on_empty_cell="pool",
            seed=10,
        )
        outcome = trial.run()
        aided_rate = outcome.aided_records.cancers().failure_rate()
        unaided_rate = outcome.unaided_records.cancers().failure_rate()
        assert aided_rate < unaided_rate

    def test_invalid_num_cases(self, population, classifier):
        panel = ReaderPanel.sample(1, seed=1)
        with pytest.raises(Exception):
            ControlledTrial(
                population, panel, Cadt(seed=1), classifier, num_cases=0
            )
