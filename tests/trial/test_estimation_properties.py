"""Statistical properties of the estimator against known ground truth.

These tests bypass the simulators entirely: records are sampled directly
from known ``ClassParameters``, so the estimator's consistency and the
confidence intervals' coverage can be checked against exact truth.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CaseClass, ClassParameters, DemandProfile, ModelParameters
from repro.trial import CaseRecord, TrialRecords, estimate_model


def sample_records(
    parameters: ModelParameters,
    profile: DemandProfile,
    num_cases: int,
    rng: np.random.Generator,
) -> TrialRecords:
    """Sample reading events directly from the sequential model's law."""
    records = TrialRecords()
    class_names = [cls.name for cls in profile.classes]
    weights = [profile[name] for name in class_names]
    for case_id in range(num_cases):
        name = class_names[int(rng.choice(len(class_names), p=weights))]
        params = parameters[name]
        machine_failed = bool(rng.random() < params.p_machine_failure)
        p_fail = (
            params.p_human_failure_given_machine_failure
            if machine_failed
            else params.p_human_failure_given_machine_success
        )
        failed = bool(rng.random() < p_fail)
        records.append(
            CaseRecord(
                case_id=case_id,
                reader_name="r",
                case_class=CaseClass(name),
                has_cancer=True,
                aided=True,
                machine_failed=machine_failed,
                machine_false_prompts=0,
                recalled=not failed,
            )
        )
    return records


TRUE_PARAMETERS = ModelParameters(
    {
        "easy": ClassParameters(0.07, 0.18, 0.14),
        "difficult": ClassParameters(0.41, 0.90, 0.40),
    }
)
TRUE_PROFILE = DemandProfile({"easy": 0.8, "difficult": 0.2})


class TestConsistency:
    def test_estimates_converge_to_truth(self):
        rng = np.random.default_rng(1601)
        records = sample_records(TRUE_PARAMETERS, TRUE_PROFILE, 60_000, rng)
        estimation = estimate_model(records)
        for name in ("easy", "difficult"):
            estimate = estimation[name].to_class_parameters()
            truth = TRUE_PARAMETERS[name]
            assert estimate.p_machine_failure == pytest.approx(
                truth.p_machine_failure, abs=0.02
            )
            assert estimate.p_human_failure_given_machine_failure == pytest.approx(
                truth.p_human_failure_given_machine_failure, abs=0.04
            )
            assert estimate.p_human_failure_given_machine_success == pytest.approx(
                truth.p_human_failure_given_machine_success, abs=0.02
            )

    def test_profile_estimate_converges(self):
        rng = np.random.default_rng(1602)
        records = sample_records(TRUE_PARAMETERS, TRUE_PROFILE, 40_000, rng)
        estimation = estimate_model(records)
        assert estimation.profile["easy"] == pytest.approx(0.8, abs=0.02)

    def test_error_shrinks_with_sample_size(self):
        def max_error(n: int, seed: int) -> float:
            rng = np.random.default_rng(seed)
            records = sample_records(TRUE_PARAMETERS, TRUE_PROFILE, n, rng)
            estimation = estimate_model(records, on_empty_cell="pool")
            errors = []
            for name in ("easy", "difficult"):
                estimate = estimation[name].to_class_parameters()
                truth = TRUE_PARAMETERS[name]
                errors.append(
                    abs(estimate.p_machine_failure - truth.p_machine_failure)
                )
            return max(errors)

        small = np.mean([max_error(400, seed) for seed in range(5)])
        large = np.mean([max_error(40_000, seed) for seed in range(5)])
        assert large < small

    def test_interval_coverage(self):
        """95% Wilson intervals should cover the true PMf in roughly 95% of
        repeated trials (checked loosely over 60 replications)."""
        covered = 0
        replications = 60
        for seed in range(replications):
            rng = np.random.default_rng(2000 + seed)
            records = sample_records(TRUE_PARAMETERS, TRUE_PROFILE, 2_000, rng)
            estimation = estimate_model(records, on_empty_cell="pool")
            interval = estimation["difficult"].machine_failure.interval
            covered += int(0.41 in interval)
        assert covered / replications >= 0.85

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_plugin_identity_holds_for_any_truth(self, pmf, hf_mf, hf_ms, seed):
        """For any generating parameters, predicting with the estimates and
        the empirical profile reproduces the observed failure rate exactly
        (the estimator is the MLE of a saturated model)."""
        truth = ModelParameters({"only": ClassParameters(pmf, hf_mf, hf_ms)})
        profile = DemandProfile({"only": 1.0})
        rng = np.random.default_rng(seed)
        records = sample_records(truth, profile, 500, rng)
        estimation = estimate_model(records, on_empty_cell="pool")
        predicted = estimation.to_sequential_model().system_failure_probability(
            estimation.profile
        )
        assert predicted == pytest.approx(records.failure_rate(), abs=1e-9)
