"""Property-based tests for Wilson intervals and rate estimates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.system import RateEstimate
from repro.trial.intervals import wilson_interval

counts = st.integers(min_value=1, max_value=100000).flatmap(
    lambda trials: st.tuples(st.integers(min_value=0, max_value=trials), st.just(trials))
)
levels = st.floats(min_value=0.01, max_value=0.995)


class TestWilsonProperties:
    @given(counts, levels)
    def test_bounds_in_unit_interval_and_ordered(self, count_pair, level):
        events, trials = count_pair
        interval = wilson_interval(events, trials, level)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0

    @given(counts, levels)
    def test_interval_contains_point_estimate(self, count_pair, level):
        events, trials = count_pair
        interval = wilson_interval(events, trials, level)
        assert interval.point == events / trials
        assert interval.point in interval

    @given(counts, levels, levels)
    def test_width_monotone_in_level(self, count_pair, level_a, level_b):
        events, trials = count_pair
        low, high = sorted((level_a, level_b))
        narrow = wilson_interval(events, trials, low)
        wide = wilson_interval(events, trials, high)
        assert narrow.lower >= wide.lower - 1e-15
        assert narrow.upper <= wide.upper + 1e-15
        assert narrow.width <= wide.width + 1e-15

    @given(counts, levels)
    def test_symmetric_under_event_complement(self, count_pair, level):
        # Swapping events <-> non-events mirrors the interval around 1/2.
        events, trials = count_pair
        interval = wilson_interval(events, trials, level)
        mirrored = wilson_interval(trials - events, trials, level)
        assert interval.lower == pytest.approx(1.0 - mirrored.upper, abs=1e-12)
        assert interval.upper == pytest.approx(1.0 - mirrored.lower, abs=1e-12)


class TestRateEstimateProperties:
    @given(counts, levels)
    def test_from_counts_preserves_counts_and_contains_rate(self, count_pair, level):
        failures, trials = count_pair
        estimate = RateEstimate.from_counts(failures, trials, level)
        assert estimate.failures == failures
        assert estimate.trials == trials
        assert estimate.rate == failures / trials
        assert estimate.rate in estimate.interval
        assert 0.0 <= estimate.interval.lower <= estimate.interval.upper <= 1.0

    @given(counts)
    def test_default_level_is_95(self, count_pair):
        failures, trials = count_pair
        estimate = RateEstimate.from_counts(failures, trials)
        assert estimate.interval.level == 0.95
