"""Tests for repro.trial.intervals (binomial confidence intervals)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import EstimationError
from repro.trial import (
    clopper_pearson_interval,
    jeffreys_interval,
    wilson_interval,
)

METHODS = [wilson_interval, clopper_pearson_interval, jeffreys_interval]


@st.composite
def counts(draw):
    trials = draw(st.integers(min_value=1, max_value=10_000))
    events = draw(st.integers(min_value=0, max_value=trials))
    return events, trials


class TestCommonBehaviour:
    @pytest.mark.parametrize("method", METHODS)
    def test_contains_point_estimate(self, method):
        interval = method(13, 100)
        assert 0.13 in interval
        assert interval.point == pytest.approx(0.13)

    @pytest.mark.parametrize("method", METHODS)
    def test_bounds_in_unit_interval(self, method):
        for events, trials in [(0, 10), (10, 10), (5, 10), (1, 1000)]:
            interval = method(events, trials)
            assert 0.0 <= interval.lower <= interval.upper <= 1.0

    @pytest.mark.parametrize("method", METHODS)
    def test_narrows_with_sample_size(self, method):
        small = method(5, 20)
        large = method(250, 1000)
        assert large.width < small.width

    @pytest.mark.parametrize("method", METHODS)
    def test_higher_level_is_wider(self, method):
        assert method(30, 100, level=0.99).width > method(30, 100, level=0.90).width

    @pytest.mark.parametrize("method", METHODS)
    def test_zero_events_lower_bound_zero(self, method):
        assert method(0, 50).lower == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("method", METHODS)
    def test_all_events_upper_bound_one(self, method):
        assert method(50, 50).upper == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("method", METHODS)
    def test_invalid_counts_rejected(self, method):
        with pytest.raises(EstimationError):
            method(5, 0)
        with pytest.raises(EstimationError):
            method(11, 10)
        with pytest.raises(EstimationError):
            method(-1, 10)

    @pytest.mark.parametrize("method", METHODS)
    def test_invalid_level_rejected(self, method):
        with pytest.raises(EstimationError):
            method(5, 10, level=0.0)
        with pytest.raises(EstimationError):
            method(5, 10, level=1.0)

    @pytest.mark.parametrize("method", METHODS)
    @given(counts())
    def test_point_always_inside(self, method, events_trials):
        events, trials = events_trials
        interval = method(events, trials)
        assert interval.lower - 1e-9 <= events / trials <= interval.upper + 1e-9


class TestMethodSpecifics:
    def test_wilson_known_value(self):
        # Canonical check: 0 of 10 at 95% gives upper ~ 0.278 (Wilson).
        interval = wilson_interval(0, 10)
        assert interval.upper == pytest.approx(0.278, abs=5e-3)

    def test_clopper_pearson_known_value(self):
        # 0 of 10 at 95%: upper = 1 - 0.025^(1/10) ~ 0.3085.
        interval = clopper_pearson_interval(0, 10)
        assert interval.upper == pytest.approx(0.3085, abs=5e-3)

    def test_clopper_pearson_conservative_vs_wilson(self):
        cp = clopper_pearson_interval(13, 100)
        wilson = wilson_interval(13, 100)
        assert cp.width >= wilson.width - 1e-12

    def test_method_names(self):
        assert wilson_interval(1, 10).method == "wilson"
        assert clopper_pearson_interval(1, 10).method == "clopper-pearson"
        assert jeffreys_interval(1, 10).method == "jeffreys"

    def test_jeffreys_midpoint_close_to_posterior_mean(self):
        interval = jeffreys_interval(50, 100)
        assert (interval.lower + interval.upper) / 2 == pytest.approx(0.5, abs=0.01)
