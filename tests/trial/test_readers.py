"""Tests for repro.trial.readers (per-reader estimation)."""

import pytest

from repro.cadt import Cadt, DetectionAlgorithm
from repro.core import CaseClass, TeamPolicy
from repro.exceptions import EstimationError
from repro.reader import MILD_BIAS, ReaderModel, ReaderPanel, ReaderSkill
from repro.screening import PopulationModel, SubtletyClassifier
from repro.trial import ControlledTrial, TrialRecords, estimate_per_reader


@pytest.fixture(scope="module")
def crossed_trial_outcome():
    """A crossed trial with one deliberately weak and one strong reader."""
    strong = ReaderModel(
        skill=ReaderSkill(detection=0.8, classification=0.6),
        bias=MILD_BIAS,
        name="strong",
        seed=1501,
    )
    weak = ReaderModel(
        skill=ReaderSkill(detection=-0.8, classification=-0.6),
        bias=MILD_BIAS,
        name="weak",
        seed=1502,
    )
    trial = ControlledTrial(
        population=PopulationModel(seed=1503),
        panel=ReaderPanel([strong, weak]),
        cadt=Cadt(DetectionAlgorithm(), seed=1504),
        classifier=SubtletyClassifier(),
        num_cases=500,
        cancer_fraction=1.0,
        on_empty_cell="pool",
        seed=1505,
    )
    return trial.run()


@pytest.fixture(scope="module")
def panel_estimate(crossed_trial_outcome):
    return estimate_per_reader(crossed_trial_outcome.aided_records)


class TestEstimatePerReader:
    def test_both_readers_estimated(self, panel_estimate):
        assert panel_estimate.reader_names == ("strong", "weak")

    def test_weak_reader_measurably_worse(self, panel_estimate):
        spread = panel_estimate.spread(
            "difficult", "p_human_failure_given_machine_success"
        )
        assert spread.worst_reader == "weak"
        assert spread.best_reader == "strong"
        assert spread.spread > 0.05

    def test_spread_bounds(self, panel_estimate):
        spread = panel_estimate.spread(
            "easy", "p_human_failure_given_machine_failure"
        )
        assert spread.minimum <= spread.maximum
        assert spread.spread == pytest.approx(spread.maximum - spread.minimum)

    def test_unknown_parameter_rejected(self, panel_estimate):
        with pytest.raises(EstimationError):
            panel_estimate.spread("easy", "p_machine_failure")

    def test_reader_tables_share_machine(self, panel_estimate):
        tables = panel_estimate.reader_tables()
        pooled = panel_estimate.pooled.to_model_parameters()
        for table in tables.values():
            for case_class in pooled.classes:
                assert table[case_class].p_machine_failure == pytest.approx(
                    pooled[case_class].p_machine_failure
                )

    def test_team_model_beats_each_member(self, panel_estimate):
        from repro.core import SequentialModel

        team = panel_estimate.to_team_model(TeamPolicy.RECALL_IF_ANY)
        profile = panel_estimate.pooled.profile
        team_failure = team.system_failure_probability(profile)
        for table in panel_estimate.reader_tables().values():
            assert team_failure <= SequentialModel(table).system_failure_probability(
                profile
            ) + 1e-12

    def test_empty_records_rejected(self):
        with pytest.raises(EstimationError):
            estimate_per_reader(TrialRecords())
