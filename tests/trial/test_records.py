"""Tests for repro.trial.records."""

import pytest

from repro.core import CaseClass
from repro.exceptions import EstimationError
from repro.trial import CaseRecord, TrialRecords

EASY = CaseClass("easy")
DIFFICULT = CaseClass("difficult")


def record(
    case_id=1,
    reader="r1",
    case_class=EASY,
    has_cancer=True,
    aided=True,
    machine_failed=False,
    prompts=0,
    recalled=True,
):
    return CaseRecord(
        case_id=case_id,
        reader_name=reader,
        case_class=case_class,
        has_cancer=has_cancer,
        aided=aided,
        machine_failed=machine_failed if aided else None,
        machine_false_prompts=prompts if aided else None,
        recalled=recalled,
    )


class TestCaseRecord:
    def test_cancer_failure_is_no_recall(self):
        assert record(has_cancer=True, recalled=False).human_failed
        assert not record(has_cancer=True, recalled=True).human_failed

    def test_healthy_failure_is_recall(self):
        assert record(has_cancer=False, recalled=True).human_failed
        assert not record(has_cancer=False, recalled=False).human_failed

    def test_system_failed_aliases_human_failed(self):
        r = record(recalled=False)
        assert r.system_failed == r.human_failed

    def test_aided_requires_machine_outcome(self):
        with pytest.raises(EstimationError):
            CaseRecord(1, "r", EASY, True, True, None, 0, True)

    def test_unaided_forbids_machine_outcome(self):
        with pytest.raises(EstimationError):
            CaseRecord(1, "r", EASY, True, False, True, 0, True)

    def test_negative_prompts_rejected(self):
        with pytest.raises(EstimationError):
            CaseRecord(1, "r", EASY, True, True, False, -2, True)


class TestTrialRecords:
    @pytest.fixture
    def records(self):
        return TrialRecords(
            [
                record(1, "r1", EASY, True, True, False, 0, True),
                record(2, "r1", EASY, True, True, True, 1, False),
                record(3, "r1", DIFFICULT, True, True, True, 0, False),
                record(4, "r2", DIFFICULT, True, True, False, 2, True),
                record(5, "r2", EASY, False, True, False, 0, False),
                record(6, "r2", EASY, True, False, None, None, False),
            ]
        )

    def test_len_and_iter(self, records):
        assert len(records) == 6
        assert len(list(records)) == 6

    def test_filters_compose(self, records):
        assert len(records.cancers()) == 5
        assert len(records.healthy()) == 1
        assert len(records.aided()) == 5
        assert len(records.unaided()) == 1
        assert len(records.aided().cancers()) == 4

    def test_for_class(self, records):
        assert len(records.for_class(EASY)) == 4
        assert len(records.for_class("difficult")) == 2

    def test_for_reader(self, records):
        assert len(records.for_reader("r1")) == 3

    def test_case_classes_sorted(self, records):
        assert records.case_classes == (DIFFICULT, EASY)

    def test_reader_names(self, records):
        assert records.reader_names == ("r1", "r2")

    def test_failure_rate(self, records):
        cancers = records.aided().cancers()
        # Failures: ids 2 and 3 (no recall on cancer) out of 4.
        assert cancers.failure_rate() == pytest.approx(0.5)

    def test_failure_rate_empty_rejected(self):
        with pytest.raises(EstimationError):
            TrialRecords().failure_rate()

    def test_count_with_predicate(self, records):
        assert records.count(lambda r: r.recalled) == 2

    def test_class_counts(self, records):
        counts = records.class_counts()
        assert counts[EASY] == 4
        assert counts[DIFFICULT] == 2

    def test_append_and_extend(self):
        records = TrialRecords()
        records.append(record(1))
        records.extend([record(2), record(3)])
        assert len(records) == 3

    def test_append_wrong_type(self):
        with pytest.raises(EstimationError):
            TrialRecords().append("nope")  # type: ignore[arg-type]

    def test_addition(self, records):
        combined = records + TrialRecords([record(7)])
        assert len(combined) == 7
        # Original unchanged.
        assert len(records) == 6
