"""Tests for repro.trial.storage (CSV round-trips)."""

import pytest

from repro.core import CaseClass
from repro.exceptions import EstimationError
from repro.trial import (
    CaseRecord,
    TrialRecords,
    dump_records_csv,
    estimate_model,
    load_records_csv,
)


@pytest.fixture
def sample_records():
    return TrialRecords(
        [
            CaseRecord(1, "alice", CaseClass("easy"), True, True, False, 0, True),
            CaseRecord(2, "alice", CaseClass("difficult"), True, True, True, 2, False),
            CaseRecord(3, "bob", CaseClass("easy"), False, True, True, 1, True),
            CaseRecord(4, "bob", CaseClass("easy"), True, False, None, None, False),
        ]
    )


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path, sample_records):
        path = tmp_path / "records.csv"
        dump_records_csv(path, sample_records)
        restored = load_records_csv(path)
        assert len(restored) == len(sample_records)
        for original, loaded in zip(sample_records, restored):
            assert loaded == original

    def test_estimates_survive_round_trip(self, tmp_path, population, classifier, cadt, reader, rng):
        from repro.screening import trial_workload
        from repro.trial import run_reading_session

        workload = trial_workload(population, 200, cancer_fraction=1.0)
        records = run_reading_session(workload, reader, classifier, cadt, rng)
        path = tmp_path / "trial.csv"
        dump_records_csv(path, records)
        restored = load_records_csv(path)
        original_estimate = estimate_model(records, on_empty_cell="pool")
        restored_estimate = estimate_model(restored, on_empty_cell="pool")
        assert original_estimate.to_model_parameters() == (
            restored_estimate.to_model_parameters()
        )

    def test_file_is_plain_csv(self, tmp_path, sample_records):
        path = tmp_path / "records.csv"
        dump_records_csv(path, sample_records)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("case_id,reader_name,case_class")
        assert len(lines) == 5
        # Unaided row has empty machine cells.
        assert ",,," in lines[4] or ",," in lines[4]


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EstimationError):
            load_records_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_malformed_boolean(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "1,r,easy,yes,1,0,0,1\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_malformed_case_id(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "xyz,r,easy,1,1,0,0,1\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "1,r,easy\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)
