"""Tests for repro.trial.storage (CSV and JSON-entry round-trips)."""

import json

import pytest

from repro.core import CaseClass
from repro.exceptions import EstimationError
from repro.trial import (
    CaseRecord,
    TrialRecords,
    dump_records_csv,
    estimate_model,
    follow_journal_records,
    follow_records_csv,
    load_records_csv,
    record_from_entry,
    record_to_entry,
)


@pytest.fixture
def sample_records():
    return TrialRecords(
        [
            CaseRecord(1, "alice", CaseClass("easy"), True, True, False, 0, True),
            CaseRecord(2, "alice", CaseClass("difficult"), True, True, True, 2, False),
            CaseRecord(3, "bob", CaseClass("easy"), False, True, True, 1, True),
            CaseRecord(4, "bob", CaseClass("easy"), True, False, None, None, False),
        ]
    )


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path, sample_records):
        path = tmp_path / "records.csv"
        dump_records_csv(path, sample_records)
        restored = load_records_csv(path)
        assert len(restored) == len(sample_records)
        for original, loaded in zip(sample_records, restored):
            assert loaded == original

    def test_estimates_survive_round_trip(self, tmp_path, population, classifier, cadt, reader, rng):
        from repro.screening import trial_workload
        from repro.trial import run_reading_session

        workload = trial_workload(population, 200, cancer_fraction=1.0)
        records = run_reading_session(workload, reader, classifier, cadt, rng)
        path = tmp_path / "trial.csv"
        dump_records_csv(path, records)
        restored = load_records_csv(path)
        original_estimate = estimate_model(records, on_empty_cell="pool")
        restored_estimate = estimate_model(restored, on_empty_cell="pool")
        assert original_estimate.to_model_parameters() == (
            restored_estimate.to_model_parameters()
        )

    def test_file_is_plain_csv(self, tmp_path, sample_records):
        path = tmp_path / "records.csv"
        dump_records_csv(path, sample_records)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("case_id,reader_name,case_class")
        assert len(lines) == 5
        # Unaided row has empty machine cells.
        assert ",,," in lines[4] or ",," in lines[4]


class TestRecordEntryCodec:
    def test_round_trip_through_json(self, sample_records):
        for record in sample_records:
            entry = json.loads(json.dumps(record_to_entry(record)))
            assert record_from_entry(entry) == record

    def test_entry_keys_match_csv_columns(self, sample_records):
        from repro.trial import CSV_COLUMNS

        entry = record_to_entry(next(iter(sample_records)))
        assert set(entry) == set(CSV_COLUMNS)

    def test_rejects_non_object(self):
        with pytest.raises(EstimationError, match="JSON object"):
            record_from_entry(["not", "an", "object"])

    def test_rejects_unknown_field(self, sample_records):
        entry = record_to_entry(next(iter(sample_records)))
        entry["surprise"] = 1
        with pytest.raises(EstimationError, match="surprise"):
            record_from_entry(entry)

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("case_id", "seven"),
            ("case_id", True),
            ("reader_name", 3),
            ("case_class", ""),
            ("has_cancer", 1),
            ("aided", "yes"),
            ("machine_failed", 0),
            ("machine_false_prompts", 1.5),
            ("machine_false_prompts", True),
            ("recalled", None),
        ],
    )
    def test_rejects_mistyped_fields(self, sample_records, field, bad):
        entry = record_to_entry(next(iter(sample_records)))
        entry[field] = bad
        with pytest.raises(EstimationError, match=field):
            record_from_entry(entry)

    def test_inconsistent_record_rejected(self):
        entry = {
            "case_id": 1,
            "reader_name": "r",
            "case_class": "easy",
            "has_cancer": True,
            "aided": True,
            "machine_failed": None,
            "machine_false_prompts": None,
            "recalled": True,
        }
        # Aided without machine_failed: CaseRecord's own invariant fires.
        with pytest.raises(EstimationError, match="machine_failed"):
            record_from_entry(entry)


CSV_HEADER = (
    "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
    "machine_false_prompts,recalled"
)


def csv_row(case_id):
    return f"{case_id},alice,easy,1,1,0,0,1"


def expected_record(case_id):
    return CaseRecord(case_id, "alice", CaseClass("easy"), True, True, False, 0, True)


class TestFollowRecordsCsv:
    def test_yields_appended_batches(self, tmp_path):
        path = tmp_path / "field.csv"
        path.write_text(f"{CSV_HEADER}\n{csv_row(1)}\n{csv_row(2)}\n")

        def append_more(_interval):
            if not append_more.done:
                append_more.done = True
                with open(path, "a") as handle:
                    handle.write(f"{csv_row(3)}\n{csv_row(4)}\n")

        append_more.done = False
        batches = list(
            follow_records_csv(
                path, poll_interval=0.0, max_idle_polls=2, sleep=append_more
            )
        )
        assert [len(batch) for batch in batches] == [2, 2]
        flattened = [record for batch in batches for record in batch]
        assert flattened == [expected_record(i) for i in (1, 2, 3, 4)]

    def test_partial_final_line_deferred(self, tmp_path):
        path = tmp_path / "field.csv"
        path.write_text(f"{CSV_HEADER}\n{csv_row(1)}\n2,alice,ea")  # mid-write
        batches = list(
            follow_records_csv(path, poll_interval=0.0, max_idle_polls=1)
        )
        assert [len(batch) for batch in batches] == [1]
        assert next(iter(batches[0])) == expected_record(1)

    def test_missing_file_counts_as_idle(self, tmp_path):
        batches = list(
            follow_records_csv(
                tmp_path / "absent.csv", poll_interval=0.0, max_idle_polls=2
            )
        )
        assert batches == []

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(EstimationError, match="unexpected header"):
            list(follow_records_csv(path, poll_interval=0.0, max_idle_polls=1))

    def test_malformed_complete_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(f"{CSV_HEADER}\nxyz,alice,easy,1,1,0,0,1\n")
        with pytest.raises(EstimationError, match="case_id"):
            list(follow_records_csv(path, poll_interval=0.0, max_idle_polls=1))

    def test_invalid_knobs_rejected(self, tmp_path):
        path = tmp_path / "field.csv"
        with pytest.raises(EstimationError, match="poll_interval"):
            next(follow_records_csv(path, poll_interval=-1.0))
        with pytest.raises(EstimationError, match="max_idle_polls"):
            next(follow_records_csv(path, max_idle_polls=0))


class TestFollowJournalRecords:
    def test_yields_appended_batches(self, tmp_path, sample_records):
        path = tmp_path / "records.jsonl"
        records = list(sample_records)
        lines = [json.dumps(record_to_entry(r)) for r in records]
        path.write_text("\n".join(lines[:2]) + "\n")

        def append_more(_interval):
            if not append_more.done:
                append_more.done = True
                with open(path, "a") as handle:
                    handle.write("\n".join(lines[2:]) + "\n")

        append_more.done = False
        batches = list(
            follow_journal_records(
                path, poll_interval=0.0, max_idle_polls=2, sleep=append_more
            )
        )
        assert [len(batch) for batch in batches] == [2, 2]
        assert [r for batch in batches for r in batch] == records

    def test_truncated_final_line_deferred(self, tmp_path, sample_records):
        path = tmp_path / "records.jsonl"
        first = json.dumps(record_to_entry(next(iter(sample_records))))
        path.write_text(first + "\n" + first[: len(first) // 2])
        batches = list(
            follow_journal_records(path, poll_interval=0.0, max_idle_polls=1)
        )
        assert [len(batch) for batch in batches] == [1]

    def test_complete_garbage_line_raises(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(EstimationError, match="malformed journal line 1"):
            list(follow_journal_records(path, poll_interval=0.0, max_idle_polls=1))

    def test_invalid_entry_raises_with_line_number(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"case_id": 1}\n')
        with pytest.raises(EstimationError, match="journal line 1"):
            list(follow_journal_records(path, poll_interval=0.0, max_idle_polls=1))


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EstimationError):
            load_records_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_malformed_boolean(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "1,r,easy,yes,1,0,0,1\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_malformed_case_id(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "xyz,r,easy,1,1,0,0,1\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)

    def test_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "case_id,reader_name,case_class,has_cancer,aided,machine_failed,"
            "machine_false_prompts,recalled\n"
            "1,r,easy\n"
        )
        with pytest.raises(EstimationError):
            load_records_csv(path)
